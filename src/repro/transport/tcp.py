"""TCP-like stream transport used by the paper's first baseline.

The baseline labelled "TCP" in Figure 3 is the original MapReduce shuffle: each
mapper opens a stream to each reducer and sends its whole partition as a byte
stream, which the kernel segments at the MSS. We model exactly that framing:
an application message of ``n`` bytes becomes ``ceil(n / mss)`` segments, each
with Ethernet/IP/TCP overhead, and the last segment carries the application
payload object so the receiver can reassemble it.

Congestion control and retransmissions are deliberately not modelled: the
paper's reduction metrics only depend on how many packets/bytes reach the
reducers, and the simulated network does not drop packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.config import DEFAULT_TCP_MSS
from repro.core.errors import TransportError
from repro.netsim.simulator import NetworkSimulator
from repro.transport.packets import MessagePayload, TcpSegment


def segment_message(
    src: str,
    dst: str,
    message_bytes: int,
    payload: Any = None,
    mss: int = DEFAULT_TCP_MSS,
    sport: int = 0,
    dport: int = 0,
    start_seq: int = 0,
) -> list[TcpSegment]:
    """Split an application message into MSS-sized TCP segments.

    The structured ``payload`` rides on the final segment (which also carries
    the ``fin`` marker); earlier segments carry only byte counts.
    """
    if message_bytes < 0:
        raise TransportError("message_bytes must be non-negative")
    if mss <= 0:
        raise TransportError("mss must be positive")
    segments: list[TcpSegment] = []
    remaining = message_bytes
    seq = start_seq
    while remaining > mss:
        segments.append(
            TcpSegment(
                src=src,
                dst=dst,
                sport=sport,
                dport=dport,
                seq=seq,
                payload=None,
                payload_bytes=mss,
            )
        )
        seq += mss
        remaining -= mss
    segments.append(
        TcpSegment(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            seq=seq,
            payload=payload,
            payload_bytes=remaining,
            fin=True,
        )
    )
    return segments


@dataclass
class TcpStats:
    """Sender-side accounting for a set of TCP transfers."""

    messages_sent: int = 0
    segments_sent: int = 0
    payload_bytes_sent: int = 0
    wire_bytes_sent: int = 0


class TcpTransport:
    """Message-oriented convenience layer over the simulated network.

    ``send_message`` segments and injects a message; hosts that want to receive
    register a callback with :meth:`listen`, which is invoked once per fully
    received message (i.e. on each ``fin`` segment) with the structured
    payload.
    """

    def __init__(self, simulator: NetworkSimulator, mss: int = DEFAULT_TCP_MSS) -> None:
        self.simulator = simulator
        self.mss = mss
        self.stats = TcpStats()
        self._listeners: dict[tuple[str, int], Callable[[str, MessagePayload], None]] = {}

    def listen(self, host: str, port: int, callback: Callable[[str, MessagePayload], None]) -> None:
        """Register ``callback(src, payload)`` for messages to ``host:port``."""
        self._listeners[(host, port)] = callback
        self.simulator.host(host).set_receiver(self._make_receiver(host))

    def _make_receiver(self, host: str) -> Callable[[Any], None]:
        def receive(packet: Any) -> None:
            if not isinstance(packet, TcpSegment) or not packet.fin:
                return
            listener = self._listeners.get((host, packet.dport))
            if listener is None:
                return
            payload = packet.payload
            if payload is None:
                payload = MessagePayload(kind="raw", data=None)
            listener(packet.src, payload)

        return receive

    def send_message(
        self,
        src: str,
        dst: str,
        message_bytes: int,
        payload: MessagePayload | None = None,
        sport: int = 0,
        dport: int = 0,
    ) -> int:
        """Send one application message; returns the number of segments."""
        segments = segment_message(
            src=src,
            dst=dst,
            message_bytes=message_bytes,
            payload=payload,
            mss=self.mss,
            sport=sport,
            dport=dport,
        )
        # The kernel would blast the whole write into the NIC queue at once;
        # one burst event models exactly that (identical wire behaviour to
        # per-segment sends, one scheduler entry per message instead of one
        # per segment).
        self.simulator.send_burst(src, segments)
        self.stats.messages_sent += 1
        self.stats.segments_sent += len(segments)
        self.stats.payload_bytes_sent += message_bytes
        self.stats.wire_bytes_sent += sum(s.wire_bytes() for s in segments)
        return len(segments)
