"""UDP message transport.

DAIET ships intermediate data in UDP packets (Section 4: "these partitions are
sent to the reducer using UDP packets containing a small preamble and a
sequence of key-value pairs"). This module provides a generic UDP transport for
baselines and control traffic; the DAIET-specific packet layout lives in
:mod:`repro.core.packet` and rides inside the same datagram framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import TransportError
from repro.netsim.simulator import NetworkSimulator
from repro.transport.packets import MessagePayload, UdpDatagram

#: A conventional MTU-limited UDP payload (1500 B MTU minus IP and UDP headers).
DEFAULT_UDP_PAYLOAD_LIMIT = 1472


@dataclass
class UdpStats:
    """Sender-side accounting for UDP transfers."""

    datagrams_sent: int = 0
    payload_bytes_sent: int = 0
    wire_bytes_sent: int = 0


class UdpTransport:
    """Datagram-oriented convenience layer over the simulated network."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        payload_limit: int = DEFAULT_UDP_PAYLOAD_LIMIT,
    ) -> None:
        if payload_limit <= 0:
            raise TransportError("payload_limit must be positive")
        self.simulator = simulator
        self.payload_limit = payload_limit
        self.stats = UdpStats()
        self._listeners: dict[tuple[str, int], Callable[[str, MessagePayload], None]] = {}

    def listen(self, host: str, port: int, callback: Callable[[str, MessagePayload], None]) -> None:
        """Register ``callback(src, payload)`` for datagrams to ``host:port``."""
        self._listeners[(host, port)] = callback
        self.simulator.host(host).set_receiver(self._make_receiver(host))

    def _make_receiver(self, host: str) -> Callable[[Any], None]:
        def receive(packet: Any) -> None:
            if not isinstance(packet, UdpDatagram):
                return
            listener = self._listeners.get((host, packet.dport))
            if listener is None:
                return
            payload = packet.payload
            if not isinstance(payload, MessagePayload):
                payload = MessagePayload(kind="raw", data=payload)
            listener(packet.src, payload)

        return receive

    def send_datagram(
        self,
        src: str,
        dst: str,
        payload: MessagePayload | None,
        payload_bytes: int,
        sport: int = 0,
        dport: int = 0,
    ) -> UdpDatagram:
        """Send a single datagram (caller guarantees it fits the payload limit)."""
        if payload_bytes > self.payload_limit:
            raise TransportError(
                f"datagram payload of {payload_bytes} B exceeds the "
                f"{self.payload_limit} B limit; split the message first"
            )
        datagram = UdpDatagram(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            payload=payload,
            payload_bytes=payload_bytes,
        )
        self.simulator.send(src, datagram)
        self.stats.datagrams_sent += 1
        self.stats.payload_bytes_sent += payload_bytes
        self.stats.wire_bytes_sent += datagram.wire_bytes()
        return datagram

    def send_raw(self, packet: Any, src: str) -> None:
        """Inject an already-framed packet (e.g. a DAIET packet) from ``src``."""
        self.simulator.send(src, packet)
        self.stats.datagrams_sent += 1
        self.stats.wire_bytes_sent += packet.wire_bytes()
