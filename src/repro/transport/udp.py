"""UDP message transport.

DAIET ships intermediate data in UDP packets (Section 4: "these partitions are
sent to the reducer using UDP packets containing a small preamble and a
sequence of key-value pairs"). This module provides a generic UDP transport for
baselines and control traffic; the DAIET-specific packet layout lives in
:mod:`repro.core.packet` and rides inside the same datagram framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import TransportError
from repro.core.packet import SeenWindow
from repro.netsim.events import Timer
from repro.netsim.simulator import NetworkSimulator
from repro.transport.packets import MessagePayload, UdpDatagram
from repro.transport.window import (
    TransportTuning,
    WindowedSender,
    make_congestion_controller,
    make_rtt_estimator,
)

#: A conventional MTU-limited UDP payload (1500 B MTU minus IP and UDP headers).
DEFAULT_UDP_PAYLOAD_LIMIT = 1472


@dataclass
class UdpStats:
    """Sender-side accounting for UDP transfers."""

    datagrams_sent: int = 0
    payload_bytes_sent: int = 0
    wire_bytes_sent: int = 0


class UdpTransport:
    """Datagram-oriented convenience layer over the simulated network."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        payload_limit: int = DEFAULT_UDP_PAYLOAD_LIMIT,
    ) -> None:
        if payload_limit <= 0:
            raise TransportError("payload_limit must be positive")
        self.simulator = simulator
        self.payload_limit = payload_limit
        self.stats = UdpStats()
        self._listeners: dict[tuple[str, int], Callable[[str, MessagePayload], None]] = {}

    def listen(self, host: str, port: int, callback: Callable[[str, MessagePayload], None]) -> None:
        """Register ``callback(src, payload)`` for datagrams to ``host:port``."""
        self._listeners[(host, port)] = callback
        self.simulator.host(host).set_receiver(self._make_receiver(host))

    def _make_receiver(self, host: str) -> Callable[[Any], None]:
        def receive(packet: Any) -> None:
            if not isinstance(packet, UdpDatagram):
                return
            listener = self._listeners.get((host, packet.dport))
            if listener is None:
                return
            payload = packet.payload
            if not isinstance(payload, MessagePayload):
                payload = MessagePayload(kind="raw", data=payload)
            listener(packet.src, payload)

        return receive

    def send_datagram(
        self,
        src: str,
        dst: str,
        payload: MessagePayload | None,
        payload_bytes: int,
        sport: int = 0,
        dport: int = 0,
    ) -> UdpDatagram:
        """Send a single datagram (caller guarantees it fits the payload limit)."""
        if payload_bytes > self.payload_limit:
            raise TransportError(
                f"datagram payload of {payload_bytes} B exceeds the "
                f"{self.payload_limit} B limit; split the message first"
            )
        datagram = UdpDatagram(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            payload=payload,
            payload_bytes=payload_bytes,
        )
        self.simulator.send(src, datagram)
        self.stats.datagrams_sent += 1
        self.stats.payload_bytes_sent += payload_bytes
        self.stats.wire_bytes_sent += datagram.wire_bytes()
        return datagram

    def send_raw(self, packet: Any, src: str) -> None:
        """Inject an already-framed packet (e.g. a DAIET packet) from ``src``."""
        self.simulator.send(src, packet)
        self.stats.datagrams_sent += 1
        self.stats.wire_bytes_sent += packet.wire_bytes()


# ---------------------------------------------------------------------- #
# Reliable datagram layer
# ---------------------------------------------------------------------- #
#: Per-datagram overhead of the reliability framing (32-bit sequence number).
RELIABLE_UDP_SEQ_BYTES = 4

#: Payload size of a reliability ACK datagram (cumulative + SACK summary).
RELIABLE_UDP_ACK_BYTES = 16

#: Message kinds used by the reliable framing.
_REL_DATA = "udp-rel-data"
_REL_ACK = "udp-rel-ack"


@dataclass
class ReliableUdpStats(UdpStats):
    """Extends the sender accounting with the reliability layer's counters."""

    retransmissions: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_received: int = 0
    #: ECN marks echoed back on ACKs (sender side) — the congestion signal
    #: a DCTCP-style controller reacts to.
    ecn_marks_echoed: int = 0


@dataclass
class _UdpFlow:
    """Sender-side state of one reliable (src, dst, port) flow.

    Sequencing and addressing live here; buffering, ACK processing,
    timeout retransmission, RTT estimation and congestion pacing live in
    the flow's :class:`~repro.transport.window.WindowedSender` engine —
    the same one driving the DAIET reliability channels.
    """

    src: str
    dst: str
    port: int
    next_seq: int = 0
    engine: WindowedSender | None = None


class ReliableUdpTransport(UdpTransport):
    """Cumulative-ACK + timeout-retransmission layer over UDP datagrams.

    The same end-host mechanism the DAIET reliability subsystem uses for
    aggregation traffic, applied to plain datagrams: senders number each
    datagram per (src, dst, port) flow and retransmit on timeout; receivers
    deduplicate with a :class:`~repro.core.packet.SeenWindow` and acknowledge
    every ``ack_window``-th datagram (plus immediately on gaps/duplicates).
    Both endpoints must use this transport; ACKs travel on the same port.

    ``tuning`` selects the adaptive-transport features of the shared
    :class:`~repro.transport.window.WindowedSender` engine (SRTT/RTTVAR
    retransmission timeouts, AIMD/DCTCP congestion windows); the default
    tuning reproduces the historical fixed-RTO, unlimited-window behaviour
    byte for byte. A fixed-mode ``rto_floor`` raises the *effective* base
    timeout for the whole transport — retransmission timers and delayed-ACK
    pacing alike — which is how the baseline comparison's historical 2 ms
    incast guard is expressed.
    """

    def __init__(
        self,
        simulator: NetworkSimulator,
        payload_limit: int = DEFAULT_UDP_PAYLOAD_LIMIT,
        retransmit_timeout: float = 1e-4,
        ack_window: int = 8,
        max_retransmits: int = 30,
        tuning: TransportTuning | None = None,
    ) -> None:
        super().__init__(simulator, payload_limit)
        if retransmit_timeout <= 0:
            raise TransportError("retransmit_timeout must be positive")
        if ack_window <= 0:
            raise TransportError("ack_window must be positive")
        self.tuning = tuning = tuning if tuning is not None else TransportTuning()
        if not tuning.adaptive_rto and tuning.rto_floor is not None:
            retransmit_timeout = max(retransmit_timeout, tuning.rto_floor)
        self.retransmit_timeout = retransmit_timeout
        self.ack_window = ack_window
        self.max_retransmits = max_retransmits
        self.stats = ReliableUdpStats()
        self._flows: dict[tuple[str, str, int], _UdpFlow] = {}
        self._windows: dict[tuple[str, str, int], SeenWindow] = {}
        self._since_ack: dict[tuple[str, str, int], int] = {}
        self._ecn_since_ack: dict[tuple[str, str, int], int] = {}
        self._delayed_acks: dict[tuple[str, str, int], Timer] = {}
        self._apps: dict[tuple[str, int], Callable[[str, MessagePayload], None]] = {}
        #: CE bit of the datagram currently being dispatched (the listener
        #: callback only sees ``(src, payload)``, so the receiver stashes the
        #: packet-level mark here; delivery is synchronous and single-file).
        self._rx_ecn = False

    # ------------------------------------------------------------------ #
    # Receiver side
    # ------------------------------------------------------------------ #
    def listen_reliable(
        self, host: str, port: int, callback: Callable[[str, MessagePayload], None]
    ) -> None:
        """Register an application callback behind the reliability framing."""
        self._apps[(host, port)] = callback
        self._ensure_dispatcher(host, port)

    def _ensure_dispatcher(self, host: str, port: int) -> None:
        if (host, port) not in self._listeners:
            self.listen(host, port, self._make_dispatcher(host, port))

    def _make_receiver(self, host: str) -> Callable[[Any], None]:
        # Stash the datagram's CE bit before the base receiver strips the
        # framing down to (src, payload): _handle_data reads it synchronously
        # while this very packet is being dispatched.
        inner = super()._make_receiver(host)

        def receive(packet: Any) -> None:
            self._rx_ecn = getattr(packet, "ecn", False)
            inner(packet)

        return receive

    def _make_dispatcher(self, host: str, port: int):
        def dispatch(src: str, payload: MessagePayload) -> None:
            if payload.kind == _REL_ACK:
                self._handle_ack(self._flows.get((host, src, port)), payload)
            elif payload.kind == _REL_DATA:
                self._handle_data(host, port, src, payload)
            else:
                app = self._apps.get((host, port))
                if app is not None:
                    app(src, payload)

        return dispatch

    def _handle_data(self, host: str, port: int, src: str, payload: MessagePayload) -> None:
        seq = payload.meta["seq"]
        key = (host, src, port)
        window = self._windows.setdefault(key, SeenWindow())
        fresh = window.observe(seq)
        if fresh and self._rx_ecn:
            self._ecn_since_ack[key] = self._ecn_since_ack.get(key, 0) + 1
        if not fresh:
            self.stats.duplicates_received += 1
        else:
            app = self._apps.get((host, port))
            if app is not None:
                inner = payload.data
                if not isinstance(inner, MessagePayload):
                    inner = MessagePayload(kind="raw", data=inner)
                app(src, inner)
        self._since_ack[key] = self._since_ack.get(key, 0) + 1
        # A CE-marked arrival is acknowledged immediately (DCTCP cadence):
        # the sender's mark-fraction estimate needs the echo now, not after
        # the delayed-ACK window fills.
        if not fresh or self._rx_ecn or self._since_ack[key] >= self.ack_window:
            self._send_ack(host, src, port, window)
        else:
            # Delayed ACK for the stream tail: datagrams short of a full
            # ack_window would otherwise only be recovered by the sender's
            # (much longer) retransmission timeout.
            if key not in self._delayed_acks:
                self._delayed_acks[key] = Timer(
                    self.simulator.scheduler,
                    lambda: self._flush_delayed_ack(host, src, port),
                )
            if not self._delayed_acks[key].active:
                self._delayed_acks[key].start(self.retransmit_timeout / 2)

    def _flush_delayed_ack(self, host: str, peer: str, port: int) -> None:
        key = (host, peer, port)
        if self._since_ack.get(key, 0) > 0:
            self._send_ack(host, peer, port, self._windows[key])

    def _send_ack(self, host: str, peer: str, port: int, window: SeenWindow) -> None:
        cumulative, sack = window.ack_state()
        key = (host, peer, port)
        self._since_ack[key] = 0
        # One mark per ACK, per the DCTCP spec; leftover marks drain on
        # subsequent ACKs rather than batching into one echo count.
        pending = self._ecn_since_ack.get(key, 0)
        echo = 0
        if pending:
            echo = 1
            self._ecn_since_ack[key] = pending - 1
        timer = self._delayed_acks.get(key)
        if timer is not None:
            timer.cancel()
        ack = MessagePayload(
            kind=_REL_ACK,
            meta={"cumulative": cumulative, "sack": sack, "ecn": echo},
        )
        self.send_datagram(
            host, peer, ack, RELIABLE_UDP_ACK_BYTES, sport=port, dport=port
        )
        self.stats.acks_sent += 1

    # ------------------------------------------------------------------ #
    # Sender side
    # ------------------------------------------------------------------ #
    def send_reliable(
        self,
        src: str,
        dst: str,
        payload: MessagePayload | None,
        payload_bytes: int,
        port: int = 0,
    ) -> UdpDatagram:
        """Send one datagram with retransmission until acknowledged.

        With a congestion controller in the tuning, datagrams beyond the
        flow's window queue inside the engine and follow as earlier ones
        are acknowledged; without one every datagram hits the wire
        immediately (the historical behaviour).
        """
        self._ensure_dispatcher(src, port)
        key = (src, dst, port)
        flow = self._flows.get(key)
        if flow is None:
            flow = _UdpFlow(src=src, dst=dst, port=port)
            flow.engine = self._make_engine(flow)
            self._flows[key] = flow
        seq = flow.next_seq
        flow.next_seq += 1
        wrapped = MessagePayload(kind=_REL_DATA, data=payload, meta={"seq": seq})
        framed_bytes = payload_bytes + RELIABLE_UDP_SEQ_BYTES
        if framed_bytes > self.payload_limit:
            raise TransportError(
                f"datagram payload of {framed_bytes} B exceeds the "
                f"{self.payload_limit} B limit; split the message first"
            )
        datagram = UdpDatagram(
            src=src,
            dst=dst,
            sport=port,
            dport=port,
            payload=wrapped,
            payload_bytes=framed_bytes,
        )
        flow.engine.send(((seq, datagram),))
        return datagram

    def _make_engine(self, flow: _UdpFlow) -> WindowedSender:
        tuning = self.tuning
        base = self.retransmit_timeout

        def give_up(_outstanding: int) -> None:
            raise TransportError(
                f"reliable UDP flow {flow.src!r}->{flow.dst!r} gave up after "
                f"{self.max_retransmits} consecutive timeouts"
            )

        def count_timeout() -> None:
            self.stats.timeouts += 1

        return WindowedSender(
            timer_factory=lambda cb: Timer(self.simulator.scheduler, cb),
            transmit=lambda datagrams, retransmit: self._flow_transmit(
                flow, datagrams, retransmit
            ),
            base_timeout=base,
            max_retransmits=self.max_retransmits,
            give_up=give_up,
            on_timeout_stat=count_timeout,
            clock=lambda: self.simulator.now,
            rtt=make_rtt_estimator(tuning, base),
            congestion=make_congestion_controller(tuning),
            initial_inflight_cap=tuning.initial_inflight_cap,
        )

    def _flow_transmit(
        self, flow: _UdpFlow, datagrams: list[UdpDatagram], retransmit: bool
    ) -> None:
        """Engine callback: account one batch and put it on the wire."""
        stats = self.stats
        if retransmit:
            self.simulator.send_burst(flow.src, datagrams)
            stats.retransmissions += len(datagrams)
            stats.wire_bytes_sent += sum(d.wire_bytes() for d in datagrams)
        else:
            send = self.simulator.send
            for datagram in datagrams:
                send(flow.src, datagram)
                stats.datagrams_sent += 1
                stats.payload_bytes_sent += datagram.payload_bytes
                stats.wire_bytes_sent += datagram.wire_bytes()

    def flow_done(self, src: str, dst: str, port: int = 0) -> bool:
        """True when the flow has no unacknowledged or window-queued datagrams."""
        flow = self._flows.get((src, dst, port))
        return flow is None or flow.engine.done

    def _handle_ack(self, flow: _UdpFlow | None, payload: MessagePayload) -> None:
        if flow is None:
            return
        self.stats.acks_received += 1
        echo = payload.meta.get("ecn", 0)
        if echo:
            self.stats.ecn_marks_echoed += echo
        flow.engine.on_ack(
            payload.meta["cumulative"], set(payload.meta.get("sack", ())), echo
        )
