"""Transport models (UDP datagrams, TCP-like streams) over the simulator."""

from repro.transport.packets import MessagePayload, TcpSegment, UdpDatagram
from repro.transport.reliability import (
    HostReliabilityAgent,
    ReliabilityStats,
    ReliableSenderChannel,
)
from repro.transport.tcp import TcpStats, TcpTransport, segment_message
from repro.transport.udp import (
    DEFAULT_UDP_PAYLOAD_LIMIT,
    ReliableUdpStats,
    ReliableUdpTransport,
    UdpStats,
    UdpTransport,
)

__all__ = [
    "MessagePayload",
    "TcpSegment",
    "UdpDatagram",
    "HostReliabilityAgent",
    "ReliabilityStats",
    "ReliableSenderChannel",
    "TcpStats",
    "TcpTransport",
    "segment_message",
    "DEFAULT_UDP_PAYLOAD_LIMIT",
    "ReliableUdpStats",
    "ReliableUdpTransport",
    "UdpStats",
    "UdpTransport",
]
