"""Unified windowed sender: one retransmission engine for every transport.

Before this module existed the repository carried two parallel sender state
machines — :class:`~repro.transport.reliability.ReliableSenderChannel` for
DAIET aggregation traffic and ``_UdpFlow`` inside
:class:`~repro.transport.udp.ReliableUdpTransport` for the baselines — each
with its own retransmit buffer, timer and gap-fill logic, and both pinned to
a *fixed* retransmission timeout. :class:`WindowedSender` subsumes both:

* a shared **retransmit buffer** (sequence number -> opaque packet) with
  cumulative+selective acknowledgement processing, one-shot gap-filling per
  ACK progress and go-back-N retransmission on timeout;
* an optional **RTT estimator** (:class:`RttEstimator`, RFC 6298 SRTT/RTTVAR
  with Karn's rule on retransmitted samples and exponential backoff clamped
  to a configurable floor/ceiling) replacing the fixed timeout;
* an optional **congestion controller** (:class:`AimdController` or the
  DCTCP-style :class:`DctcpController` driven by ECN marks echoed on ACKs)
  that bounds the number of in-flight packets; excess packets queue in the
  sender and are released as acknowledgements open the window.

With neither estimator nor controller installed (the default), the sender
reproduces the historical fixed-RTO, unlimited-window behaviour event for
event — every existing experiment stays byte-identical.

The owner supplies the environment through three callbacks: ``timer_factory``
(a restartable one-shot timer on the simulation clock), ``clock`` (current
simulated time, only consulted when RTT sampling is active) and ``transmit``
(inject a burst of packets and do the owner's accounting). This keeps the
engine free of any dependency on the packet type or the statistics object,
which is exactly what lets DAIET channels and UDP flows share it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.checks.registry import fastpath
from repro.core.errors import TransportError

#: Backoff cap for the fixed-RTO mode: a retransmission timeout never grows
#: beyond this multiple of the base timeout (the historical behaviour).
MAX_BACKOFF_FACTOR = 8

#: Congestion-controller names accepted by :func:`make_congestion_controller`.
CONGESTION_CONTROLLERS = ("none", "aimd", "dctcp")


@dataclass(frozen=True)
class TransportTuning:
    """Adaptive-transport knobs shared by every windowed sender.

    The defaults reproduce the historical transport exactly: fixed
    retransmission timeout, no congestion window, no ECN reaction.

    Parameters
    ----------
    adaptive_rto:
        Estimate the RTO from SRTT/RTTVAR samples (RFC 6298) instead of
        using the base timeout as a fixed RTO.
    rto_floor:
        Lower clamp on the retransmission timeout. In fixed-RTO mode a floor
        above the base timeout simply raises the fixed RTO (this is how the
        baseline comparison's historical 2 ms constant is expressed); in
        adaptive mode it bounds how aggressively the estimator may retransmit.
        ``None`` leaves the base timeout unclamped.
    rto_ceiling:
        Upper clamp on the (adaptive, backed-off) retransmission timeout.
    congestion_control:
        ``"none"`` (unlimited window), ``"aimd"`` (slow start + additive
        increase, multiplicative decrease on loss) or ``"dctcp"`` (AIMD
        whose decrease scales with the EWMA fraction of ECN-marked ACKs).
    initial_cwnd:
        Initial congestion window in packets.
    min_cwnd:
        Smallest window the controller may shrink to.
    dctcp_gain:
        EWMA gain ``g`` of the DCTCP mark-fraction estimate.
    initial_inflight_cap:
        First-RTT pacing: at most this many packets may be in flight before
        the sender has seen its first ACK progress, whatever the congestion
        window says. Once the first acknowledgement arrives the cap lifts
        and the configured window (or the unlimited historical window)
        takes over. ``None`` disables the cap — the historical behaviour.
    """

    adaptive_rto: bool = False
    rto_floor: float | None = None
    rto_ceiling: float = 0.25
    congestion_control: str = "none"
    initial_cwnd: int = 10
    min_cwnd: int = 2
    dctcp_gain: float = 0.0625
    initial_inflight_cap: int | None = None

    def __post_init__(self) -> None:
        if self.congestion_control not in CONGESTION_CONTROLLERS:
            raise TransportError(
                f"unknown congestion controller {self.congestion_control!r}; "
                f"expected one of {CONGESTION_CONTROLLERS}"
            )
        if self.rto_floor is not None and self.rto_floor <= 0:
            raise TransportError("rto_floor must be positive when set")
        if self.rto_ceiling <= 0:
            raise TransportError("rto_ceiling must be positive")
        if self.initial_cwnd <= 0:
            raise TransportError("initial_cwnd must be positive")
        if self.min_cwnd <= 0:
            raise TransportError("min_cwnd must be positive")
        if not 0.0 < self.dctcp_gain <= 1.0:
            raise TransportError("dctcp_gain must lie in (0, 1]")
        if self.initial_inflight_cap is not None and self.initial_inflight_cap <= 0:
            raise TransportError("initial_inflight_cap must be positive when set")

    @property
    def is_default(self) -> bool:
        """True when the tuning changes nothing over the historical transport."""
        return (
            not self.adaptive_rto
            and self.congestion_control == "none"
            and self.initial_inflight_cap is None
        )


# ---------------------------------------------------------------------- #
# RTT estimation (RFC 6298)
# ---------------------------------------------------------------------- #
class RttEstimator:
    """SRTT/RTTVAR retransmission-timeout estimator per RFC 6298.

    * first sample ``R``: ``SRTT = R``, ``RTTVAR = R/2``;
    * later samples: ``RTTVAR = (1-beta)*RTTVAR + beta*|SRTT-R|`` then
      ``SRTT = (1-alpha)*SRTT + alpha*R`` with ``alpha = 1/8``,
      ``beta = 1/4``;
    * ``RTO = SRTT + K*RTTVAR`` (``K = 4``), clamped to ``[floor, ceiling]``;
    * :meth:`backoff` doubles the RTO (timer backoff); the next valid sample
      recomputes it from SRTT, which is what ends a backoff episode.

    Karn's rule lives in the caller (:class:`WindowedSender`): samples are
    simply never taken for retransmitted packets, so this class only ever
    sees valid measurements.
    """

    ALPHA = 0.125
    BETA = 0.25
    K = 4

    __slots__ = ("floor", "ceiling", "srtt", "rttvar", "_rto", "samples")

    def __init__(self, *, initial_rto: float, floor: float, ceiling: float) -> None:
        if floor <= 0:
            raise TransportError("RTO floor must be positive")
        if ceiling < floor:
            raise TransportError("RTO ceiling must not lie below the floor")
        self.floor = floor
        self.ceiling = ceiling
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self._rto = self._clamp(initial_rto)
        self.samples = 0

    def _clamp(self, value: float) -> float:
        if value < self.floor:
            return self.floor
        if value > self.ceiling:
            return self.ceiling
        return value

    @property
    def rto(self) -> float:
        """The current retransmission timeout."""
        return self._rto

    def observe(self, sample: float) -> None:
        """Fold one RTT measurement into SRTT/RTTVAR and recompute the RTO."""
        if sample < 0:
            raise TransportError("RTT samples must be non-negative")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - sample
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * sample
        self.samples += 1
        self._rto = self._clamp(self.srtt + self.K * self.rttvar)

    def backoff(self) -> None:
        """Double the RTO (exponential timer backoff, ceiling-clamped)."""
        self._rto = self._clamp(self._rto * 2)


# ---------------------------------------------------------------------- #
# Congestion control
# ---------------------------------------------------------------------- #
class CongestionController:
    """Interface every pluggable congestion controller implements.

    The windowed sender reports three events — acknowledged packets (with
    the count of ECN marks echoed on the ACK), a SACK-proven hole that
    triggered a gap-fill, and a retransmission timeout — and reads back
    :meth:`window`, the number of packets allowed in flight.
    """

    def window(self) -> int:
        """Current congestion window in whole packets (>= 1)."""
        raise NotImplementedError

    def on_ack(self, acked: int, marked: int) -> None:
        """``acked`` fresh packets acknowledged, ``marked`` of them ECN-marked."""
        raise NotImplementedError

    def on_gap(self) -> None:
        """A selective ACK proved a hole (fast-retransmit-grade loss signal)."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """The retransmission timer fired (severe loss signal)."""
        raise NotImplementedError


class AimdController(CongestionController):
    """Slow start + AIMD, the classic TCP-style controller.

    Below ``ssthresh`` every acknowledged packet grows the window by one
    (slow start); above it the window grows by ``1/cwnd`` per acknowledged
    packet (congestion avoidance). A SACK hole halves the window; a timeout
    collapses it to ``min_cwnd`` and re-enters slow start.
    """

    __slots__ = ("cwnd", "ssthresh", "min_cwnd")

    def __init__(self, *, initial_cwnd: int = 10, min_cwnd: int = 2) -> None:
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self.min_cwnd = float(min_cwnd)

    def window(self) -> int:
        return max(1, int(self.cwnd))

    def on_ack(self, acked: int, marked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += acked
        else:
            self.cwnd += acked / self.cwnd

    def on_gap(self) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2)
        self.cwnd = self.min_cwnd


class DctcpController(AimdController):
    """DCTCP-style controller: scale the decrease by the ECN-marked fraction.

    The controller keeps an EWMA ``alpha`` of the fraction of acknowledged
    packets that carried an ECN mark (gain ``g``), updated once per window
    of acknowledgements, and on a marked window shrinks the congestion
    window by ``alpha/2`` instead of the blanket AIMD halving — small
    persistent queues yield gentle, proportional decreases. Loss events
    (SACK holes, timeouts) still react like AIMD.
    """

    __slots__ = ("gain", "alpha", "_acked_in_round", "_marked_in_round")

    def __init__(
        self,
        *,
        initial_cwnd: int = 10,
        min_cwnd: int = 2,
        gain: float = 0.0625,
    ) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=min_cwnd)
        self.gain = gain
        self.alpha = 0.0
        self._acked_in_round = 0
        self._marked_in_round = 0

    def on_ack(self, acked: int, marked: int) -> None:
        super().on_ack(acked, 0)
        self._acked_in_round += acked
        self._marked_in_round += marked
        if self._acked_in_round >= self.window():
            fraction = self._marked_in_round / self._acked_in_round
            self.alpha = (1 - self.gain) * self.alpha + self.gain * fraction
            if self._marked_in_round:
                self.cwnd = max(self.min_cwnd, self.cwnd * (1 - self.alpha / 2))
                self.ssthresh = max(self.min_cwnd, self.cwnd)
            self._acked_in_round = 0
            self._marked_in_round = 0


def make_congestion_controller(tuning: TransportTuning) -> CongestionController | None:
    """Build the controller the tuning asks for (``None`` for ``"none"``)."""
    if tuning.congestion_control == "aimd":
        return AimdController(
            initial_cwnd=tuning.initial_cwnd, min_cwnd=tuning.min_cwnd
        )
    if tuning.congestion_control == "dctcp":
        return DctcpController(
            initial_cwnd=tuning.initial_cwnd,
            min_cwnd=tuning.min_cwnd,
            gain=tuning.dctcp_gain,
        )
    return None


def tuning_from_config(config: Any) -> TransportTuning:
    """Extract a :class:`TransportTuning` from a configuration object.

    Reads the adaptive-transport attributes of
    :class:`~repro.core.config.DaietConfig` (or anything duck-typed like
    it); missing attributes fall back to the byte-identical defaults, so
    older ad-hoc config objects keep working.
    """
    return TransportTuning(
        adaptive_rto=getattr(config, "adaptive_rto", False),
        rto_floor=getattr(config, "rto_floor", None),
        rto_ceiling=getattr(config, "rto_ceiling", 0.25),
        congestion_control=getattr(config, "congestion_control", "none"),
        initial_cwnd=getattr(config, "initial_cwnd", 10),
        min_cwnd=getattr(config, "min_cwnd", 2),
        dctcp_gain=getattr(config, "dctcp_gain", 0.0625),
        initial_inflight_cap=getattr(config, "initial_inflight_cap", None),
    )


def make_rtt_estimator(
    tuning: TransportTuning, base_timeout: float
) -> RttEstimator | None:
    """Build the RTT estimator the tuning asks for (``None`` when fixed)."""
    if not tuning.adaptive_rto:
        return None
    floor = tuning.rto_floor if tuning.rto_floor is not None else base_timeout
    return RttEstimator(
        initial_rto=base_timeout,
        floor=floor,
        ceiling=max(tuning.rto_ceiling, floor),
    )


# ---------------------------------------------------------------------- #
# The unified sender
# ---------------------------------------------------------------------- #
class WindowedSender:
    """One sender state machine for every reliable transport in the repo.

    The engine owns sequence-indexed buffering, ACK processing, gap-fill,
    timeout retransmission, RTT sampling and window pacing; the owner owns
    packet construction and statistics via the ``transmit`` callback:

    ``transmit(packets, retransmit)``
        Inject ``packets`` (in order, as one burst) and account them;
        ``retransmit`` distinguishes fresh sends from re-sends.

    ``on_timeout_stat()``
        Called once per retransmission timeout, before the give-up check —
        mirrors the historical accounting order exactly.

    ``give_up(outstanding)``
        Called when ``max_retransmits`` consecutive timeouts elapsed without
        progress; must raise the owner's error.
    """

    __slots__ = (
        "base_timeout",
        "max_retransmits",
        "_transmit",
        "_on_timeout_stat",
        "_give_up",
        "_clock",
        "_rtt",
        "_cc",
        "_unacked",
        "_pending",
        "_history",
        "_retransmitted",
        "_sent_at",
        "_consecutive_timeouts",
        "_timer",
        "_initial_cap",
        "retain_history",
    )

    def __init__(
        self,
        *,
        timer_factory: Callable[[Callable[[], None]], Any],
        transmit: Callable[[list[Any], bool], None],
        base_timeout: float,
        max_retransmits: int,
        give_up: Callable[[int], None],
        on_timeout_stat: Callable[[], None] | None = None,
        clock: Callable[[], float] | None = None,
        rtt: RttEstimator | None = None,
        congestion: CongestionController | None = None,
        initial_inflight_cap: int | None = None,
        retain_history: bool = False,
    ) -> None:
        if base_timeout <= 0:
            raise TransportError("retransmit_timeout must be positive")
        self.base_timeout = base_timeout
        self.max_retransmits = max_retransmits
        self._transmit = transmit
        self._on_timeout_stat = on_timeout_stat
        self._give_up = give_up
        self._clock = clock
        self._rtt = rtt
        if rtt is not None and clock is None:
            raise TransportError("adaptive RTO requires a clock callback")
        self._cc = congestion
        #: seq -> packet, in-flight (injected and not yet acknowledged).
        self._unacked: dict[int, Any] = {}
        #: (seq, packet) accepted but still waiting for window space.
        self._pending: deque[tuple[int, Any]] = deque()
        #: seq -> packet for every packet ever accepted (replay log).
        self._history: dict[int, Any] = {}
        #: Sequence numbers retransmitted since the last ACK progress.
        self._retransmitted: set[int] = set()
        #: seq -> injection time for RTT sampling (Karn: a retransmission
        #: deletes the entry, so the sample is never taken).
        self._sent_at: dict[int, float] = {}
        self._consecutive_timeouts = 0
        self._timer = timer_factory(self._on_timeout)
        if initial_inflight_cap is not None and initial_inflight_cap <= 0:
            raise TransportError("initial_inflight_cap must be positive when set")
        #: First-RTT pacing cap; set to ``None`` (lifted) on first ACK progress.
        self._initial_cap = initial_inflight_cap
        self.retain_history = retain_history

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once every accepted packet has been acknowledged."""
        return not self._unacked and not self._pending

    @property
    def outstanding(self) -> int:
        """Packets accepted and not yet acknowledged (in flight + queued)."""
        return len(self._unacked) + len(self._pending)

    @property
    def in_flight(self) -> int:
        """Packets injected into the network and not yet acknowledged."""
        return len(self._unacked)

    @property
    def timer(self) -> Any:
        """The retransmission timer (owner teardown)."""
        return self._timer

    @property
    def rtt(self) -> RttEstimator | None:
        """The installed RTT estimator, if any."""
        return self._rtt

    @property
    def congestion(self) -> CongestionController | None:
        """The installed congestion controller, if any."""
        return self._cc

    def current_rto(self) -> float:
        """The timeout used for the next timer (re)start."""
        if self._rtt is not None:
            return self._rtt.rto
        return self.base_timeout

    def history(self) -> list[Any]:
        """Every packet ever accepted, in sequence order (replay log)."""
        return [self._history[seq] for seq in sorted(self._history)]

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #
    def send(self, items: Iterable[tuple[int, Any]]) -> int:
        """Accept sequenced packets; inject up to the window, queue the rest.

        Returns the number of packets accepted. With no congestion
        controller installed every packet is injected immediately as one
        burst — byte-identical to the historical unwindowed senders.
        """
        window = list(items)
        if window:
            if self.retain_history:
                for seq, packet in window:
                    self._history[seq] = packet
            cc = self._cc
            cap = self._initial_cap
            if cc is None and cap is None:
                allowance = len(window)
            else:
                limit = cc.window() if cc is not None else len(window) + len(self._unacked)
                if cap is not None and cap < limit:
                    limit = cap
                allowance = max(0, limit - len(self._unacked))
            now_batch = window[:allowance]
            for seq, packet in window[allowance:]:
                self._pending.append((seq, packet))
            if now_batch:
                self._inject(now_batch, retransmit=False)
        if self._unacked and not self._timer.active:
            self._timer.start(self.current_rto())
        return len(window)

    def _inject(self, batch: list[tuple[int, Any]], retransmit: bool) -> None:
        """Move a batch into the unacked buffer and hand it to the owner."""
        unacked = self._unacked
        for seq, packet in batch:
            unacked[seq] = packet
        if self._rtt is not None:
            now = self._clock()
            sent_at = self._sent_at
            for seq, _packet in batch:
                sent_at[seq] = now
        self._transmit([packet for _seq, packet in batch], retransmit)

    def _release_pending(self) -> None:
        """Inject queued packets as acknowledgements open the window."""
        cc = self._cc
        cap = self._initial_cap
        if not self._pending:
            return
        if cc is None and cap is None:
            allowance = len(self._pending)
        else:
            limit = cc.window() if cc is not None else len(self._pending) + len(self._unacked)
            if cap is not None and cap < limit:
                limit = cap
            allowance = limit - len(self._unacked)
        if allowance <= 0:
            return
        pending = self._pending
        batch = []
        while pending and allowance > 0:
            batch.append(pending.popleft())
            allowance -= 1
        if batch:
            self._inject(batch, retransmit=False)

    # ------------------------------------------------------------------ #
    # ACK path
    # ------------------------------------------------------------------ #
    @fastpath("window-advance", oracle="tests/transport/test_windowed_sender.py")
    def on_ack(self, cumulative: int, sacked: set[int], marked: int = 0) -> None:
        """Advance the window for one cumulative+selective acknowledgement.

        Drops everything the ACK covers, samples the RTT from the newest
        freshly-acknowledged packet (Karn's rule: never from a retransmitted
        one), gap-fills once per ACK progress when the SACK set proves a
        hole, feeds the congestion controller and releases queued packets
        into the opened window. ``marked`` is the count of ECN-marked
        packets the receiver echoed on this ACK.
        """
        unacked = self._unacked
        acked = [s for s in unacked if s < cumulative or s in sacked]
        sample_ts: float | None = None
        if acked:
            sent_at = self._sent_at
            if self._rtt is not None:
                for seq in acked:
                    ts = sent_at.pop(seq, None)
                    if ts is not None:
                        sample_ts = ts
            elif sent_at:
                for seq in acked:
                    sent_at.pop(seq, None)
            for seq in acked:
                del unacked[seq]
            self._consecutive_timeouts = 0
            # The first-RTT pacing cap lifts on first ACK progress: the
            # path's feedback loop is now live and the window takes over.
            self._initial_cap = None
            # Progress: allow another retransmission round if later ACKs
            # still report holes.
            self._retransmitted.clear()
            if sample_ts is not None:
                self._rtt.observe(self._clock() - sample_ts)
            if self._cc is not None:
                self._cc.on_ack(len(acked), marked)
        if sacked:
            # Gap-fill at most once per ACK progress: duplicate ACKs carrying
            # the same holes must not trigger a retransmission storm.
            horizon = max(sacked)
            retransmitted = self._retransmitted
            missing = sorted(
                s for s in unacked if s < horizon and s not in retransmitted
            )
            if missing:
                retransmitted.update(missing)
                self.retransmit(missing)
                if self._cc is not None:
                    self._cc.on_gap()
        self._release_pending()
        if unacked:
            self._timer.start(self.current_rto())
        else:
            self._timer.cancel()

    def retransmit(self, seqs: list[int]) -> None:
        """Re-inject buffered packets (Karn: their RTT samples are voided)."""
        if not seqs:
            return
        unacked = self._unacked
        sent_at = self._sent_at
        if sent_at:
            for seq in seqs:
                sent_at.pop(seq, None)
        self._transmit([unacked[seq] for seq in seqs], True)

    # ------------------------------------------------------------------ #
    # Timeout path
    # ------------------------------------------------------------------ #
    def _on_timeout(self) -> None:
        if not self._unacked:
            return
        self._consecutive_timeouts += 1
        if self._on_timeout_stat is not None:
            self._on_timeout_stat()
        if self._consecutive_timeouts > self.max_retransmits:
            self._give_up(self.outstanding)
            return
        self.retransmit(sorted(self._unacked))
        if self._cc is not None:
            self._cc.on_timeout()
        if self._rtt is not None:
            self._rtt.backoff()
            self._timer.start(self._rtt.rto)
        else:
            backoff = min(2**self._consecutive_timeouts, MAX_BACKOFF_FACTOR)
            self._timer.start(self.base_timeout * backoff)

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Cancel the timer and drop every buffer except the replay log."""
        self._timer.cancel()
        self._unacked.clear()
        self._pending.clear()
        self._retransmitted.clear()
        self._sent_at.clear()
