"""Simulated transport-layer packets (UDP datagrams and TCP segments).

Both packet types expose the two methods the rest of the system relies on:

* ``wire_bytes()`` — the full on-the-wire size including Ethernet/IP/transport
  headers, used by links, hosts and the traffic statistics;
* ``header_stack()`` — the ordered list of headers the switch parser extracts,
  used to enforce the bounded parse depth.

Payloads are opaque application objects plus an explicit payload size, so that
applications can attach structured data (e.g. lists of key-value pairs) without
the simulator having to serialize it for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.config import (
    ETHERNET_HEADER_BYTES,
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)
from repro.core.errors import TransportError

#: Header size profiles are address-independent, so one shared tuple serves
#: every datagram/segment (parser fast path; see ``HeaderParser.charge``).
_UDP_HEADER_SIZES = (
    ("ethernet", ETHERNET_HEADER_BYTES),
    ("ipv4", IP_HEADER_BYTES),
    ("udp", UDP_HEADER_BYTES),
)
_TCP_HEADER_SIZES = (
    ("ethernet", ETHERNET_HEADER_BYTES),
    ("ipv4", IP_HEADER_BYTES),
    ("tcp", TCP_HEADER_BYTES),
)


@dataclass
class UdpDatagram:
    """A UDP datagram addressed host-to-host.

    Attributes
    ----------
    src, dst:
        Host names (the simulator's addressing scheme).
    sport, dport:
        UDP ports; applications use ``dport`` to demultiplex.
    payload:
        Opaque application payload object (may be ``None``).
    payload_bytes:
        Serialized size of the payload on the wire.
    """

    src: str
    dst: str
    sport: int = 0
    dport: int = 0
    payload: Any = None
    payload_bytes: int = 0
    #: ECN congestion-experienced bit, set in flight by a congested switch
    #: egress queue (rides in the IP header: no wire-size change).
    ecn: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise TransportError("payload_bytes must be non-negative")

    def wire_bytes(self) -> int:
        """Full frame size: Ethernet + IPv4 + UDP headers + payload."""
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + UDP_HEADER_BYTES
            + self.payload_bytes
        )

    def header_stack(self) -> list[tuple[str, Any, int]]:
        """Headers visible to the switch parser (payload is not parsed)."""
        return [
            ("ethernet", {"src": self.src, "dst": self.dst}, ETHERNET_HEADER_BYTES),
            ("ipv4", {"src": self.src, "dst": self.dst}, IP_HEADER_BYTES),
            ("udp", {"sport": self.sport, "dport": self.dport}, UDP_HEADER_BYTES),
        ]

    def header_sizes(self) -> tuple[tuple[str, int], ...]:
        """The ``(name, nbytes)`` parse profile (parser fast path)."""
        return _UDP_HEADER_SIZES

    def parse_depth_bytes(self) -> int:
        """Total parseable bytes (the opaque payload is never parsed)."""
        return ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + UDP_HEADER_BYTES


@dataclass
class TcpSegment:
    """A TCP segment belonging to a host-to-host byte stream."""

    src: str
    dst: str
    sport: int = 0
    dport: int = 0
    seq: int = 0
    payload: Any = None
    payload_bytes: int = 0
    #: Marks the last segment of an application-level message, so receivers
    #: can reassemble without modelling full TCP state machines.
    fin: bool = False
    #: ECN congestion-experienced bit, set in flight by a congested switch
    #: egress queue (rides in the IP header: no wire-size change).
    ecn: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise TransportError("payload_bytes must be non-negative")
        if self.seq < 0:
            raise TransportError("seq must be non-negative")

    def wire_bytes(self) -> int:
        """Full frame size: Ethernet + IPv4 + TCP headers + payload."""
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + TCP_HEADER_BYTES
            + self.payload_bytes
        )

    def header_stack(self) -> list[tuple[str, Any, int]]:
        """Headers visible to the switch parser."""
        return [
            ("ethernet", {"src": self.src, "dst": self.dst}, ETHERNET_HEADER_BYTES),
            ("ipv4", {"src": self.src, "dst": self.dst}, IP_HEADER_BYTES),
            ("tcp", {"sport": self.sport, "dport": self.dport, "seq": self.seq}, TCP_HEADER_BYTES),
        ]

    def header_sizes(self) -> tuple[tuple[str, int], ...]:
        """The ``(name, nbytes)`` parse profile (parser fast path)."""
        return _TCP_HEADER_SIZES

    def parse_depth_bytes(self) -> int:
        """Total parseable bytes (the opaque payload is never parsed)."""
        return ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + TCP_HEADER_BYTES


@dataclass
class MessagePayload:
    """Standard application payload wrapper used by the shuffle transports.

    Attributes
    ----------
    kind:
        Application-defined message kind (e.g. ``"map_output"`` or ``"end"``).
    data:
        The structured application data (e.g. a list of key-value pairs).
    meta:
        Extra fields such as the sending task id or the reducer partition.
    """

    kind: str
    data: Any = None
    meta: dict[str, Any] = field(default_factory=dict)
