"""End-host reliability for DAIET aggregation traffic.

The paper ships map output over raw UDP and leans on "lightweight reliability
mechanisms at the end-hosts" to survive loss; this module supplies them for
the reproduction. The protocol is hop-scoped along the aggregation tree,
because in-network aggregation *consumes* packets — a mapper's packet cannot
be acknowledged end-to-end by the reducer when a switch has already folded it
into a register:

* every child-to-parent hop (mapper -> first switch, switch -> switch,
  switch -> reducer) numbers its DATA/END packets with a per-(tree, sender)
  sequence number (:class:`~repro.core.packet.DaietPacket.seq`);
* the parent deduplicates via a :class:`~repro.core.packet.SeenWindow` and
  answers with cumulative+selective :class:`~repro.core.packet.DaietAck`
  packets (every ``ack_window`` packets, plus immediately on duplicates and
  END markers; gaps ride in those ACKs' SACK fields);
* host senders keep unacknowledged packets in a retransmit buffer driven by
  a timeout :class:`~repro.netsim.events.Timer` with exponential backoff;
* switches have no timers, so their buffered flush packets are retransmitted
  reactively — the *receiving host* runs a pull timer that re-ACKs (with
  ``pull=True``) while its streams are incomplete, and the switch resends
  whatever is still outstanding (see
  :meth:`~repro.core.aggregation.DaietAggregationEngine.handle_ack`).

END markers carry the final sequence number of their stream, so a parent
never counts a child as finished while any of its DATA packets are missing —
the property that turns "mostly right under loss" into bit-identical results.

This mirrors the selective-integrity idea of SAP (Ransford & Ceze): only the
aggregation traffic that needs protection pays for it, and only in proportion
to the loss actually experienced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.errors import TransportError
from repro.core.packet import DaietAck, DaietPacket, DaietPacketType, SeenWindow
from repro.transport.window import (
    MAX_BACKOFF_FACTOR,
    TransportTuning,
    WindowedSender,
    make_congestion_controller,
    make_rtt_estimator,
    tuning_from_config,
)

__all__ = [
    "MAX_BACKOFF_FACTOR",
    "HostReliabilityAgent",
    "ReliabilityStats",
    "ReliableSenderChannel",
]


@dataclass
class ReliabilityStats:
    """Accounting for one host's reliability agent (senders + receivers)."""

    packets_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_received: int = 0
    pulls_sent: int = 0
    wire_bytes_sent: int = 0
    wire_bytes_retransmitted: int = 0
    #: ECN marks echoed back by receivers on this host's streams (sender
    #: side) — the congestion signal a DCTCP-style controller reacts to.
    ecn_marks_echoed: int = 0
    #: Packets a degraded (non-exact policy) sender stopped retransmitting
    #: after exhausting its retries: the stream terminates with a measured
    #: deficit instead of raising (see ``reliability_policy``).
    abandoned_packets: int = 0

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dictionary."""
        return dict(self.__dict__)


class ReliableSenderChannel:
    """Sender side of one (host, tree) stream over a :class:`WindowedSender`.

    The channel assigns consecutive sequence numbers and owns the DAIET
    packet framing and statistics; buffering, ACK processing, gap-fill,
    timeout retransmission, RTT estimation and congestion-window pacing all
    live in the shared :class:`~repro.transport.window.WindowedSender`
    engine (the same one driving the reliable-UDP baseline flows). With the
    default :class:`~repro.transport.window.TransportTuning` the behaviour —
    fixed RTO with capped exponential backoff, unlimited window, go-back-N
    on timeout, one gap-fill per ACK progress — is event-for-event identical
    to the historical standalone implementation.
    """

    def __init__(
        self,
        simulator: Any,
        host: str,
        tree_id: int,
        *,
        retransmit_timeout: float,
        max_retransmits: int,
        stats: ReliabilityStats,
        retain_for_replay: bool = False,
        tuning: TransportTuning | None = None,
        policy: str = "exact",
    ) -> None:
        if retransmit_timeout <= 0:
            raise TransportError("retransmit_timeout must be positive")
        self.simulator = simulator
        self.host = host
        self.tree_id = tree_id
        #: Reliability policy of the tree this channel feeds. Non-exact
        #: policies degrade on give-up (drop the outstanding packets and
        #: count them) instead of raising: an approximate tree must never
        #: abort the run over loss it has chosen to tolerate.
        self.policy = policy
        self.tuning = tuning = tuning if tuning is not None else TransportTuning()
        # In fixed-RTO mode the floor simply raises the base timeout (this is
        # how the baseline comparison's historical 2 ms constant is spelled);
        # in adaptive mode the estimator clamps against it instead.
        base = retransmit_timeout
        if not tuning.adaptive_rto and tuning.rto_floor is not None:
            base = max(base, tuning.rto_floor)
        self.retransmit_timeout = base
        self.max_retransmits = max_retransmits
        self.stats = stats
        #: Keep every packet ever sent (not just the unacknowledged ones) so
        #: the failover manager can replay a mapper's whole stream through a
        #: re-planned tree. The map-output buffer is the recovery log.
        self.retain_for_replay = retain_for_replay
        self._next_seq = 0
        self._engine = WindowedSender(
            timer_factory=simulator.timer,
            transmit=self._transmit,
            base_timeout=base,
            max_retransmits=max_retransmits,
            give_up=self._give_up,
            on_timeout_stat=self._count_timeout,
            clock=lambda: simulator.now,
            rtt=make_rtt_estimator(tuning, base),
            congestion=make_congestion_controller(tuning),
            initial_inflight_cap=tuning.initial_inflight_cap,
            retain_history=retain_for_replay,
        )

    @property
    def done(self) -> bool:
        """True once every sent packet has been acknowledged."""
        return self._engine.done

    @property
    def outstanding(self) -> int:
        """Number of unacknowledged packets (in flight plus window-queued)."""
        return self._engine.outstanding

    @property
    def engine(self) -> WindowedSender:
        """The underlying windowed sender (diagnostics, tests)."""
        return self._engine

    def take_seq(self) -> int:
        """Reserve the next sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def send(self, packets: Iterable[DaietPacket]) -> int:
        """Buffer sequenced packets and inject them up to the send window.

        Without a congestion controller the whole window is injected as one
        burst event (see
        :meth:`~repro.netsim.simulator.NetworkSimulator.send_burst`): the
        packets hit the wire in order at the same simulated time as
        per-packet sends would, but cost one scheduler entry instead of N.
        With a controller, packets beyond the congestion window queue in the
        engine and follow as acknowledgements open it.
        """
        # Validate the whole window before buffering or counting anything:
        # a bad packet mid-iteration must not leave earlier packets stranded
        # in the retransmit buffer without ever hitting the wire.
        window = list(packets)
        for packet in window:
            if packet.seq is None:
                raise TransportError(
                    "reliable channels require packets with sequence numbers"
                )
        return self._engine.send((packet.seq, packet) for packet in window)

    def on_ack(self, ack: DaietAck) -> None:
        """Drop acknowledged packets; gap-fill when the ACK proves a hole."""
        stats = self.stats
        stats.acks_received += 1
        echo = ack.ecn_echo
        if echo:
            stats.ecn_marks_echoed += echo
        self._engine.on_ack(ack.cumulative, set(ack.sack), echo)

    def _transmit(self, packets: list[DaietPacket], retransmit: bool) -> None:
        """Engine callback: account one batch and put it on the wire."""
        stats = self.stats
        if retransmit:
            self.simulator.send_burst(self.host, packets)
            wire_bytes = sum(packet.wire_bytes() for packet in packets)
            stats.retransmissions += len(packets)
            stats.wire_bytes_sent += wire_bytes
            stats.wire_bytes_retransmitted += wire_bytes
        else:
            for packet in packets:
                stats.packets_sent += 1
                stats.wire_bytes_sent += packet.wire_bytes()
            self.simulator.send_burst(self.host, packets)

    def _count_timeout(self) -> None:
        self.stats.timeouts += 1

    def _give_up(self, outstanding: int) -> None:
        if self.policy != "exact":
            # Degraded mode: stop retransmitting, count the abandoned
            # packets and let the aggregate close with a reported deficit.
            self.stats.abandoned_packets += outstanding
            self._engine.close()
            return
        raise TransportError(
            f"host {self.host!r} gave up on tree {self.tree_id} after "
            f"{self.max_retransmits} consecutive retransmission timeouts "
            f"({outstanding} packets still unacknowledged)"
        )

    def sent_packets(self) -> list[DaietPacket]:
        """Every packet ever sent on this channel, in sequence order.

        Empty unless the channel was created with ``retain_for_replay``.
        """
        return self._engine.history()

    def close(self) -> None:
        """Cancel the retransmit timer and drop the buffers.

        Called when the channel's tree epoch ends (failover re-plan): the
        replacement channel owns the stream from then on, and a closed
        channel must never fire a timeout for the dead epoch.
        """
        self._engine.close()


@dataclass
class _TreeReceiveState:
    """Receiver side of one tree at a host: dedup windows plus the pull timer."""

    tree_id: int
    children: tuple[str, ...]
    inner: Callable[[Any], None]
    #: Reliability policy of this tree (``"exact"`` | ``"sampled"`` |
    #: ``"best_effort"``); ``"sampled"`` strides the steady ACK cadence
    #: and the pull timer (see ``sampled_ack_stride``).
    policy: str = "exact"
    windows: dict[str, SeenWindow] = field(default_factory=dict)
    since_ack: dict[str, int] = field(default_factory=dict)
    #: Fresh packets per child that arrived ECN-marked since the last ACK.
    #: A marked arrival forces an immediate ACK and each ACK echoes at most
    #: one mark (DCTCP cadence); leftovers drain on subsequent ACKs.
    ecn_since_ack: dict[str, int] = field(default_factory=dict)
    ended: set[str] = field(default_factory=set)
    pending_end: dict[str, DaietPacket] = field(default_factory=dict)
    #: Children whose current gap episode has already been announced with
    #: an immediate SACK (sampled policy): one early ACK per fresh hole,
    #: the rest of the repair rides the strided cadence and pulls.
    gapped: set[str] = field(default_factory=set)
    pull_timer: Any = None
    pulls_without_progress: int = 0

    @property
    def done(self) -> bool:
        """True once every child's stream completed (END seen, no gaps)."""
        return set(self.children) <= self.ended


class HostReliabilityAgent:
    """Per-host reliability endpoint multiplexing every tree the host touches.

    A host may simultaneously be a mapper (sender channels) and a reducer
    (receive states) for different trees; the agent owns the host's receiver
    callback and dispatches ACKs to sender channels, sequenced DAIET packets
    to the dedup/ACK path, and everything else to the per-tree application
    receiver (or the optional fallback).
    """

    def __init__(
        self,
        simulator: Any,
        host: str,
        *,
        retransmit_timeout: float,
        ack_window: int,
        max_retransmits: int,
        retain_for_replay: bool = False,
        tuning: TransportTuning | None = None,
        sampled_ack_stride: int = 4,
    ) -> None:
        if ack_window <= 0:
            raise TransportError("ack_window must be positive")
        if sampled_ack_stride <= 0:
            raise TransportError("sampled_ack_stride must be positive")
        self.simulator = simulator
        self.host = host
        self.retransmit_timeout = retransmit_timeout
        self.ack_window = ack_window
        self.sampled_ack_stride = sampled_ack_stride
        self.max_retransmits = max_retransmits
        self.retain_for_replay = retain_for_replay
        self.tuning = tuning if tuning is not None else TransportTuning()
        self.stats = ReliabilityStats()
        self._senders: dict[int, ReliableSenderChannel] = {}
        self._recv: dict[int, _TreeReceiveState] = {}
        self._fallback: Callable[[Any], None] | None = None
        simulator.host(host).set_receiver(self.receive)

    @classmethod
    def from_config(cls, simulator: Any, host: str, config: Any) -> "HostReliabilityAgent":
        """Build an agent from a :class:`~repro.core.config.DaietConfig`.

        Keeps the knob plumbing in one place for every caller wiring
        reliability (:class:`~repro.core.daiet.DaietSystem`, the DAIET
        shuffle, ad-hoc experiment harnesses).
        """
        return cls(
            simulator,
            host,
            retransmit_timeout=config.retransmit_timeout,
            ack_window=config.ack_window,
            max_retransmits=config.max_retransmits,
            retain_for_replay=getattr(config, "retain_for_replay", False),
            tuning=tuning_from_config(config),
            sampled_ack_stride=getattr(config, "sampled_ack_stride", 4),
        )

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def sender(self, tree_id: int, policy: str = "exact") -> ReliableSenderChannel:
        """The (created-on-demand) sender channel for one tree.

        ``policy`` is the tree's reliability policy; it only matters on the
        call that creates the channel (non-exact policies degrade instead
        of raising when the sender exhausts its retries).
        """
        if tree_id not in self._senders:
            self._senders[tree_id] = ReliableSenderChannel(
                self.simulator,
                self.host,
                tree_id,
                retransmit_timeout=self.retransmit_timeout,
                max_retransmits=self.max_retransmits,
                stats=self.stats,
                retain_for_replay=self.retain_for_replay,
                tuning=self.tuning,
                policy=policy,
            )
        return self._senders[tree_id]

    def attach_tree(
        self,
        tree_id: int,
        children: Iterable[str],
        inner: Callable[[Any], None],
        policy: str = "exact",
    ) -> None:
        """Install the application receiver for one tree rooted at this host."""
        state = _TreeReceiveState(
            tree_id=tree_id,
            children=tuple(children),
            inner=inner,
            policy=policy,
        )
        state.pull_timer = self.simulator.timer(lambda: self._on_pull(tree_id))
        self._recv[tree_id] = state

    def detach_tree(self, tree_id: int) -> None:
        """Remove one tree's receive state and stop its pull timer.

        Used on failover: the old tree epoch's dedup windows must not be
        consulted for the replacement tree (its sequence space restarts),
        and a dangling pull timer would keep ACKing the dead epoch forever.
        Unknown ids are ignored.
        """
        state = self._recv.pop(tree_id, None)
        if state is not None and state.pull_timer is not None:
            state.pull_timer.cancel()

    def drop_sender(self, tree_id: int) -> ReliableSenderChannel | None:
        """Close and remove one tree's sender channel (failover teardown).

        Returns the closed channel so the caller can still read its
        retained history. Unknown ids return ``None``.
        """
        channel = self._senders.pop(tree_id, None)
        if channel is not None:
            channel.close()
        return channel

    def set_fallback(self, receiver: Callable[[Any], None] | None) -> None:
        """Receiver for packets no reliability state claims (e.g. raw UDP)."""
        self._fallback = receiver

    def arm(self, tree_id: int) -> None:
        """Start the pull timer for a tree expecting traffic.

        Called when a round begins; without it a receiver whose *entire*
        input was lost would never notice. Idempotent while already armed.
        """
        state = self._recv.get(tree_id)
        if state is None or state.done or state.pull_timer.active:
            return
        state.pull_timer.start(self._pull_interval(state))

    def sender_channels(self) -> dict[int, ReliableSenderChannel]:
        """The sender channels keyed by tree id (diagnostics)."""
        return dict(self._senders)

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #
    def receive(self, packet: Any) -> None:
        """Host receiver callback installed on the simulated NIC."""
        if isinstance(packet, DaietAck):
            channel = self._senders.get(packet.tree_id)
            if channel is not None and packet.dst == self.host:
                channel.on_ack(packet)
            return
        if isinstance(packet, DaietPacket):
            state = self._recv.get(packet.tree_id)
            if state is not None:
                if packet.seq is None:
                    # Legacy sender without reliability: deliver as-is.
                    state.inner(packet)
                else:
                    self._receive_sequenced(state, packet)
                return
        if self._fallback is not None:
            self._fallback(packet)

    def _receive_sequenced(self, state: _TreeReceiveState, packet: DaietPacket) -> None:
        src = packet.src
        window = state.windows.setdefault(src, SeenWindow())
        if not window.observe(packet.seq):
            self.stats.duplicates_received += 1
            self._send_ack(state, src)
            return
        state.pulls_without_progress = 0
        if packet.ecn:
            state.ecn_since_ack[src] = state.ecn_since_ack.get(src, 0) + 1
        fresh_gap = False
        if state.policy == "sampled":
            # Sampled cadence still announces a *fresh* hole immediately —
            # one early SACK per gap episode keeps the sender's gap-fill
            # ahead of its retransmission timer without re-ACKing every
            # out-of-order packet of the episode.
            if window.has_gaps:
                fresh_gap = src not in state.gapped
                state.gapped.add(src)
            else:
                state.gapped.discard(src)
        if packet.packet_type is DaietPacketType.END:
            window.end_seq = packet.seq
            state.pending_end[src] = packet
        else:
            state.inner(packet)
            state.since_ack[src] = state.since_ack.get(src, 0) + 1
        if window.complete and src not in state.ended:
            # The child's stream is whole: deliver its END exactly once.
            state.ended.add(src)
            window.end_seq = None
            end = state.pending_end.pop(src, None)
            if end is not None:
                state.inner(end)
            self._send_ack(state, src)
        elif (
            packet.packet_type is DaietPacketType.END
            or packet.ecn
            or fresh_gap
            or state.since_ack.get(src, 0) >= self._ack_window_for(state)
        ):
            self._send_ack(state, src)
        if state.done:
            state.pull_timer.cancel()
        elif not state.pull_timer.active:
            # Traffic is flowing: keep a pull pending so a lost tail (or a
            # lost switch flush) is eventually re-requested.
            state.pull_timer.start(self._pull_interval(state))

    # ------------------------------------------------------------------ #
    # ACK/pull generation
    # ------------------------------------------------------------------ #
    def _ack_window_for(self, state: _TreeReceiveState) -> int:
        """Steady in-order ACK cadence for one tree (strided when sampled)."""
        if state.policy == "sampled":
            return self.ack_window * self.sampled_ack_stride
        return self.ack_window

    def _pull_interval(self, state: _TreeReceiveState | None = None) -> float:
        interval = 2 * self.retransmit_timeout
        if state is not None and state.policy == "sampled":
            interval *= self.sampled_ack_stride
        return interval

    def _send_ack(self, state: _TreeReceiveState, src: str, pull: bool = False) -> None:
        window = state.windows.setdefault(src, SeenWindow())
        cumulative, sack = window.ack_state()
        state.since_ack[src] = 0
        # One mark per ACK, per the DCTCP spec: a burst of CE-marked packets
        # drains one echo at a time over subsequent ACKs instead of being
        # batched into a single inflated echo count.
        pending = state.ecn_since_ack.get(src, 0)
        echo = 0
        if pending:
            echo = 1
            state.ecn_since_ack[src] = pending - 1
        ack = DaietAck(
            tree_id=state.tree_id,
            src=self.host,
            dst=src,
            cumulative=cumulative,
            sack=sack,
            pull=pull,
            ecn_echo=echo,
        )
        self.simulator.send(self.host, ack)
        self.stats.acks_sent += 1
        if pull:
            self.stats.pulls_sent += 1

    def _on_pull(self, tree_id: int) -> None:
        state = self._recv.get(tree_id)
        if state is None or state.done:
            return
        state.pulls_without_progress += 1
        if state.pulls_without_progress > self.max_retransmits:
            # Give up pulling so the simulation terminates; the caller's
            # correctness check reports the unrecovered loss.
            return
        for child in state.children:
            if child not in state.ended:
                self._send_ack(state, child, pull=True)
        state.pull_timer.start(self._pull_interval(state))
