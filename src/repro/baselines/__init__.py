"""Comparison systems: the paper's two baselines plus worker-level aggregation."""

from repro.baselines.host_aggregation import HostAggregationShuffle
from repro.baselines.tcp_shuffle import TcpShuffle
from repro.baselines.udp_shuffle import UdpShuffle

__all__ = ["HostAggregationShuffle", "TcpShuffle", "UdpShuffle"]
