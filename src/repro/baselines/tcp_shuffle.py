"""Baseline (i): the original TCP-based data exchange.

Each map task sends its sorted partition to each reducer as one TCP stream;
the kernel segments it at the MSS, so a partition of ``n`` serialized bytes
becomes ``ceil(n / MSS)`` large segments. Reducers receive one pre-sorted run
per map task and merge them — no aggregation happens anywhere before the
reduce function itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DEFAULT_TCP_MSS
from repro.core.errors import JobError
from repro.mapreduce.mapper import MapOutput
from repro.mapreduce.shuffle import ShuffleTransport
from repro.transport.packets import MessagePayload
from repro.transport.tcp import TcpTransport

#: Destination port reducers listen on for shuffle streams.
SHUFFLE_PORT = 7070


@dataclass
class _TcpReducerBuffer:
    """Sorted runs buffered for one reducer until the run completes."""

    runs: list[list[tuple[str, int]]] = field(default_factory=list)
    payload_bytes: int = 0
    messages: int = 0


class TcpShuffle(ShuffleTransport):
    """The unmodified MapReduce shuffle over (modelled) TCP."""

    name = "tcp"

    def __init__(self, mss: int = DEFAULT_TCP_MSS) -> None:
        super().__init__()
        self.mss = mss
        self.transport: TcpTransport | None = None
        self._buffers: dict[int, _TcpReducerBuffer] = {}

    def _prepare(self) -> None:
        self.transport = TcpTransport(self.cluster.simulator, mss=self.mss)
        for reducer_id, host in enumerate(self.placement.reducer_hosts):
            buffer = _TcpReducerBuffer()
            self._buffers[reducer_id] = buffer
            self.transport.listen(host, SHUFFLE_PORT, self._make_listener(buffer))

    @staticmethod
    def _make_listener(buffer: _TcpReducerBuffer):
        def on_message(src: str, payload: MessagePayload) -> None:
            if payload.kind != "map_output":
                return
            buffer.runs.append(list(payload.data))
            buffer.payload_bytes += payload.meta.get("serialized_bytes", 0)
            buffer.messages += 1

        return on_message

    def transfer(self, map_outputs: list[MapOutput]) -> None:
        if self.transport is None:
            raise JobError("TcpShuffle.transfer() called before prepare()")
        pair_bytes = self.spec.daiet.pair_bytes
        for output in map_outputs:
            for reducer_id, reducer_host in enumerate(self.placement.reducer_hosts):
                pairs = output.sorted_partition(reducer_id)
                if not pairs:
                    continue
                serialized_bytes = len(pairs) * pair_bytes
                if output.host == reducer_host:
                    self.reduce_task(reducer_id).add_sorted_run(pairs, from_network=False)
                    self.accounting.local_pairs += len(pairs)
                    continue
                self.accounting.network_pairs += len(pairs)
                payload = MessagePayload(
                    kind="map_output",
                    data=pairs,
                    meta={
                        "mapper_id": output.mapper_id,
                        "serialized_bytes": serialized_bytes,
                    },
                )
                segments = self.transport.send_message(
                    src=output.host,
                    dst=reducer_host,
                    message_bytes=serialized_bytes,
                    payload=payload,
                    dport=SHUFFLE_PORT,
                )
                self.accounting.packets_sent += segments
                self.accounting.payload_bytes_sent += serialized_bytes

    def finalize(self) -> None:
        for reducer_id, buffer in self._buffers.items():
            task = self.reduce_task(reducer_id)
            for run in buffer.runs:
                task.add_sorted_run(run, from_network=True)
            task.metrics.payload_bytes_received += buffer.payload_bytes
