"""Baseline (ii): UDP with the DAIET protocol but no in-network aggregation.

Mappers packetize their partitions exactly like DAIET (small UDP packets with
at most ten fixed-size pairs plus an END marker), but the switches merely
forward the packets: no aggregation trees are installed. The reducer therefore
receives the full, unordered intermediate data. This isolates the effect of the
packet format (many small packets) from the effect of in-network aggregation,
which is how the paper separates the two packet-count reductions in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DaietConfig
from repro.core.errors import JobError
from repro.core.packet import DaietPacket, DaietPacketType, packetize_pairs
from repro.mapreduce.mapper import MapOutput
from repro.mapreduce.shuffle import ShuffleTransport


@dataclass
class _UdpReducerBuffer:
    """Unsorted pairs buffered for one reducer."""

    tree_id: int
    expected_ends: int = 0
    pairs: list[tuple[str, int]] = field(default_factory=list)
    payload_bytes: int = 0
    ends_seen: int = 0

    @property
    def done(self) -> bool:
        return self.ends_seen >= self.expected_ends


class UdpShuffle(ShuffleTransport):
    """The DAIET wire protocol without any switch-side aggregation."""

    name = "udp"

    def __init__(self, config: DaietConfig | None = None) -> None:
        super().__init__()
        self.config = config or DaietConfig()
        self._buffers: dict[int, _UdpReducerBuffer] = {}

    def _prepare(self) -> None:
        # Tree ids are still assigned (the packet format requires one), but no
        # controller state is installed, so the daiet_steer tables stay empty
        # and every switch simply forwards by destination.
        for reducer_id, host in enumerate(self.placement.reducer_hosts):
            buffer = _UdpReducerBuffer(tree_id=reducer_id + 1)
            self._buffers[reducer_id] = buffer
            self.cluster.simulator.host(host).set_receiver(self._make_receiver(buffer))

    @staticmethod
    def _make_receiver(buffer: _UdpReducerBuffer):
        def receive(packet) -> None:
            if not isinstance(packet, DaietPacket) or packet.tree_id != buffer.tree_id:
                return
            buffer.payload_bytes += packet.payload_bytes()
            if packet.packet_type is DaietPacketType.END:
                buffer.ends_seen += 1
                return
            buffer.pairs.extend(packet.pairs)

        return receive

    def transfer(self, map_outputs: list[MapOutput]) -> None:
        if not self._buffers:
            raise JobError("UdpShuffle.transfer() called before prepare()")
        for reducer_id, reducer_host in enumerate(self.placement.reducer_hosts):
            buffer = self._buffers[reducer_id]
            for mapper_host, pairs in self.pairs_by_host(map_outputs, reducer_id).items():
                if mapper_host == reducer_host:
                    self.reduce_task(reducer_id).add_unsorted_pairs(pairs, from_network=False)
                    self.accounting.local_pairs += len(pairs)
                    continue
                buffer.expected_ends += 1
                self.accounting.network_pairs += len(pairs)
                # One burst event per (mapper, reducer) stream: same wire
                # behaviour as per-packet sends, one scheduler entry.
                packets = list(
                    packetize_pairs(
                        pairs,
                        tree_id=buffer.tree_id,
                        src=mapper_host,
                        dst=reducer_host,
                        config=self.config,
                        include_end=True,
                    )
                )
                self.cluster.simulator.send_burst(mapper_host, packets)
                for packet in packets:
                    self.accounting.packets_sent += 1
                    self.accounting.payload_bytes_sent += packet.payload_bytes()

    def finalize(self) -> None:
        for reducer_id, buffer in self._buffers.items():
            if not buffer.done:
                raise JobError(
                    f"reducer {reducer_id} saw {buffer.ends_seen} END packets, "
                    f"expected {buffer.expected_ends}"
                )
            task = self.reduce_task(reducer_id)
            task.add_unsorted_pairs(buffer.pairs, from_network=True)
            task.metrics.payload_bytes_received += buffer.payload_bytes
