"""Reference point: worker-level (host-side) aggregation.

The paper's introduction notes that frameworks such as MapReduce, Pregel and
DryadLINQ already let developers register aggregation functions, "however, the
aggregation functions are only applied at the worker-level, missing the
opportunity of achieving better traffic reduction ratios when applied at the
network level". This transport models that design point: every worker host
combines the output of its local map tasks per reducer before sending it over
TCP. It is the natural comparison for the ablation that asks how much of
DAIET's gain comes from aggregation *location* rather than from aggregation
per se.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DEFAULT_TCP_MSS
from repro.core.errors import JobError
from repro.core.functions import aggregate_pairs
from repro.mapreduce.mapper import MapOutput
from repro.mapreduce.shuffle import ShuffleTransport
from repro.transport.packets import MessagePayload
from repro.transport.tcp import TcpTransport

#: Destination port reducers listen on for combined shuffle streams.
SHUFFLE_PORT = 7071


@dataclass
class _HostAggReducerBuffer:
    """Pre-combined, sorted runs buffered for one reducer."""

    runs: list[list[tuple[str, int]]] = field(default_factory=list)
    payload_bytes: int = 0


class HostAggregationShuffle(ShuffleTransport):
    """Worker-level combiners over TCP (NetAgg/worker-combiner style baseline)."""

    name = "host_agg"

    def __init__(self, mss: int = DEFAULT_TCP_MSS) -> None:
        super().__init__()
        self.mss = mss
        self.transport: TcpTransport | None = None
        self._buffers: dict[int, _HostAggReducerBuffer] = {}

    def _prepare(self) -> None:
        self.transport = TcpTransport(self.cluster.simulator, mss=self.mss)
        for reducer_id, host in enumerate(self.placement.reducer_hosts):
            buffer = _HostAggReducerBuffer()
            self._buffers[reducer_id] = buffer
            self.transport.listen(host, SHUFFLE_PORT, self._make_listener(buffer))

    @staticmethod
    def _make_listener(buffer: _HostAggReducerBuffer):
        def on_message(src: str, payload: MessagePayload) -> None:
            if payload.kind != "combined_output":
                return
            buffer.runs.append(list(payload.data))
            buffer.payload_bytes += payload.meta.get("serialized_bytes", 0)

        return on_message

    def transfer(self, map_outputs: list[MapOutput]) -> None:
        if self.transport is None:
            raise JobError("HostAggregationShuffle.transfer() called before prepare()")
        function = self.spec.aggregation_function()
        pair_bytes = self.spec.daiet.pair_bytes
        for reducer_id, reducer_host in enumerate(self.placement.reducer_hosts):
            for mapper_host, pairs in self.pairs_by_host(map_outputs, reducer_id).items():
                if not pairs:
                    continue
                # Worker-level combiner: aggregate the local map output first.
                combined = sorted(aggregate_pairs(pairs, function).items())
                serialized_bytes = len(combined) * pair_bytes
                if mapper_host == reducer_host:
                    self.reduce_task(reducer_id).add_sorted_run(combined, from_network=False)
                    self.accounting.local_pairs += len(combined)
                    continue
                self.accounting.network_pairs += len(combined)
                payload = MessagePayload(
                    kind="combined_output",
                    data=combined,
                    meta={"serialized_bytes": serialized_bytes},
                )
                segments = self.transport.send_message(
                    src=mapper_host,
                    dst=reducer_host,
                    message_bytes=serialized_bytes,
                    payload=payload,
                    dport=SHUFFLE_PORT,
                )
                self.accounting.packets_sent += segments
                self.accounting.payload_bytes_sent += serialized_bytes

    def finalize(self) -> None:
        for reducer_id, buffer in self._buffers.items():
            task = self.reduce_task(reducer_id)
            for run in buffer.runs:
                task.add_sorted_run(run, from_network=True)
            task.metrics.payload_bytes_received += buffer.payload_bytes
