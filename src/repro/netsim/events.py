"""Discrete-event engine used by the network simulator.

A minimal but complete event scheduler: events carry a timestamp, a strictly
increasing sequence number (to make ordering deterministic for simultaneous
events) and a callback. The simulator drains the queue in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the callback and payload do not take part
    in comparisons so that identical timestamps never raise ``TypeError``.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it comes due."""
        self.cancelled = True


class EventScheduler:
    """A deterministic priority-queue event scheduler."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.events_executed = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(time=self.now + delay, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} (current time {self.now})"
            )
        event = Event(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or ``None`` when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next pending event; returns ``False`` when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            self.events_executed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and until > self.now:
            self.now = until
        return executed

    def reset(self) -> None:
        """Discard all pending events and rewind the clock."""
        self._queue.clear()
        self.now = 0.0
        self.events_executed = 0


class Timer:
    """A restartable one-shot timer bound to an :class:`EventScheduler`.

    The reliability layer uses these as retransmission and delayed-ACK
    timers: ``start`` (re)arms the timer, ``cancel`` disarms it, and the
    callback runs at most once per arming. Restarting an armed timer cancels
    the previous deadline, so only the latest one fires.
    """

    def __init__(self, scheduler: EventScheduler, callback: Callable[[], None]) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._event: Event | None = None

    @property
    def active(self) -> bool:
        """True while an armed deadline is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.cancel()
        self._event = self._scheduler.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer; a cancelled deadline never fires."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
