"""Discrete-event engine used by the network simulator.

A minimal but complete event scheduler built for throughput: the heap holds
plain ``(time, seq, callback, args)`` tuples (tuple comparison short-circuits
on the ``(time, seq)`` prefix, so callbacks never take part in ordering and
identical timestamps never raise ``TypeError``), and cancellation is tracked
in a side set of sequence numbers instead of per-event flag objects.

Cancelled entries are removed lazily: they are skipped when they surface at
the top of the heap, and the whole queue is compacted once more than half of
it is cancelled litter (restartable :class:`Timer` objects, as used by the
reliability layer's retransmission timers, re-arm constantly and would
otherwise grow the heap without bound). ``len(scheduler)`` is O(1).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.core.errors import SimulationError

#: Compaction is considered once the cancellation set grows past this size
#: (tiny queues are not worth rebuilding).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """Handle to a scheduled callback, supporting cancellation.

    The handle is deliberately detached from the heap entry: cancelling adds
    the entry's sequence number to the scheduler's cancellation set, and the
    scheduler drops the entry lazily when it surfaces (or during compaction).
    """

    __slots__ = ("time", "seq", "_scheduler", "_cancelled")

    def __init__(self, scheduler: "EventScheduler", time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self._scheduler = scheduler
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it comes due."""
        if not self._cancelled:
            self._cancelled = True
            self._scheduler._cancel(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"


class EventScheduler:
    """A deterministic priority-queue event scheduler."""

    def __init__(self) -> None:
        #: Heap of ``(time, seq, callback, args)`` tuples.
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        #: Sequence numbers of cancelled-but-not-yet-removed heap entries.
        self._cancelled: set[int] = set()
        #: Sequence numbers of handle-carrying (cancellable) entries still in
        #: the heap. Lets ``_cancel`` ignore a late cancel of an event that
        #: already executed instead of poisoning the cancellation set (which
        #: would skew ``__len__``). Hot-path ``push_at`` events never enter
        #: this set, so the per-pop discard below is usually a no-op.
        self._pending_handles: set[int] = set()
        self._seq = 0
        self.now = 0.0
        self.events_executed = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))
        self._pending_handles.add(seq)
        return Event(self, time, seq)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} (current time {self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))
        self._pending_handles.add(seq)
        return Event(self, time, seq)

    def push_at(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        """Hot-path schedule: absolute time, no cancellation handle.

        The simulator's per-packet transmissions never cancel, so skipping the
        handle allocation (and the delay validation already done by the
        caller) is free throughput. ``time`` must not lie in the past.

        ``NetworkSimulator._transmit`` inlines this push; any change to the
        heap entry shape or sequence handling must be mirrored there.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def _cancel(self, seq: int) -> None:
        """Record one cancelled heap entry; compact when litter dominates.

        Cancelling an event that already executed (or was already removed)
        is a harmless no-op, exactly like the old per-event flag.
        """
        pending = self._pending_handles
        if seq not in pending:
            return
        pending.discard(seq)
        cancelled = self._cancelled
        cancelled.add(seq)
        if len(cancelled) >= _COMPACT_MIN_CANCELLED and 2 * len(cancelled) > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (amortized O(n)).

        The queue list and cancellation set are mutated *in place* so that
        local aliases held by a running ``run()`` loop stay valid.
        """
        cancelled = self._cancelled
        queue = self._queue
        queue[:] = [entry for entry in queue if entry[1] not in cancelled]
        heapq.heapify(queue)
        cancelled.clear()

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events; O(1)."""
        return len(self._queue) - len(self._cancelled)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or ``None`` when idle."""
        queue = self._queue
        cancelled = self._cancelled
        while queue and queue[0][1] in cancelled:
            cancelled.discard(queue[0][1])
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Execute the next pending event; returns ``False`` when idle."""
        queue = self._queue
        cancelled = self._cancelled
        pending = self._pending_handles
        pop = heapq.heappop
        while queue:
            time, seq, callback, args = pop(queue)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            if pending:
                pending.discard(seq)
            self.now = time
            callback(*args)
            self.events_executed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        executed = 0
        queue = self._queue
        cancelled = self._cancelled
        pending = self._pending_handles
        pop = heapq.heappop
        bounded = max_events is not None
        timed = until is not None
        try:
            while queue:
                if bounded and executed >= max_events:
                    break
                if timed or cancelled:
                    # Peek before popping: the head may be beyond ``until``
                    # or cancelled litter to be discarded.
                    entry = queue[0]
                    if cancelled and entry[1] in cancelled:
                        cancelled.discard(entry[1])
                        pop(queue)
                        continue
                    if timed and entry[0] > until:
                        break
                    pop(queue)
                    time, seq, callback, args = entry
                else:
                    # Hot path: nothing to filter, pop straight away.
                    time, seq, callback, args = pop(queue)
                if pending:
                    # Executing a handle-carrying event: a later cancel()
                    # of its handle must be a no-op, not heap litter.
                    pending.discard(seq)
                self.now = time
                callback(*args)
                executed += 1
                # Local aliases stay valid across callbacks: compaction
                # mutates the queue and cancellation set in place, never
                # rebinds them.
        finally:
            # The counter is batched per run() rather than per event; the
            # finally block keeps it accurate if a callback raises.
            self.events_executed += executed
        if timed and until > self.now:
            self.now = until
        return executed

    def reset(self) -> None:
        """Discard all pending events and rewind the clock."""
        self._queue.clear()
        self._cancelled.clear()
        self._pending_handles.clear()
        self.now = 0.0
        self.events_executed = 0


class Timer:
    """A restartable one-shot timer bound to an :class:`EventScheduler`.

    The reliability layer uses these as retransmission and delayed-ACK
    timers: ``start`` (re)arms the timer, ``cancel`` disarms it, and the
    callback runs at most once per arming. Restarting an armed timer cancels
    the previous deadline, so only the latest one fires. Cancelled deadlines
    are cleaned out of the scheduler's heap by its lazy compaction, so
    constant re-arming does not grow the queue without bound.
    """

    def __init__(self, scheduler: EventScheduler, callback: Callable[[], None]) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._event: Event | None = None

    @property
    def active(self) -> bool:
        """True while an armed deadline is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.cancel()
        self._event = self._scheduler.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer; a cancelled deadline never fires."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
