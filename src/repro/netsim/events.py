"""Discrete-event engine used by the network simulator.

A minimal but complete event scheduler built for throughput. Two backends
share one contract:

* a binary heap of plain ``(time, seq, callback, args)`` tuples (tuple
  comparison short-circuits on the ``(time, seq)`` prefix, so callbacks never
  take part in ordering and identical timestamps never raise ``TypeError``);
* a **calendar queue** (:class:`CalendarQueue`) — an array of time-bucketed
  mini-heaps with amortized O(1) push/pop — which the scheduler migrates to
  automatically once the pending-event count crosses
  :data:`CALENDAR_THRESHOLD`. Million-event runs pay bucket-local costs
  instead of O(log n) sifts over one huge heap.

Both backends dispatch events in identical ``(time, seq)`` order, so a run
is bit-for-bit reproducible regardless of which backend (or migration point)
it used; ``tests/netsim/test_calendar_queue.py`` holds the property tests.

Cancellation is tracked in a side set of sequence numbers instead of
per-event flag objects. Cancelled entries are removed lazily: they are
skipped when they surface at the top of the queue, and the whole queue is
compacted once more than half of it is cancelled litter (restartable
:class:`Timer` objects, as used by the reliability layer's retransmission
timers, re-arm constantly and would otherwise grow the queue without bound).
``len(scheduler)`` is O(1).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.checks.registry import fastpath
from repro.core.errors import SimulationError

#: Compaction is considered once the cancellation set grows past this size
#: (tiny queues are not worth rebuilding).
_COMPACT_MIN_CANCELLED = 64

#: Pending-entry count at which the scheduler migrates its heap into a
#: calendar queue. Below this, the C-implemented ``heapq`` wins on constant
#: factors; above it, bucket-local operations beat O(log n) sifts (measured
#: crossover on CPython 3.11: ~parity at 50k pending, 1.3x at 100k, 2.4x at
#: 1M). The threshold is a constructor knob so tests can force either
#: backend.
CALENDAR_THRESHOLD = 65_536

#: Upper bound on the number of calendar buckets (memory guard: buckets are
#: Python lists; a million-event run gets ~8 entries per bucket-heap, whose
#: sift cost is still effectively constant).
_MAX_BUCKETS = 1 << 17


@fastpath("calendar-queue", oracle="tests/netsim/test_calendar_queue.py")
class CalendarQueue:
    """A calendar queue over ``(time, seq, callback, args)`` entries.

    Entries live in ``nbuckets`` lists managed as small heaps; an entry with
    timestamp ``t`` belongs to *day* ``int(t * inv_width)`` and to bucket
    ``day & (nbuckets - 1)``. Popping scans forward one day at a time from
    the day of the last popped entry, so with a well-chosen ``width`` each
    pop touches O(1) buckets; a full empty cycle falls back to a direct
    minimum scan over the bucket heads (sparse far-future timers).

    Ordering is exactly the heap's ``(time, seq)`` order: the day index is
    monotone in ``time`` (push and pop compute it with the *same* float
    expression, so there is no boundary disagreement), and within a day all
    entries share one bucket, where the mini-heap orders them by tuple
    comparison.

    The queue auto-resizes: the bucket count doubles when occupancy exceeds
    four entries per bucket (re-estimating the bucket width from the live
    entries) and halves when the calendar becomes mostly empty.
    """

    __slots__ = (
        "buckets",
        "mask",
        "width",
        "inv_width",
        "count",
        "cur_bucket",
        "cur_day",
        "floor_time",
    )

    def __init__(self, entries: list[tuple], floor_time: float) -> None:
        self.count = 0
        self.floor_time = floor_time
        self._rebuild(entries)

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    def _rebuild(self, entries: list[tuple]) -> None:
        """(Re)distribute ``entries`` over a freshly sized bucket array."""
        count = len(entries)
        nbuckets = 1 << max(8, count.bit_length())
        if nbuckets > _MAX_BUCKETS:
            nbuckets = _MAX_BUCKETS
        if entries:
            lo = min(entry[0] for entry in entries)
            hi = max(entry[0] for entry in entries)
            span = hi - lo
        else:
            span = 0.0
        if span > 0.0 and count > 1:
            # Aim for ~2 entries per day; same-time bursts all share one
            # bucket regardless, where the mini-heap degrades gracefully to
            # plain heap behaviour.
            width = span / count * 2.0
        else:
            width = 1.0
        self.width = width
        self.inv_width = 1.0 / width
        self.mask = nbuckets - 1
        buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        self.buckets = buckets
        inv = self.inv_width
        mask = self.mask
        for entry in entries:
            bucket = buckets[int(entry[0] * inv) & mask]
            heappush(bucket, entry)
        self.count = count
        day = int(self.floor_time * inv)
        self.cur_day = day
        self.cur_bucket = day & mask

    def _maybe_resize(self) -> None:
        nbuckets = self.mask + 1
        count = self.count
        if count > 4 * nbuckets and nbuckets < _MAX_BUCKETS:
            self._rebuild([entry for bucket in self.buckets for entry in bucket])
        elif count < nbuckets >> 3 and nbuckets > 256:
            self._rebuild([entry for bucket in self.buckets for entry in bucket])

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def push(self, entry: tuple) -> None:
        """Insert one ``(time, seq, callback, args)`` entry."""
        heappush(self.buckets[int(entry[0] * self.inv_width) & self.mask], entry)
        self.count += 1
        if self.count > 4 * (self.mask + 1):
            self._maybe_resize()

    def pop(self, until: float | None, cancelled: set[int]) -> tuple | None:
        """Remove and return the earliest pending entry.

        Entries whose sequence number is in ``cancelled`` are discarded (and
        removed from the set). Returns ``None`` when the queue is empty or
        the earliest entry lies beyond ``until``; in that case the scan
        position is *not* advanced, so entries pushed later (always at or
        after the scheduler's current time) can never be scheduled behind
        the scan position.
        """
        if self.count == 0:
            return None
        buckets = self.buckets
        mask = self.mask
        inv = self.inv_width
        cur = self.cur_bucket
        day = self.cur_day
        scanned = 0
        nbuckets = mask + 1
        while True:
            bucket = buckets[cur]
            while bucket and int(bucket[0][0] * inv) == day:
                if until is not None and bucket[0][0] > until:
                    return None
                entry = heappop(bucket)
                self.count -= 1
                seq = entry[1]
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self.cur_bucket = cur
                self.cur_day = day
                self.floor_time = entry[0]
                if self.count < (mask + 1) >> 3 and mask + 1 > 256:
                    self._maybe_resize()
                return entry
            if self.count == 0:
                return None
            cur = (cur + 1) & mask
            day += 1
            scanned += 1
            if scanned > nbuckets:
                # Sparse calendar: jump straight to the earliest entry.
                best = None
                best_index = -1
                for index, candidate in enumerate(buckets):
                    if candidate and (best is None or candidate[0] < best):
                        best = candidate[0]
                        best_index = index
                if best is None:
                    return None
                day = int(best[0] * inv)
                cur = best_index
                scanned = 0

    def peek(self, cancelled: set[int]) -> float | None:
        """Timestamp of the earliest pending entry, or ``None`` when empty.

        Cancelled litter is discarded as it surfaces. The scan position is
        *not* advanced (only an executed pop may advance it): peeking does
        not move the scheduler's clock, so a later push may still land
        earlier than the peeked entry.
        """
        if self.count == 0:
            return None
        buckets = self.buckets
        mask = self.mask
        inv = self.inv_width
        cur = self.cur_bucket
        day = self.cur_day
        scanned = 0
        nbuckets = mask + 1
        while True:
            bucket = buckets[cur]
            while bucket and int(bucket[0][0] * inv) == day:
                if bucket[0][1] in cancelled:
                    cancelled.discard(bucket[0][1])
                    heappop(bucket)
                    self.count -= 1
                    continue
                return bucket[0][0]
            if self.count == 0:
                return None
            cur = (cur + 1) & mask
            day += 1
            scanned += 1
            if scanned > nbuckets:
                best = None
                for candidate in buckets:
                    while candidate and candidate[0][1] in cancelled:
                        cancelled.discard(candidate[0][1])
                        heappop(candidate)
                        self.count -= 1
                    if candidate and (best is None or candidate[0] < best):
                        best = candidate[0]
                return best[0] if best is not None else None

    def compact(self, cancelled: set[int]) -> None:
        """Drop every cancelled entry and rebuild the buckets in place."""
        live = [
            entry
            for bucket in self.buckets
            for entry in bucket
            if entry[1] not in cancelled
        ]
        cancelled.clear()
        self._rebuild(live)

    def __len__(self) -> int:
        return self.count


class Event:
    """Handle to a scheduled callback, supporting cancellation.

    The handle is deliberately detached from the queue entry: cancelling adds
    the entry's sequence number to the scheduler's cancellation set, and the
    scheduler drops the entry lazily when it surfaces (or during compaction).
    """

    __slots__ = ("time", "seq", "_scheduler", "_cancelled")

    def __init__(self, scheduler: "EventScheduler", time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self._scheduler = scheduler
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it comes due."""
        if not self._cancelled:
            self._cancelled = True
            self._scheduler._cancel(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"


class EventScheduler:
    """A deterministic priority-queue event scheduler.

    Starts on the binary-heap backend; once the pending-entry count reaches
    ``calendar_threshold`` the whole queue migrates into a
    :class:`CalendarQueue` (and stays there until :meth:`reset`). Event
    dispatch order is identical on both backends.
    """

    def __init__(self, calendar_threshold: int | None = None) -> None:
        #: Heap of ``(time, seq, callback, args)`` tuples (heap backend).
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        #: Calendar backend, or ``None`` while the heap is active.
        self._cal: CalendarQueue | None = None
        self._threshold = (
            CALENDAR_THRESHOLD if calendar_threshold is None else calendar_threshold
        )
        #: Sequence numbers of cancelled-but-not-yet-removed entries.
        self._cancelled: set[int] = set()
        #: Sequence numbers of handle-carrying (cancellable) entries still in
        #: the queue. Lets ``_cancel`` ignore a late cancel of an event that
        #: already executed instead of poisoning the cancellation set (which
        #: would skew ``__len__``). Hot-path ``push_at`` events never enter
        #: this set, so the per-pop discard below is usually a no-op.
        self._pending_handles: set[int] = set()
        #: callback -> batch handler. When ``run()`` pops an entry whose
        #: callback has a registered handler, it delegates the entry — and
        #: implicitly any same-callback entries at the queue head — to the
        #: handler, which returns how many entries it consumed (>= 1). The
        #: simulator registers its switch-delivery sinks here so a burst of
        #: deliveries to one switch becomes one vectorized kernel call. The
        #: dict is mutated in place (cleared/refilled on topology rebuilds)
        #: so the alias held by a running ``run()`` loop stays current.
        self._batch_handlers: dict[Callable[..., None], Any] = {}
        self._seq = 0
        self.now = 0.0
        self.events_executed = 0

    # ------------------------------------------------------------------ #
    # Backend selection
    # ------------------------------------------------------------------ #
    @property
    def calendar_active(self) -> bool:
        """True once the scheduler migrated to the calendar-queue backend."""
        return self._cal is not None

    def _activate_calendar(self) -> None:
        """Migrate every pending heap entry into a fresh calendar queue."""
        cancelled = self._cancelled
        if cancelled:
            entries = [entry for entry in self._queue if entry[1] not in cancelled]
            cancelled.clear()
        else:
            entries = list(self._queue)
        # Mutated in place so local aliases held by a running ``run()`` loop
        # observe the drain and hand control to the calendar loop.
        self._queue.clear()
        self._cal = CalendarQueue(entries, self.now)

    def _push(self, entry: tuple) -> None:
        """Route one entry to the active backend (cold-path helper)."""
        cal = self._cal
        if cal is not None:
            cal.push(entry)
        else:
            heappush(self._queue, entry)
            if len(self._queue) >= self._threshold:
                self._activate_calendar()

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._push((time, seq, callback, args))
        self._pending_handles.add(seq)
        return Event(self, time, seq)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} (current time {self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        self._push((time, seq, callback, args))
        self._pending_handles.add(seq)
        return Event(self, time, seq)

    def push_at(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        """Hot-path schedule: absolute time, no cancellation handle.

        The simulator's per-packet transmissions never cancel, so skipping the
        handle allocation (and the delay validation already done by the
        caller) is free throughput. ``time`` must not lie in the past.

        ``NetworkSimulator._transmit`` inlines this push — including the
        calendar branch and threshold migration; any change to the entry
        shape, sequence handling or backend selection must be mirrored
        there.
        """
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is not None:
            cal.push((time, seq, callback, args))
        else:
            queue = self._queue
            heappush(queue, (time, seq, callback, args))
            if len(queue) >= self._threshold:
                self._activate_calendar()

    def _cancel(self, seq: int) -> None:
        """Record one cancelled entry; compact when litter dominates.

        Cancelling an event that already executed (or was already removed)
        is a harmless no-op, exactly like the old per-event flag.
        """
        pending = self._pending_handles
        if seq not in pending:
            return
        pending.discard(seq)
        cancelled = self._cancelled
        cancelled.add(seq)
        if len(cancelled) >= _COMPACT_MIN_CANCELLED:
            cal = self._cal
            if cal is not None:
                if 2 * len(cancelled) > cal.count:
                    cal.compact(cancelled)
            elif 2 * len(cancelled) > len(self._queue):
                self._compact()

    def _compact(self) -> None:
        """Drop every cancelled heap entry and re-heapify (amortized O(n)).

        The queue list and cancellation set are mutated *in place* so that
        local aliases held by a running ``run()`` loop stay valid.
        """
        cancelled = self._cancelled
        queue = self._queue
        queue[:] = [entry for entry in queue if entry[1] not in cancelled]
        heapify(queue)
        cancelled.clear()

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events; O(1)."""
        cal = self._cal
        backlog = cal.count if cal is not None else len(self._queue)
        return backlog - len(self._cancelled)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or ``None`` when idle."""
        cal = self._cal
        if cal is not None:
            return cal.peek(self._cancelled)
        queue = self._queue
        cancelled = self._cancelled
        while queue and queue[0][1] in cancelled:
            cancelled.discard(queue[0][1])
            heappop(queue)
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Execute the next pending event; returns ``False`` when idle."""
        cal = self._cal
        pending = self._pending_handles
        if cal is not None:
            entry = cal.pop(None, self._cancelled)
            if entry is None:
                return False
            time, seq, callback, args = entry
            if pending:
                pending.discard(seq)
            self.now = time
            callback(*args)
            self.events_executed += 1
            return True
        queue = self._queue
        cancelled = self._cancelled
        pop = heappop
        while queue:
            time, seq, callback, args = pop(queue)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            if pending:
                pending.discard(seq)
            self.now = time
            callback(*args)
            self.events_executed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        executed = 0
        pending = self._pending_handles
        batch = self._batch_handlers
        bounded = max_events is not None
        timed = until is not None
        try:
            while True:
                if self._cal is None:
                    queue = self._queue
                    cancelled = self._cancelled
                    pop = heappop
                    while queue:
                        if bounded and executed >= max_events:
                            break
                        if timed or cancelled:
                            # Peek before popping: the head may be beyond
                            # ``until`` or cancelled litter to be discarded.
                            entry = queue[0]
                            if cancelled and entry[1] in cancelled:
                                cancelled.discard(entry[1])
                                pop(queue)
                                continue
                            if timed and entry[0] > until:
                                break
                            pop(queue)
                            time, seq, callback, args = entry
                        else:
                            # Hot path: nothing to filter, pop straight away.
                            time, seq, callback, args = pop(queue)
                        if pending:
                            # Executing a handle-carrying event: a later
                            # cancel() of its handle must be a no-op, not
                            # queue litter.
                            pending.discard(seq)
                        if batch and (handler := batch.get(callback)) is not None:
                            self.now = time
                            executed += handler(
                                time,
                                args,
                                until,
                                max_events - executed if bounded else None,
                            )
                            continue
                        self.now = time
                        callback(*args)
                        executed += 1
                        # Local aliases stay valid across callbacks:
                        # compaction mutates the queue and cancellation set
                        # in place; migration drains the queue in place and
                        # lets this loop exit into the calendar loop below.
                    if self._cal is None:
                        break
                    # A callback's push crossed the calendar threshold:
                    # continue on the calendar backend.
                    continue
                cal = self._cal
                cancelled = self._cancelled
                cal_until = until if timed else None
                while True:
                    if bounded and executed >= max_events:
                        break
                    entry = cal.pop(cal_until, cancelled)
                    if entry is None:
                        break
                    time, seq, callback, args = entry
                    if pending:
                        pending.discard(seq)
                    if batch and (handler := batch.get(callback)) is not None:
                        self.now = time
                        executed += handler(
                            time,
                            args,
                            until,
                            max_events - executed if bounded else None,
                        )
                        continue
                    self.now = time
                    callback(*args)
                    executed += 1
                break
        finally:
            # The counter is batched per run() rather than per event; the
            # finally block keeps it accurate if a callback raises.
            self.events_executed += executed
        if timed and until > self.now:
            self.now = until
        return executed

    def reset(self) -> None:
        """Discard all pending events and rewind the clock."""
        self._queue.clear()
        self._cal = None
        self._cancelled.clear()
        self._pending_handles.clear()
        self._batch_handlers.clear()
        self.now = 0.0
        self.events_executed = 0


class Timer:
    """A restartable one-shot timer bound to an :class:`EventScheduler`.

    The reliability layer uses these as retransmission and delayed-ACK
    timers: ``start`` (re)arms the timer, ``cancel`` disarms it, and the
    callback runs at most once per arming. Restarting an armed timer cancels
    the previous deadline, so only the latest one fires. Cancelled deadlines
    are cleaned out of the scheduler's queue by its lazy compaction, so
    constant re-arming does not grow the queue without bound.
    """

    def __init__(self, scheduler: EventScheduler, callback: Callable[[], None]) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._event: Event | None = None

    @property
    def active(self) -> bool:
        """True while an armed deadline is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.cancel()
        self._event = self._scheduler.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer; a cancelled deadline never fires."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
