"""Data-center topologies.

A :class:`Topology` holds named devices and the links between them, plus a
`networkx` view used for route and aggregation-tree computation. Builders are
provided for the three shapes used in the paper's context:

* :func:`single_rack` — hosts behind one ToR switch (the paper's evaluation
  setup: one bmv2 switch, worker containers attached to it),
* :func:`leaf_spine` — a two-tier Clos fabric,
* :func:`fat_tree` — a k-ary fat-tree (edge/aggregation/core), used by the
  multi-level aggregation-tree ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import TopologyError
from repro.netsim.devices import Device, Host, SwitchDevice
from repro.netsim.links import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_S, Endpoint, Link


@dataclass
class Topology:
    """A collection of devices and the links connecting them."""

    name: str = "topology"
    devices: dict[str, Device] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    _ports_in_use: dict[str, int] = field(default_factory=dict, repr=False)
    _adjacency: dict[str, dict[str, Link]] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        host = Host(name)
        self._register(host)
        return host

    def add_switch(self, name: str, num_ports: int = 64) -> SwitchDevice:
        """Create and register a programmable switch."""
        switch = SwitchDevice(name, num_ports=num_ports)
        self._register(switch)
        return switch

    def add_device(self, device: Device) -> Device:
        """Register an externally constructed device."""
        self._register(device)
        return device

    def _register(self, device: Device) -> None:
        if device.name in self.devices:
            raise TopologyError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        self._ports_in_use[device.name] = 0
        self._adjacency[device.name] = {}

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_s: float = DEFAULT_PROPAGATION_S,
        loss_rate: float = 0.0,
    ) -> Link:
        """Connect two registered devices with a new link, auto-assigning ports."""
        for name in (a, b):
            if name not in self.devices:
                raise TopologyError(f"unknown device {name!r}")
        if b in self._adjacency[a]:
            raise TopologyError(f"devices {a!r} and {b!r} are already connected")
        port_a = self._next_port(a)
        port_b = self._next_port(b)
        link = Link(
            a=Endpoint(device=a, port=port_a),
            b=Endpoint(device=b, port=port_b),
            bandwidth_bps=bandwidth_bps,
            propagation_s=propagation_s,
            loss_rate=loss_rate,
        )
        self.links.append(link)
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        return link

    def _next_port(self, device_name: str) -> int:
        port = self._ports_in_use[device_name]
        self._ports_in_use[device_name] = port + 1
        device = self.devices[device_name]
        if isinstance(device, SwitchDevice) and port >= device.switch.num_ports:
            raise TopologyError(
                f"switch {device_name!r} has no free port (has {device.switch.num_ports})"
            )
        if isinstance(device, Host) and port >= 1:
            raise TopologyError(f"host {device_name!r} already has its single NIC connected")
        return port

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Device:
        """Return a device by name."""
        if name not in self.devices:
            raise TopologyError(f"unknown device {name!r}")
        return self.devices[name]

    def hosts(self) -> list[Host]:
        """All hosts, in insertion order."""
        return [d for d in self.devices.values() if isinstance(d, Host)]

    def switches(self) -> list[SwitchDevice]:
        """All switches, in insertion order."""
        return [d for d in self.devices.values() if isinstance(d, SwitchDevice)]

    def link_between(self, a: str, b: str) -> Link:
        """The link directly connecting ``a`` and ``b``."""
        link = self._adjacency.get(a, {}).get(b)
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def neighbors(self, name: str) -> list[str]:
        """Names of the devices directly connected to ``name``."""
        if name not in self._adjacency:
            raise TopologyError(f"unknown device {name!r}")
        return list(self._adjacency[name])

    def port_towards(self, from_device: str, to_device: str) -> int:
        """The port ``from_device`` uses to reach its neighbour ``to_device``."""
        return self.link_between(from_device, to_device).port_of(from_device)

    def graph(self) -> nx.Graph:
        """A networkx view of the topology (nodes carry a ``kind`` attribute)."""
        g = nx.Graph()
        for name, device in self.devices.items():
            kind = "host" if isinstance(device, Host) else "switch"
            g.add_node(name, kind=kind)
        for link in self.links:
            g.add_edge(link.a.device, link.b.device, link=link)
        return g

    def validate(self) -> None:
        """Check that the topology is connected and every host has an uplink."""
        if not self.devices:
            raise TopologyError("topology has no devices")
        g = self.graph()
        if len(self.devices) > 1 and not nx.is_connected(g):
            raise TopologyError("topology is not connected")
        for host in self.hosts():
            if self._ports_in_use[host.name] == 0:
                raise TopologyError(f"host {host.name!r} is not connected to any switch")


# ---------------------------------------------------------------------- #
# Builders
# ---------------------------------------------------------------------- #
def single_rack(
    num_hosts: int,
    switch_name: str = "tor",
    host_prefix: str = "h",
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> Topology:
    """Hosts attached to a single top-of-rack switch (the paper's testbed shape)."""
    if num_hosts <= 0:
        raise TopologyError("single_rack needs at least one host")
    topo = Topology(name="single_rack")
    topo.add_switch(switch_name, num_ports=max(64, num_hosts + 4))
    for i in range(num_hosts):
        host = topo.add_host(f"{host_prefix}{i}")
        topo.connect(host.name, switch_name, bandwidth_bps=bandwidth_bps)
    topo.validate()
    return topo


def leaf_spine(
    num_leaves: int,
    num_spines: int,
    hosts_per_leaf: int,
    host_prefix: str = "h",
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
) -> Topology:
    """A two-tier leaf-spine fabric with hosts under each leaf."""
    if num_leaves <= 0 or num_spines <= 0 or hosts_per_leaf <= 0:
        raise TopologyError("leaf_spine dimensions must all be positive")
    topo = Topology(name="leaf_spine")
    spines = [topo.add_switch(f"spine{s}", num_ports=max(64, num_leaves + 4)) for s in range(num_spines)]
    host_index = 0
    for leaf_id in range(num_leaves):
        leaf = topo.add_switch(
            f"leaf{leaf_id}", num_ports=max(64, hosts_per_leaf + num_spines + 4)
        )
        for spine in spines:
            topo.connect(leaf.name, spine.name, bandwidth_bps=bandwidth_bps)
        for _ in range(hosts_per_leaf):
            host = topo.add_host(f"{host_prefix}{host_index}")
            host_index += 1
            topo.connect(host.name, leaf.name, bandwidth_bps=bandwidth_bps)
    topo.validate()
    return topo


def fat_tree(k: int, bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> Topology:
    """A k-ary fat-tree with (k/2)^2 core switches and k pods.

    Each pod has k/2 edge and k/2 aggregation switches; each edge switch hosts
    k/2 servers, for k^3/4 hosts in total.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError("fat_tree requires an even k >= 2")
    half = k // 2
    topo = Topology(name=f"fat_tree_k{k}")
    cores = [
        topo.add_switch(f"core{i}", num_ports=max(64, k + 2)) for i in range(half * half)
    ]
    host_index = 0
    for pod in range(k):
        aggs = [
            topo.add_switch(f"pod{pod}_agg{a}", num_ports=max(64, k + 2)) for a in range(half)
        ]
        edges = [
            topo.add_switch(f"pod{pod}_edge{e}", num_ports=max(64, k + 2)) for e in range(half)
        ]
        for a, agg in enumerate(aggs):
            for c in range(half):
                core = cores[a * half + c]
                topo.connect(agg.name, core.name, bandwidth_bps=bandwidth_bps)
            for edge in edges:
                topo.connect(agg.name, edge.name, bandwidth_bps=bandwidth_bps)
        for edge in edges:
            for _ in range(half):
                host = topo.add_host(f"h{host_index}")
                host_index += 1
                topo.connect(host.name, edge.name, bandwidth_bps=bandwidth_bps)
    topo.validate()
    return topo
