"""Network devices: hosts and switches.

Devices are passive objects driven by the :class:`~repro.netsim.simulator.
NetworkSimulator`: the simulator delivers a packet to a device's
:meth:`handle_packet` and transmits whatever the device returns. Hosts deliver
packets to a registered application receiver; switch devices wrap a
:class:`~repro.dataplane.switch.ProgrammableSwitch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import TopologyError
from repro.dataplane.actions import ForwardAction, PacketContext
from repro.dataplane.switch import ProgrammableSwitch
from repro.dataplane.tables import MatchActionTable

#: Signature of an application-level packet receiver installed on a host.
PacketReceiver = Callable[[Any], None]

#: Name of the destination-based forwarding table installed on every switch.
FORWARDING_TABLE = "l3_forward"

#: Name of the DAIET steering table installed on every switch (matched on tree id).
DAIET_TABLE = "daiet_steer"


@dataclass
class HostCounters:
    """Traffic counters observed at a host NIC."""

    packets_received: int = 0
    bytes_received: int = 0
    packets_sent: int = 0
    bytes_sent: int = 0


class Device:
    """Base class of every addressable node in the topology."""

    def __init__(self, name: str) -> None:
        self.name = name

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        """Consume a packet arriving on ``ingress_port``.

        Returns a list of ``(egress_port, packet)`` transmissions the device
        wants to make in response.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class Host(Device):
    """An end host with a single NIC port and an application receiver."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.counters = HostCounters()
        self._receiver: PacketReceiver | None = None
        self.received_packets: list[Any] = []
        #: When True, every received packet is also appended to
        #: ``received_packets`` (useful in tests; disabled for large runs).
        self.record_packets = False

    def set_receiver(self, receiver: PacketReceiver) -> None:
        """Install the application callback invoked for every delivered packet."""
        self._receiver = receiver

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        self.counters.packets_received += 1
        self.counters.bytes_received += packet_wire_bytes(packet)
        if self.record_packets:
            self.received_packets.append(packet)
        if self._receiver is not None:
            self._receiver(packet)
        return []

    def note_sent(self, packet: Any) -> None:
        """Account a packet handed to the simulator for transmission."""
        self.counters.packets_sent += 1
        self.counters.bytes_sent += packet_wire_bytes(packet)


class SwitchDevice(Device):
    """Topology wrapper around a :class:`ProgrammableSwitch`.

    The wrapper owns the standard two-table pipeline used throughout the
    reproduction:

    * ``daiet_steer`` — exact match on ``tree_id``; the DAIET controller
      installs rules here that hand matching packets to the per-switch
      aggregation extern.
    * ``l3_forward`` — exact match on ``dst``; the routing module installs one
      entry per reachable host.
    """

    def __init__(self, name: str, num_ports: int = 64, switch: ProgrammableSwitch | None = None) -> None:
        super().__init__(name)
        self.switch = switch or ProgrammableSwitch(name=name, num_ports=num_ports)
        self._build_standard_pipeline()

    def _build_standard_pipeline(self) -> None:
        pipeline = self.switch.pipeline
        metadata_stage = pipeline.add_stage("extract_metadata")
        metadata_stage.add_extern(_extract_packet_metadata)

        daiet_stage = pipeline.add_stage("daiet")
        daiet_table = MatchActionTable(DAIET_TABLE, match_fields=("tree_id",), match_kind="exact")
        daiet_stage.add_table(daiet_table)

        forward_stage = pipeline.add_stage("forward")
        forward_table = MatchActionTable(FORWARDING_TABLE, match_fields=("dst",), match_kind="exact")
        forward_table.register_action("forward", ForwardAction)
        forward_stage.add_table(forward_table)

    @property
    def daiet_table(self) -> MatchActionTable:
        """The DAIET steering table."""
        return self.switch.pipeline.tables()[DAIET_TABLE]

    @property
    def forwarding_table(self) -> MatchActionTable:
        """The destination-based forwarding table."""
        return self.switch.pipeline.tables()[FORWARDING_TABLE]

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        return self.switch.receive(packet, ingress_port)


def packet_wire_bytes(packet: Any) -> int:
    """Serialized size of a packet object, as carried on the wire."""
    size_fn = getattr(packet, "wire_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    length = getattr(packet, "length", None)
    if isinstance(length, int):
        return length
    raise TopologyError(
        f"packet of type {type(packet).__name__} does not expose wire_bytes()/length"
    )


def _extract_packet_metadata(ctx: PacketContext) -> None:
    """Copy addressing fields from the packet into pipeline metadata.

    This plays the role of the P4 parser writing extracted header fields into
    the metadata struct consumed by the match-action tables.
    """
    packet = ctx.packet
    ctx.metadata["dst"] = getattr(packet, "dst", None)
    ctx.metadata["src"] = getattr(packet, "src", None)
    ctx.metadata["tree_id"] = getattr(packet, "tree_id", None)
    ctx.metadata["packet_type"] = getattr(packet, "packet_type", None)
