"""Network devices: hosts and switches.

Devices are passive objects driven by the :class:`~repro.netsim.simulator.
NetworkSimulator`: the simulator delivers a packet to a device's
:meth:`handle_packet` and transmits whatever the device returns. Hosts deliver
packets to a registered application receiver; switch devices wrap a
:class:`~repro.dataplane.switch.ProgrammableSwitch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.checks.registry import fastpath
from repro.core.errors import PipelineError, TopologyError
from repro.core.packet import DaietAck, DaietPacket, DaietPacketType
from repro.dataplane.actions import ForwardAction, NoAction, PacketContext
from repro.dataplane.switch import ProgrammableSwitch, _packet_bytes as _switch_packet_bytes
from repro.dataplane.tables import MatchActionTable

#: Signature of an application-level packet receiver installed on a host.
PacketReceiver = Callable[[Any], None]

#: Name of the destination-based forwarding table installed on every switch.
FORWARDING_TABLE = "l3_forward"

#: Name of the DAIET steering table installed on every switch (matched on tree id).
DAIET_TABLE = "daiet_steer"

#: Hoisted enum member for the fast-path DATA/END dispatch.
_DAIET_DATA = DaietPacketType.DATA

#: Steering-cache sentinel: the tree id has *no* entry in ``daiet_steer``, so
#: the packet is plain traffic for the compiled forwarding path (distinct
#: from ``None``, which means "entry present but not the standard aggregate
#: action" and forces the generic pipeline).
_NO_STEERING_ENTRY = object()

#: Forwarding-cache sentinel: this destination cannot take the compiled
#: forwarding path (non-standard action, broadcast port, unhashable key...).
_GENERIC_FORWARD = object()

#: Transport packet classes eligible for the compiled forwarding path.
#: Resolved lazily (see :func:`_forwarding_packet_types`) because importing
#: :mod:`repro.transport` at module scope would close an import cycle while
#: :mod:`repro.netsim` is still initializing.
_FORWARD_TYPES: tuple[type, ...] = ()


def _forwarding_packet_types() -> tuple[type, ...]:
    """The (lazily imported) transport packet types the fast path forwards."""
    global _FORWARD_TYPES
    if not _FORWARD_TYPES:
        from repro.transport.packets import TcpSegment, UdpDatagram

        _FORWARD_TYPES = (UdpDatagram, TcpSegment)
    return _FORWARD_TYPES


@dataclass(slots=True)
class HostCounters:
    """Traffic counters observed at a host NIC."""

    packets_received: int = 0
    bytes_received: int = 0
    packets_sent: int = 0
    bytes_sent: int = 0


class Device:
    """Base class of every addressable node in the topology."""

    def __init__(self, name: str) -> None:
        self.name = name

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        """Consume a packet arriving on ``ingress_port``.

        Returns a list of ``(egress_port, packet)`` transmissions the device
        wants to make in response.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class Host(Device):
    """An end host with a single NIC port and an application receiver."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.counters = HostCounters()
        self._receiver: PacketReceiver | None = None
        self.received_packets: list[Any] = []
        #: When True, every received packet is also appended to
        #: ``received_packets`` (useful in tests; disabled for large runs).
        self.record_packets = False

    def set_receiver(self, receiver: PacketReceiver) -> None:
        """Install the application callback invoked for every delivered packet."""
        self._receiver = receiver

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        self.deliver(packet, packet_wire_bytes(packet))
        return []

    def deliver(self, packet: Any, nbytes: int) -> None:
        """Deliver one packet whose wire size was already computed.

        The simulator's fast path: the packet's serialized size is computed
        once on injection and threaded through every hop, so delivery does
        not re-derive it.
        """
        counters = self.counters
        counters.packets_received += 1
        counters.bytes_received += nbytes
        if self.record_packets:
            self.received_packets.append(packet)
        if self._receiver is not None:
            self._receiver(packet)

    def note_sent(self, packet: Any, nbytes: int | None = None) -> None:
        """Account a packet handed to the simulator for transmission."""
        self.counters.packets_sent += 1
        self.counters.bytes_sent += (
            nbytes if nbytes is not None else packet_wire_bytes(packet)
        )


class SwitchDevice(Device):
    """Topology wrapper around a :class:`ProgrammableSwitch`.

    The wrapper owns the standard two-table pipeline used throughout the
    reproduction:

    * ``daiet_steer`` — exact match on ``tree_id``; the DAIET controller
      installs rules here that hand matching packets to the per-switch
      aggregation extern.
    * ``l3_forward`` — exact match on ``dst``; the routing module installs one
      entry per reachable host.

    Because this shape is fixed, :meth:`deliver` runs a *compiled* fast path
    for DAIET traffic: when the pipeline is verifiably still in its standard
    form, it performs exactly the counter updates, parse charges and
    emissions the generic pipeline would, without building the per-packet
    context/metadata machinery. Any deviation (extra stages or steps, a
    non-standard steering action, an oversized op charge) falls back to the
    generic :meth:`ProgrammableSwitch.receive`.
    """

    def __init__(self, name: str, num_ports: int = 64, switch: ProgrammableSwitch | None = None) -> None:
        super().__init__(name)
        self.switch = switch or ProgrammableSwitch(name=name, num_ports=num_ports)
        #: tree_id -> (table version, engine | _NO_STEERING_ENTRY | None);
        #: revalidated against the steering table's mutation counter, so rule
        #: changes invalidate the memo naturally.
        self._fast_cache: dict[int, tuple[int, Any]] = {}
        #: dst -> (daiet version, forward version, egress | None |
        #: _GENERIC_FORWARD): the compiled forwarding closure data for
        #: baseline/ACK traffic. ``None`` caches a forwarding miss (drop).
        #: Both table versions take part in validation because the fast path
        #: replicates *both* tables' hit/miss accounting.
        self._fwd_cache: dict[Any, tuple[int, int, Any]] = {}
        self._udp_type, self._tcp_type = _forwarding_packet_types()
        self._build_standard_pipeline()

    def _build_standard_pipeline(self) -> None:
        pipeline = self.switch.pipeline
        metadata_stage = pipeline.add_stage("extract_metadata")
        metadata_stage.add_extern(_extract_packet_metadata)

        daiet_stage = pipeline.add_stage("daiet")
        daiet_table = MatchActionTable(DAIET_TABLE, match_fields=("tree_id",), match_kind="exact")
        daiet_stage.add_table(daiet_table)

        forward_stage = pipeline.add_stage("forward")
        forward_table = MatchActionTable(FORWARDING_TABLE, match_fields=("dst",), match_kind="exact")
        forward_table.register_action("forward", ForwardAction)
        forward_stage.add_table(forward_table)

        self._daiet_tbl = daiet_table
        self._fwd_tbl = forward_table
        # Bound hot references (none of these objects is ever replaced on a
        # ProgrammableSwitch instance).
        self._sw_counters = self.switch.counters
        self._sw_parser = self.switch.parser
        self._sw_pipeline = self.switch.pipeline
        self._max_ops = self.switch.resources.max_ops_per_packet
        self._max_parse = self.switch.resources.max_parse_bytes

    @property
    def daiet_table(self) -> MatchActionTable:
        """The DAIET steering table."""
        return self.switch.pipeline.tables()[DAIET_TABLE]

    @property
    def forwarding_table(self) -> MatchActionTable:
        """The destination-based forwarding table."""
        return self.switch.pipeline.tables()[FORWARDING_TABLE]

    def handle_packet(self, packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
        return self.switch.receive(packet, ingress_port)

    # ------------------------------------------------------------------ #
    # Compiled fast path
    # ------------------------------------------------------------------ #
    @staticmethod
    def _steering_engine(entry: Any) -> Any:
        """The aggregation engine a steering entry dispatches to, or ``None``.

        ``None`` means the entry is not the standard aggregate action and the
        packet must go through the generic pipeline.
        """
        from repro.core.aggregation import DaietAggregationEngine
        from repro.dataplane.actions import CallableAction

        action = entry.action
        if type(action) is CallableAction and action.cost == 1:
            func = action.func
            if getattr(func, "__func__", None) is DaietAggregationEngine.pipeline_action:
                return func.__self__
        return None

    def _pipeline_is_standard(self) -> bool:
        """Per-packet shape guard: the pipeline is still the standard three
        single-step stages (metadata extract -> daiet_steer -> l3_forward).

        Verified by identity on every packet because stage step lists can be
        mutated in place without bumping any counter.
        """
        stages = self._sw_pipeline._stages
        if len(stages) != 3:
            return False
        s0, s1, s2 = stages
        return (
            len(s0.steps) == 1
            and s0.steps[0] is _extract_packet_metadata
            and len(s1.steps) == 1
            and s1.steps[0] is self._daiet_tbl
            and len(s2.steps) == 1
            and s2.steps[0] is self._fwd_tbl
        )

    def _batch_tree_state(self, packet: Any) -> tuple[Any, Any] | None:
        """Resolve ``(engine, state)`` for the vectorized batch delivery path.

        Mirrors :meth:`deliver`'s shape guard and memoized steering
        resolution (sharing ``_fast_cache``), then additionally requires the
        tree state to exist and be vectorizable (``TreeState._vec``). Any
        miss returns ``None`` and the caller delivers per packet, which
        reproduces the generic behaviour exactly.
        """
        stages = self._sw_pipeline._stages
        if len(stages) != 3:
            return None
        s0, s1, s2 = stages
        if not (
            len(s0.steps) == 1
            and s0.steps[0] is _extract_packet_metadata
            and len(s1.steps) == 1
            and s1.steps[0] is self._daiet_tbl
            and len(s2.steps) == 1
            and s2.steps[0] is self._fwd_tbl
        ):
            return None
        tree_id = packet.tree_id
        table = self._daiet_tbl
        cached = self._fast_cache.get(tree_id)
        if cached is not None and cached[0] == table.version:
            engine = cached[1]
        else:
            if table._unindexed:
                engine = None
            else:
                entry = table._exact_index.get((("tree_id", tree_id),))
                if entry is None:
                    engine = _NO_STEERING_ENTRY
                else:
                    engine = self._steering_engine(entry)
            self._fast_cache[tree_id] = (table.version, engine)
        if engine is None or engine is _NO_STEERING_ENTRY:
            return None
        state = engine._trees.get(tree_id)
        if state is None or not state._vec:
            return None
        return engine, state

    @fastpath("switch-delivery", oracle="tests/netsim/test_devices_stats.py")
    def deliver(self, packet: Any, ingress_port: int, nbytes: int) -> list[tuple[int, Any]]:
        """Process one packet whose wire size is already known.

        DAIET packets and ACKs matching an installed steering rule take the
        compiled aggregation fast path; DAIET traffic *without* a steering
        entry (the UDP baseline) and plain transport packets (TCP segments,
        UDP datagrams — baseline shuffles and host-level ACK/retransmit
        traffic) take the compiled forwarding path. Everything else (and
        every non-standard pipeline configuration) is handled by the generic
        pipeline. All paths produce identical emissions and identical
        counter/parse-budget effects.
        """
        switch = self.switch
        packet_type = type(packet)
        if packet_type is DaietPacket or packet_type is DaietAck:
            # Shape guard (_pipeline_is_standard, inlined on the hottest
            # branch): verify the pipeline is still the standard three
            # single-step stages before trusting the fast path.
            stages = self._sw_pipeline._stages
            if len(stages) != 3:
                return switch.receive(packet, ingress_port, nbytes)
            s0, s1, s2 = stages
            if not (
                len(s0.steps) == 1
                and s0.steps[0] is _extract_packet_metadata
                and len(s1.steps) == 1
                and s1.steps[0] is self._daiet_tbl
                and len(s2.steps) == 1
                and s2.steps[0] is self._fwd_tbl
            ):
                return switch.receive(packet, ingress_port, nbytes)
            tree_id = packet.tree_id
            table = self._daiet_tbl
            # Steering resolution, memoized against the table's mutation
            # version: one dict probe + one int compare on the hot path.
            cached = self._fast_cache.get(tree_id)
            if cached is not None and cached[0] == table.version:
                engine = cached[1]
            else:
                if table._unindexed:
                    engine = None  # unhashable steering entries: generic path
                else:
                    entry = table._exact_index.get((("tree_id", tree_id),))
                    if entry is None:
                        engine = _NO_STEERING_ENTRY
                    else:
                        engine = self._steering_engine(entry)
                self._fast_cache[tree_id] = (table.version, engine)
            if engine is _NO_STEERING_ENTRY:
                # No aggregation rule for this tree (baseline traffic, or
                # ACKs crossing a switch outside their tree): forward by dst.
                return self._fast_forward(packet, ingress_port, nbytes)
            if engine is not None:
                # Total op charge the generic path would make: extract
                # extern (1) + table (1) + action cost (1) + the extern's
                # own per-pair charge.
                if packet_type is DaietPacket:
                    npairs = len(packet.pairs)
                    charge = 3 + (npairs if npairs > 1 else 1)
                else:
                    charge = 4
                if charge <= self._max_ops:
                    if not 0 <= ingress_port < switch.num_ports:
                        raise PipelineError(
                            f"ingress port {ingress_port} out of range for "
                            f"switch {switch.name!r}"
                        )
                    counters = self._sw_counters
                    counters.packets_in += 1
                    counters.bytes_in += nbytes
                    # parser.charge, inlined for the in-budget case.
                    parsed = packet.parse_depth_bytes()
                    if parsed <= self._max_parse:
                        parser = self._sw_parser
                        parser.packets_parsed += 1
                        parser.bytes_parsed += parsed
                    else:
                        self._sw_parser.charge(packet)  # raises the exact error
                    self._sw_pipeline.packets_processed += 1
                    table.hit_count += 1
                    # DaietAggregationEngine.handle_packet, inlined.
                    state = engine._trees.get(tree_id)
                    if state is None:
                        out = (
                            engine.handle_packet(packet)
                            if packet_type is DaietPacket
                            else engine.handle_ack(packet)
                        )
                    elif packet_type is DaietPacket:
                        state.counters.packets_received += 1
                        if packet.packet_type is _DAIET_DATA:
                            out = engine._process_data(state, packet)
                        else:
                            out = engine._process_end(state, packet)
                    else:
                        out = engine.handle_ack(packet)
                    if out:
                        n_out = len(out)
                        counters.packets_generated += n_out
                        counters.packets_out += n_out
                        for _port, out_packet in out:
                            counters.bytes_out += _switch_packet_bytes(
                                out_packet, counters
                            )
                    return out
        elif packet_type is self._udp_type or packet_type is self._tcp_type:
            if self._pipeline_is_standard():
                return self._fast_forward(packet, ingress_port, nbytes)
        return switch.receive(packet, ingress_port, nbytes)

    # ------------------------------------------------------------------ #
    # Compiled forwarding path
    # ------------------------------------------------------------------ #
    def _resolve_forward(self, dst: Any) -> Any:
        """Resolve one destination against ``l3_forward`` for the fast path.

        Returns the egress port, ``None`` for a cacheable miss (drop), or
        :data:`_GENERIC_FORWARD` when the destination must take the generic
        pipeline (unhashable key, unindexed entries, a non-standard action,
        a broadcast port, or a non-trivial default action on either table —
        the generic pipeline runs the default action on every miss, and the
        fast path only replicates the standard free ``NoAction``).
        """
        table = self._fwd_tbl
        if (
            table._unindexed
            or type(table.default_action) is not NoAction
            or type(self._daiet_tbl.default_action) is not NoAction
        ):
            return _GENERIC_FORWARD
        try:
            entry = table._exact_index.get((("dst", dst),))
        except TypeError:  # unhashable destination
            return _GENERIC_FORWARD
        if entry is None:
            return None
        action = entry.action
        if type(action) is ForwardAction and action.cost == 1 and action.egress_port >= 0:
            return action.egress_port
        return _GENERIC_FORWARD

    @fastpath("forwarding-cache", oracle="tests/netsim/test_forwarding_fastpath.py")
    def _fast_forward(self, packet: Any, ingress_port: int, nbytes: int) -> list[tuple[int, Any]]:
        """Compiled L3 forwarding for packets that miss the steering table.

        Replicates exactly the observable effects of the generic pipeline on
        plain forwarded traffic — switch counters, parser charges,
        ``packets_processed``, the steering table's miss count, the
        forwarding table's hit/miss count, and the drop accounting on a
        forwarding miss — without building the per-packet context. Falls
        back to the generic pipeline whenever the memoized resolution says
        the destination is not plainly forwardable.
        """
        switch = self.switch
        dst = getattr(packet, "dst", None)
        try:
            cached = self._fwd_cache.get(dst)
        except TypeError:  # unhashable destination: generic pipeline
            return switch.receive(packet, ingress_port, nbytes)
        daiet_version = self._daiet_tbl.version
        fwd_version = self._fwd_tbl.version
        if (
            cached is not None
            and cached[0] == daiet_version
            and cached[1] == fwd_version
        ):
            egress = cached[2]
        else:
            egress = self._resolve_forward(dst)
            self._fwd_cache[dst] = (daiet_version, fwd_version, egress)
        if egress is _GENERIC_FORWARD:
            return switch.receive(packet, ingress_port, nbytes)
        # Charge the generic path would make: extract extern (1) +
        # daiet_steer miss (1) + l3_forward (1) + ForwardAction (1 on a hit,
        # nothing on a miss — the default action is a free NoAction).
        charge = 3 if egress is None else 4
        if charge > self._max_ops:
            return switch.receive(packet, ingress_port, nbytes)
        if not 0 <= ingress_port < switch.num_ports:
            raise PipelineError(
                f"ingress port {ingress_port} out of range for switch {switch.name!r}"
            )
        counters = self._sw_counters
        counters.packets_in += 1
        counters.bytes_in += nbytes
        parsed = packet.parse_depth_bytes()
        if parsed <= self._max_parse:
            parser = self._sw_parser
            parser.packets_parsed += 1
            parser.bytes_parsed += parsed
        else:
            self._sw_parser.charge(packet)  # raises the exact error
        self._sw_pipeline.packets_processed += 1
        self._daiet_tbl.miss_count += 1
        fwd = self._fwd_tbl
        if egress is None:
            fwd.miss_count += 1
            counters.packets_dropped += 1
            return []
        fwd.hit_count += 1
        counters.packets_out += 1
        counters.bytes_out += nbytes
        return [(egress, packet)]


def packet_wire_bytes(packet: Any) -> int:
    """Serialized size of a packet object, as carried on the wire."""
    size_fn = getattr(packet, "wire_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    length = getattr(packet, "length", None)
    if isinstance(length, int):
        return length
    raise TopologyError(
        f"packet of type {type(packet).__name__} does not expose wire_bytes()/length"
    )


def _extract_packet_metadata(ctx: PacketContext) -> None:
    """Copy addressing fields from the packet into pipeline metadata.

    This plays the role of the P4 parser writing extracted header fields into
    the metadata struct consumed by the match-action tables. DAIET packets —
    the dominant traffic — take a direct-attribute path; anything else goes
    through the generic ``getattr`` probes.
    """
    packet = ctx.packet
    metadata = ctx.metadata
    if type(packet) is DaietPacket:
        metadata["dst"] = packet.dst
        metadata["src"] = packet.src
        metadata["tree_id"] = packet.tree_id
        metadata["packet_type"] = packet.packet_type
        return
    metadata["dst"] = getattr(packet, "dst", None)
    metadata["src"] = getattr(packet, "src", None)
    metadata["tree_id"] = getattr(packet, "tree_id", None)
    metadata["packet_type"] = getattr(packet, "packet_type", None)
