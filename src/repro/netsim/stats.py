"""Traffic statistics collected during a simulation run.

The evaluation in the paper reads three kinds of numbers from its testbed:
bytes and packets received by each reducer (host), packets traversing the
switch, and totals per baseline. :class:`TrafficStats` accumulates the same
observations during a simulated run so the benchmark harness can compute the
reduction ratios of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PerDeviceTraffic:
    """Packets/bytes observed at one device."""

    packets: int = 0
    bytes: int = 0

    def record(self, nbytes: int) -> None:
        """Add one packet of ``nbytes`` bytes."""
        self.packets += 1
        self.bytes += nbytes


@dataclass
class TrafficStats:
    """Counters keyed by device and link name.

    The ``record_*`` methods run once per packet per hop; they avoid the
    ``setdefault(..., PerDeviceTraffic())`` idiom, which allocates a fresh
    counter object on every call even when the key already exists.
    """

    host_sent: dict[str, PerDeviceTraffic] = field(default_factory=dict)
    host_received: dict[str, PerDeviceTraffic] = field(default_factory=dict)
    switch_traffic: dict[str, PerDeviceTraffic] = field(default_factory=dict)
    link_traffic: dict[str, PerDeviceTraffic] = field(default_factory=dict)
    drops: dict[str, int] = field(default_factory=dict)
    losses: dict[str, int] = field(default_factory=dict)
    #: Packets destroyed by an injected fault (crashed device, downed link),
    #: keyed by the device or link that sank them. Kept separate from
    #: ``drops``/``losses`` so fault-churn runs can report (and the sanitizer
    #: can balance) fault damage distinctly from ordinary loss.
    fault_drops: dict[str, int] = field(default_factory=dict)
    #: Packets ECN-marked (CE bit set in flight) per link, counted on the
    #: False->True transition only — a retransmission of an already-marked
    #: packet is not re-counted. Only populated when the simulator runs with
    #: an ``ecn_threshold_bytes`` configured.
    ecn_marked: dict[str, int] = field(default_factory=dict)
    #: Packets tail-dropped at a full switch egress queue, per link. Only
    #: populated when the simulator runs with ``switch_buffer_bytes`` set;
    #: kept separate from random ``losses`` so incast reports can tell
    #: congestion drops from lossy-link drops.
    queue_drops: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_host_sent(self, host: str, nbytes: int) -> None:
        """Account a packet injected by a host."""
        traffic = self.host_sent.get(host)
        if traffic is None:
            traffic = self.host_sent[host] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes

    def record_host_received(self, host: str, nbytes: int) -> None:
        """Account a packet delivered to a host."""
        traffic = self.host_received.get(host)
        if traffic is None:
            traffic = self.host_received[host] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes

    def record_switch(self, switch: str, nbytes: int) -> None:
        """Account a packet arriving at a switch."""
        traffic = self.switch_traffic.get(switch)
        if traffic is None:
            traffic = self.switch_traffic[switch] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes

    def record_link(self, link_name: str, nbytes: int) -> None:
        """Account a packet transmitted over a link."""
        traffic = self.link_traffic.get(link_name)
        if traffic is None:
            traffic = self.link_traffic[link_name] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes

    def record_drop(self, device: str) -> None:
        """Account a packet transmitted towards an unconnected port."""
        self.drops[device] = self.drops.get(device, 0) + 1

    def record_loss(self, link_name: str) -> None:
        """Account a packet lost in flight on a lossy link."""
        self.losses[link_name] = self.losses.get(link_name, 0) + 1

    def record_fault_drop(self, where: str) -> None:
        """Account a packet destroyed by an injected fault at ``where``."""
        self.fault_drops[where] = self.fault_drops.get(where, 0) + 1

    def record_ecn_mark(self, link_name: str) -> None:
        """Account a packet ECN-marked on a congested link."""
        self.ecn_marked[link_name] = self.ecn_marked.get(link_name, 0) + 1

    def record_queue_drop(self, link_name: str) -> None:
        """Account a packet tail-dropped at a full switch egress queue."""
        self.queue_drops[link_name] = self.queue_drops.get(link_name, 0) + 1

    def total_losses(self) -> int:
        """Packets lost in flight across every link."""
        return sum(self.losses.values())

    def total_fault_drops(self) -> int:
        """Packets destroyed by injected faults across every device and link."""
        return sum(self.fault_drops.values())

    def total_ecn_marked(self) -> int:
        """Packets ECN-marked across every link."""
        return sum(self.ecn_marked.values())

    def total_queue_drops(self) -> int:
        """Packets tail-dropped at full switch egress queues across every link."""
        return sum(self.queue_drops.values())

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def received_bytes(self, host: str) -> int:
        """Bytes delivered to ``host``."""
        return self.host_received.get(host, PerDeviceTraffic()).bytes

    def received_packets(self, host: str) -> int:
        """Packets delivered to ``host``."""
        return self.host_received.get(host, PerDeviceTraffic()).packets

    def sent_bytes(self, host: str) -> int:
        """Bytes injected by ``host``."""
        return self.host_sent.get(host, PerDeviceTraffic()).bytes

    def sent_packets(self, host: str) -> int:
        """Packets injected by ``host``."""
        return self.host_sent.get(host, PerDeviceTraffic()).packets

    def total_received_bytes(self, hosts: list[str] | None = None) -> int:
        """Bytes delivered to the given hosts (or all hosts)."""
        names = hosts if hosts is not None else list(self.host_received)
        return sum(self.received_bytes(h) for h in names)

    def total_received_packets(self, hosts: list[str] | None = None) -> int:
        """Packets delivered to the given hosts (or all hosts)."""
        names = hosts if hosts is not None else list(self.host_received)
        return sum(self.received_packets(h) for h in names)

    def total_link_bytes(self) -> int:
        """Bytes carried over every link (each hop counted once)."""
        return sum(t.bytes for t in self.link_traffic.values())

    def total_link_packets(self) -> int:
        """Packets carried over every link (each hop counted once)."""
        return sum(t.packets for t in self.link_traffic.values())

    def per_host_received(self) -> dict[str, PerDeviceTraffic]:
        """Copy of the per-host delivery counters."""
        return dict(self.host_received)

    def snapshot(self) -> dict[str, dict[str, tuple[int, int] | int]]:
        """Every counter as plain nested dictionaries.

        Used by the determinism tests to compare two runs bit-for-bit: two
        identical simulations must produce identical snapshots (including
        insertion order, which reflects event order).
        """
        def _traffic(table: dict[str, PerDeviceTraffic]) -> dict[str, tuple[int, int]]:
            return {name: (t.packets, t.bytes) for name, t in table.items()}

        return {
            "host_sent": _traffic(self.host_sent),
            "host_received": _traffic(self.host_received),
            "switch_traffic": _traffic(self.switch_traffic),
            "link_traffic": _traffic(self.link_traffic),
            "drops": dict(self.drops),
            "losses": dict(self.losses),
            "fault_drops": dict(self.fault_drops),
            "ecn_marked": dict(self.ecn_marked),
            "queue_drops": dict(self.queue_drops),
        }

    def reset(self) -> None:
        """Clear every counter."""
        self.host_sent.clear()
        self.host_received.clear()
        self.switch_traffic.clear()
        self.link_traffic.clear()
        self.drops.clear()
        self.losses.clear()
        self.fault_drops.clear()
        self.ecn_marked.clear()
        self.queue_drops.clear()
