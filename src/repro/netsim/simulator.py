"""The network simulator tying topology, devices, links and events together.

The simulator owns the event scheduler and the per-device port maps. Sending a
packet from a host schedules its arrival at the attached switch after the
link's store-and-forward delay; every switch output is likewise scheduled on
the corresponding link until the packet reaches a host, whose application
receiver is then invoked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Iterable

from repro.checks.registry import fastpath
from repro.core.errors import SimulationError, TopologyError
from repro.core.packet import DaietPacket, DaietPacketType
from repro.netsim.devices import (
    Device,
    Host,
    SwitchDevice,
    _switch_packet_bytes,
    packet_wire_bytes,
)
from repro.netsim.events import Event, EventScheduler, Timer
from repro.netsim.links import DirectionCounters, Link
from repro.netsim.routing import RoutingState, compute_routes, install_forwarding_rules
from repro.netsim.stats import PerDeviceTraffic, TrafficStats
from repro.netsim.topology import Topology

try:  # The burst delivery fast path needs numpy; the simulator does not.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

_DAIET_DATA = DaietPacketType.DATA


class _BurstPlan:
    """Send-time precomputation for one burst's delivery fast path.

    Built by :meth:`NetworkSimulator.send_burst` (outside any timed hot
    region) so that the burst delivery handler can batch a whole window of
    DAIET DATA packets without touching the packet objects: per-item
    eligibility, the concatenated interned-key/value arrays, per-packet pair
    extents and exact cumulative mass/byte ledgers are all ready-made. The
    wire-dependent fields (arrival ``times``, the ``seq0`` base, delivery
    ``target``/``ingress``) are filled in by ``_transmit_burst`` when the
    burst hits its uplink.
    """

    __slots__ = (
        "packets",
        "nbytes",
        "shape_ok",
        "tree_id",
        "max_nbytes",
        "max_cost",
        "kids",
        "vals",
        "pair_start",
        "npairs",
        "mass_cum",
        "nbytes_cum",
        "times",
        "seq0",
        "target",
        "ingress",
    )


def _plan_burst(items: list[tuple[Any, int]]) -> _BurstPlan | None:
    """Precompute a :class:`_BurstPlan` for ``items``, or ``None``.

    An item is *shape-eligible* when it is an unsequenced DAIET DATA packet
    of the burst's (single) tree with a usable ``vector_pairs`` cache — the
    same shape predicate the per-entry batch handler applies, minus the
    switch-specific budget checks, which the burst handler applies once per
    burst via the precomputed ``max_nbytes``/``max_cost``. Items of a
    different tree are simply marked ineligible (they replay through the
    per-packet sink), so a mixed burst still fast-paths its majority tree.
    """
    n = len(items)
    if _np is None or n < 2:
        return None
    shape_ok = _np.zeros(n, dtype=_np.bool_)
    kid_list: list[int] = []
    val_list: list[int] = []
    pair_start = _np.zeros(n, dtype=_np.int64)
    npairs = _np.zeros(n, dtype=_np.int64)
    mass_cum = [0] * (n + 1)
    nbytes_cum = [0] * (n + 1)
    tree_id = -1
    max_nbytes = 0
    max_npairs = 1
    any_ok = False
    for i, (packet, nbytes) in enumerate(items):
        nbytes_cum[i + 1] = nbytes_cum[i] + nbytes
        mass = 0
        if (
            type(packet) is DaietPacket
            and packet.seq is None
            and packet.packet_type is _DAIET_DATA
            and (cache := packet.vector_pairs()) is not None
        ):
            if tree_id < 0:
                tree_id = packet.tree_id
            if packet.tree_id == tree_id:
                shape_ok[i] = True
                any_ok = True
                pair_start[i] = len(kid_list)
                kid_list.extend(cache[0])
                val_list.extend(cache[1])
                count = len(cache[0])
                npairs[i] = count
                mass = cache[2]
                if nbytes > max_nbytes:
                    max_nbytes = nbytes
                if count > max_npairs:
                    max_npairs = count
        mass_cum[i + 1] = mass_cum[i] + mass
    if not any_ok:
        return None
    plan = _BurstPlan()
    plan.packets = [packet for packet, _nbytes in items]
    plan.nbytes = [nbytes for _packet, nbytes in items]
    plan.shape_ok = shape_ok
    plan.tree_id = tree_id
    plan.max_nbytes = max_nbytes
    plan.max_cost = 3 + max_npairs
    plan.kids = _np.array(kid_list, dtype=_np.int64)
    plan.vals = _np.array(val_list, dtype=_np.int64)
    plan.pair_start = pair_start
    plan.npairs = npairs
    plan.mass_cum = mass_cum
    plan.nbytes_cum = nbytes_cum
    plan.times = None
    plan.seq0 = -1
    plan.target = None
    plan.ingress = -1
    return plan


@dataclass
class SimulatorConfig:
    """Tunables of a simulation run."""

    #: Safety valve: maximum number of events a single ``run`` may execute.
    max_events: int = 50_000_000
    #: Automatically compute routes and install forwarding rules on start.
    auto_install_routes: bool = True
    #: Seed of the random stream deciding per-link packet drops (only used on
    #: links whose ``loss_rate`` is non-zero).
    loss_seed: int = 0
    #: Run with the runtime invariant sanitizer installed (conservation
    #: ledger, scheduler and register-leak checks). ``None`` defers to the
    #: ``REPRO_SANITIZE`` environment variable; the sanitizer costs nothing
    #: when disabled (no wrapper is installed, no flag is checked per event).
    sanitize: bool | None = None
    #: ECN marking threshold: when a switch egress queue (the serialized-but-
    #: not-yet-sent backlog of one link direction) exceeds this many bytes,
    #: ECN-capable packets passing through it have their CE bit set (DCTCP-
    #: style instantaneous marking). ``None`` disables marking entirely —
    #: the congestion branch is a single boolean check per transmission.
    ecn_threshold_bytes: int | None = None
    #: Finite switch egress buffering: a packet arriving at a switch egress
    #: whose queued backlog already exceeds this many bytes is tail-dropped
    #: (counted in ``TrafficStats.queue_drops``). ``None`` models infinite
    #: buffers — the historical, byte-identical behaviour.
    switch_buffer_bytes: int | None = None


class NetworkSimulator:
    """Discrete-event simulator over a :class:`Topology`."""

    def __init__(self, topology: Topology, config: SimulatorConfig | None = None) -> None:
        topology.validate()
        self.topology = topology
        self.config = config or SimulatorConfig()
        self.scheduler = EventScheduler()
        self.stats = TrafficStats()
        self.routes: RoutingState | None = None
        self._port_links: dict[str, dict[int, Link]] = {}
        #: Hot-path lookup: device -> port -> (link, link name, delivery
        #: callback, delivery target, neighbour port, per-direction byte
        #: counters, busy key, burst delivery callback or ``None``).
        #: Everything static about a hop — including which specialized
        #: delivery routine the far end needs — is resolved once here
        #: instead of on every transmission.
        self._port_info: dict[
            str,
            dict[
                int,
                tuple[Link, str, Any, Any, int, DirectionCounters, tuple[str, str], Any],
            ],
        ] = {}
        #: Direct reference to the topology's device table (hot-path lookup).
        self._devices = topology.devices
        #: Bound references to the hot stats tables. ``TrafficStats.reset``
        #: clears these dicts in place, so the bindings stay valid.
        self._link_stats = self.stats.link_traffic
        self._host_recv_stats = self.stats.host_received
        self._switch_stats = self.stats.switch_traffic
        #: Per-direction link occupancy: (link name, sender) -> time the link
        #: becomes free. Transmissions on the same direction are serialized so
        #: packets cannot overtake each other (FIFO links).
        self._link_busy_until: dict[tuple[str, str], float] = {}
        self._loss_rng = random.Random(self.config.loss_seed)
        #: Congestion modelling (ECN marking, finite egress buffers) only
        #: applies to switch egress queues; host uplinks are the sender's own
        #: NIC, which backpressures rather than drops. The combined flag
        #: keeps the default hot path at one boolean check per transmission.
        self._ecn_threshold = self.config.ecn_threshold_bytes
        self._switch_buffer = self.config.switch_buffer_bytes
        self._congestion_enabled = (
            self._ecn_threshold is not None or self._switch_buffer is not None
        )
        self._switch_names = frozenset(
            name
            for name, device in topology.devices.items()
            if isinstance(device, SwitchDevice)
        )
        #: Extra logical events carried by burst transmissions: a burst of N
        #: packets is ONE scheduler event whose callback performs N
        #: injections, and the N-1 "saved" events are accounted here so
        #: ``run()`` keeps returning the same event count a per-packet
        #: schedule would have produced (reports and benches stay
        #: comparable across PRs).
        self._synthetic_events = 0
        #: Installed :class:`~repro.checks.sanitize.SimulatorSanitizer`, or
        #: ``None`` on an ordinary (unsanitized) simulator.
        self.sanitizer = None
        #: Installed :class:`~repro.netsim.faults.FaultInjector`, or ``None``
        #: on a fault-free simulator. Set by ``FaultInjector.install``.
        self.fault_injector = None
        self._build_port_maps()
        if self.config.auto_install_routes:
            self.install_routes()
        sanitize = self.config.sanitize
        if sanitize is None:
            from repro.checks.sanitize import sanitize_enabled_in_env

            sanitize = sanitize_enabled_in_env()
        if sanitize:
            from repro.checks.sanitize import install_sanitizer

            install_sanitizer(self)

    def _build_port_maps(self) -> None:
        for name in self.topology.devices:
            self._port_links[name] = {}
            self._port_info[name] = {}
        # The vectorized fast machinery (batch delivery handlers, the inlined
        # burst transmit) bypasses ``self._transmit`` and per-packet sink
        # dispatch, so it must stand down whenever any observer is watching
        # individual transmissions: the sanitizer, the fault injector and the
        # error tracker all install an instance-level ``_transmit`` wrapper
        # (and rebuild these maps), which this gate detects.
        batch_ok = (
            "_transmit" not in self.__dict__
            and self.sanitizer is None
            and self.fault_injector is None
        )
        self._fast_burst = batch_ok
        batch_handlers = self.scheduler._batch_handlers
        batch_handlers.clear()
        # One compiled sink per receiving device (not per link end): the
        # batch delivery path collects consecutive queue entries by callback
        # identity, so all links into one switch must share its sink (and
        # its burst sink).
        sinks: dict[str, Any] = {}
        burst_sinks: dict[str, Any] = {}
        for link in self.topology.links:
            for end, other in ((link.a, link.b), (link.b, link.a)):
                self._port_links[end.device][end.port] = link
                # The delivery callback is compiled per receiver at build
                # time — a closure binding the receiver's stats slot and
                # delivery routine — so per-packet delivery needs no device
                # lookup, type dispatch or simulator attribute traffic.
                # Subclassed devices use the generic path.
                device = self.topology.devices[other.device]
                device_type = type(device)
                if device_type is Host:
                    callback = sinks.get(other.device)
                    if callback is None:
                        callback = sinks[other.device] = self._compile_host_sink(device)
                    target: Any = device
                elif device_type is SwitchDevice:
                    callback = sinks.get(other.device)
                    if callback is None:
                        callback = sinks[other.device] = self._compile_switch_sink(
                            device
                        )
                        if batch_ok:
                            batch_handlers[callback] = self._compile_switch_batch(
                                device, callback
                            )
                            bsink = self._compile_burst_sink(device, callback)
                            burst_sinks[other.device] = bsink
                            batch_handlers[bsink] = self._compile_switch_burst(
                                device, callback, bsink
                            )
                    target = device
                else:
                    callback = self._deliver
                    target = other.device
                self._port_info[end.device][end.port] = (
                    link,
                    link.name,
                    callback,
                    target,
                    other.port,
                    link.counters(end.device),
                    (link.name, end.device),
                    burst_sinks.get(other.device),
                )

    def _compile_host_sink(self, host: Host) -> Any:
        """A delivery closure for one host: stats recording + app delivery.

        The per-packet ``self`` attribute loads are resolved at build time.
        The stats *dict* is bound (not the per-host counter object), so
        ``TrafficStats.reset`` keeps working — counters are re-created on
        the next packet.
        """
        host_received = self._host_recv_stats
        name = host.name
        deliver = host.deliver

        def sink(_target: Any, _ingress_port: int, packet: Any, nbytes: int) -> None:
            traffic = host_received.get(name)
            if traffic is None:
                traffic = host_received[name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            deliver(packet, nbytes)

        return sink

    def _compile_switch_sink(self, device: SwitchDevice) -> Any:
        """A delivery closure for one switch: stats + deliver + re-transmit."""
        switch_traffic = self._switch_stats
        name = device.name
        deliver = device.deliver
        transmit = self._transmit

        def sink(_target: Any, ingress_port: int, packet: Any, nbytes: int) -> None:
            traffic = switch_traffic.get(name)
            if traffic is None:
                traffic = switch_traffic[name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            outputs = deliver(packet, ingress_port, nbytes)
            if outputs:
                for egress_port, out_packet in outputs:
                    transmit(
                        name, egress_port, out_packet, packet_wire_bytes(out_packet)
                    )

        return sink

    @fastpath("switch-batch-delivery", oracle="tests/netsim/test_batch_delivery.py")
    def _compile_switch_batch(self, device: SwitchDevice, sink: Any) -> Any:
        """A batch delivery handler for one switch (vectorized hot path).

        Registered in the scheduler's ``_batch_handlers`` under the switch's
        compiled sink. When the scheduler pops a delivery for this switch, the
        handler collects every consecutive queue-head entry that is (a) the
        same sink, (b) an unsequenced DAIET DATA packet for the same ``_vec``
        tree within op/parse budgets, and (c) within the run's ``until``/
        ``max_events`` bounds, then applies the whole burst through
        ``DaietAggregationEngine._process_data_batch`` with *batched* stats
        updates. Spillover-flush emissions are transmitted at their packet's
        delivery time, preserving busy-chain times and loss-draw order
        exactly. Ineligible heads fall through to the per-packet sink.
        """
        scheduler = self.scheduler
        switch_traffic = self._switch_stats
        name = device.name
        transmit = self._transmit
        resolve = device._batch_tree_state
        num_ports = device.switch.num_ports
        max_ops = device._max_ops
        max_parse = device._max_parse
        counters = device._sw_counters
        parser = device._sw_parser
        pipeline = device._sw_pipeline
        daiet_tbl = device._daiet_tbl

        def handler(
            time: float, args: tuple, until: float | None, budget: int | None
        ) -> int:
            packet = args[2]
            if (
                type(packet) is not DaietPacket
                or packet.seq is not None
                or packet.packet_type is not _DAIET_DATA
                or args[3] > max_parse
                or not 0 <= args[1] < num_ports
                or packet.vector_pairs() is None
            ):
                sink(*args)
                return 1
            npairs = len(packet.pairs)
            if 3 + (npairs if npairs > 1 else 1) > max_ops:
                sink(*args)
                return 1
            resolved = resolve(packet)
            if resolved is None:
                sink(*args)
                return 1
            engine, state = resolved
            tree_id = packet.tree_id
            entries: list[tuple[float, tuple]] = [(time, args)]
            limit = budget if budget is not None else 1 << 62
            cal = scheduler._cal
            if cal is None:
                queue = scheduler._queue
                while len(entries) < limit and queue:
                    head = queue[0]
                    if head[2] is not sink:
                        break
                    if until is not None and head[0] > until:
                        break
                    a = head[3]
                    p = a[2]
                    if (
                        type(p) is not DaietPacket
                        or p.tree_id != tree_id
                        or p.seq is not None
                        or p.packet_type is not _DAIET_DATA
                        or a[3] > max_parse
                        or not 0 <= a[1] < num_ports
                        or p.vector_pairs() is None
                    ):
                        break
                    npairs = len(p.pairs)
                    if 3 + (npairs if npairs > 1 else 1) > max_ops:
                        break
                    heappop(queue)
                    entries.append((head[0], a))
            else:
                cancelled = scheduler._cancelled
                while len(entries) < limit:
                    entry = cal.pop(until, cancelled)
                    if entry is None:
                        break
                    a = entry[3]
                    p = a[2]
                    if (
                        entry[2] is not sink
                        or type(p) is not DaietPacket
                        or p.tree_id != tree_id
                        or p.seq is not None
                        or p.packet_type is not _DAIET_DATA
                        or a[3] > max_parse
                        or not 0 <= a[1] < num_ports
                        or p.vector_pairs() is None
                        or 3 + (len(p.pairs) if len(p.pairs) > 1 else 1) > max_ops
                    ):
                        cal.push(entry)
                        break
                    entries.append((entry[0], a))
            n = len(entries)
            if n == 1:
                sink(*args)
                return 1
            result = engine._process_data_batch(state, [a[2] for _t, a in entries])
            if result is None:
                # int64 overflow guard tripped on this burst: replay it
                # through the per-packet path, which is exact for any mass.
                for t, a in entries:
                    scheduler.now = t
                    sink(*a)
                return n
            nbytes_total = 0
            for _t, a in entries:
                nbytes_total += a[3]
            traffic = switch_traffic.get(name)
            if traffic is None:
                traffic = switch_traffic[name] = PerDeviceTraffic()
            traffic.packets += n
            traffic.bytes += nbytes_total
            counters.packets_in += n
            counters.bytes_in += nbytes_total
            # DaietPacket.parse_depth_bytes() equals its wire size, which is
            # what travels in the entry (and max_parse was checked above).
            parser.packets_parsed += n
            parser.bytes_parsed += nbytes_total
            pipeline.packets_processed += n
            daiet_tbl.hit_count += n
            if result:
                for pkt_i, port, out_packet in result:
                    scheduler.now = entries[pkt_i][0]
                    counters.packets_generated += 1
                    counters.packets_out += 1
                    counters.bytes_out += _switch_packet_bytes(out_packet, counters)
                    transmit(name, port, out_packet, packet_wire_bytes(out_packet))
            scheduler.now = entries[-1][0]
            return n

        return handler

    def _compile_burst_sink(self, device: SwitchDevice, sink: Any) -> Any:
        """The standalone callback of a burst delivery entry.

        Normally a burst entry is intercepted by the scheduler's batch
        dispatch (``_compile_switch_burst`` below). This plain callback is
        the safety net for the one way that interception can disappear —
        the handler registry being rebuilt mid-run — and simply replays
        every remaining item through the per-packet sink at its own
        arrival time.
        """
        scheduler = self.scheduler
        sim = self

        def burst_sink(plan: _BurstPlan, offset: int) -> None:
            packets = plan.packets
            nbytes = plan.nbytes
            times = plan.times
            target = plan.target
            ingress = plan.ingress
            last = len(packets)
            for i in range(offset, last):
                scheduler.now = times[i]
                sink(target, ingress, packets[i], nbytes[i])
            sim._synthetic_events += last - offset - 1

        return burst_sink

    @fastpath("switch-burst-delivery", oracle="tests/netsim/test_batch_delivery.py")
    def _compile_switch_burst(self, device: SwitchDevice, sink: Any, burst_sink: Any) -> Any:
        """The burst-entry delivery handler for one switch.

        A burst entry stands for a whole send window: its plan carries the
        send-time precomputed eligibility mask, pair arrays and exact
        cumulative ledgers, and ``_transmit_burst`` filled in per-item
        arrival times plus the reserved sequence-number range. The handler
        collects every consecutive queue-head burst entry bound for this
        switch, merges their items into global ``(time, seq)`` order with
        one lexsort, applies the merged eligible prefix through the
        vectorized register kernel, and re-enqueues each burst's
        un-consumed tail at its own position — so foreign events (END
        markers, ``until`` bounds, event budgets, other trees' traffic)
        interleave exactly as they would against a per-packet schedule.
        """
        scheduler = self.scheduler
        switch_traffic = self._switch_stats
        name = device.name
        transmit = self._transmit
        resolve = device._batch_tree_state
        num_ports = device.switch.num_ports
        max_ops = device._max_ops
        max_parse = device._max_parse
        counters = device._sw_counters
        parser = device._sw_parser
        pipeline = device._sw_pipeline
        daiet_tbl = device._daiet_tbl

        def push_entry(entry: tuple) -> None:
            cal = scheduler._cal
            if cal is not None:
                cal.push(entry)
            else:
                queue = scheduler._queue
                heappush(queue, entry)
                if len(queue) >= scheduler._threshold:
                    scheduler._activate_calendar()

        def fall_back(plan: _BurstPlan, offset: int) -> int:
            # Head item is not kernel-eligible: deliver it through the
            # per-packet sink and re-enqueue the rest of the burst.
            sink(plan.target, plan.ingress, plan.packets[offset], plan.nbytes[offset])
            nxt = offset + 1
            if nxt < len(plan.packets):
                push_entry((plan.times[nxt], plan.seq0 + nxt, burst_sink, (plan, nxt)))
            return 1

        def handler(
            time: float, args: tuple, until: float | None, budget: int | None
        ) -> int:
            plan, offset = args
            if not plan.shape_ok[offset]:
                return fall_back(plan, offset)
            resolved = resolve(plan.packets[offset])
            if (
                resolved is None
                or plan.max_nbytes > max_parse
                or plan.max_cost > max_ops
                or not 0 <= plan.ingress < num_ports
            ):
                return fall_back(plan, offset)
            engine, state = resolved
            tree_id = plan.tree_id
            bursts: list[tuple[_BurstPlan, int]] = [(plan, offset)]
            cutoff = None  # first queue entry NOT collected, or None
            cal = scheduler._cal
            if cal is None:
                queue = scheduler._queue
                while queue:
                    head = queue[0]
                    if head[2] is not burst_sink or (
                        until is not None and head[0] > until
                    ):
                        cutoff = head
                        break
                    p2, o2 = head[3]
                    if (
                        p2.tree_id != tree_id
                        or p2.max_nbytes > max_parse
                        or p2.max_cost > max_ops
                        or not 0 <= p2.ingress < num_ports
                    ):
                        cutoff = head
                        break
                    heappop(queue)
                    bursts.append((p2, o2))
            else:
                cancelled = scheduler._cancelled
                while True:
                    entry = cal.pop(until, cancelled)
                    if entry is None:
                        break
                    if entry[2] is not burst_sink:
                        cal.push(entry)
                        cutoff = entry
                        break
                    p2, o2 = entry[3]
                    if (
                        p2.tree_id != tree_id
                        or p2.max_nbytes > max_parse
                        or p2.max_cost > max_ops
                        or not 0 <= p2.ingress < num_ports
                    ):
                        cal.push(entry)
                        cutoff = entry
                        break
                    bursts.append((p2, o2))
            # Merge the collected bursts' remaining items by (time, seq).
            # Each burst's internal order is already sorted, so the stable
            # lexsort preserves it and every burst's consumed share is a
            # prefix of its remaining items.
            k = len(bursts)
            if k == 1:
                p0, o0 = bursts[0]
                times_m = _np.array(p0.times[o0:], dtype=_np.float64)
                seqs_m = _np.arange(
                    p0.seq0 + o0, p0.seq0 + len(p0.packets), dtype=_np.int64
                )
                ok_m = p0.shape_ok[o0:]
                perm = None
                bid = None
            else:
                times_m = _np.concatenate(
                    [_np.array(p.times[o:], dtype=_np.float64) for p, o in bursts]
                )
                seqs_m = _np.concatenate(
                    [
                        _np.arange(p.seq0 + o, p.seq0 + len(p.packets), dtype=_np.int64)
                        for p, o in bursts
                    ]
                )
                ok_m = _np.concatenate([p.shape_ok[o:] for p, o in bursts])
                bid = _np.concatenate(
                    [
                        _np.full(len(p.packets) - o, j, dtype=_np.int64)
                        for j, (p, o) in enumerate(bursts)
                    ]
                )
                perm = _np.lexsort((seqs_m, times_m))
                times_m = times_m[perm]
                seqs_m = seqs_m[perm]
                ok_m = ok_m[perm]
            eligible = ok_m
            if until is not None:
                eligible = eligible & (times_m <= until)
            if cutoff is not None:
                ct = cutoff[0]
                cs = cutoff[1]
                eligible = eligible & (
                    (times_m < ct) | ((times_m == ct) & (seqs_m < cs))
                )
            if eligible.all():
                cut = len(eligible)
            else:
                cut = int(_np.argmax(~eligible))
            if budget is not None and cut > budget:
                cut = budget
            if cut == 0:
                # Unreachable in practice: the scheduler dispatched this
                # entry as the global minimum, so its head item is eligible.
                return fall_back(plan, offset)
            if k == 1:
                counts = [cut]
                starts_m = bursts[0][0].pair_start[o0 : o0 + cut]
                lens_m = bursts[0][0].npairs[o0 : o0 + cut]
                kids_g = bursts[0][0].kids
                vals_g = bursts[0][0].vals
            else:
                sel = perm[:cut]
                counts = _np.bincount(bid[sel], minlength=k).tolist()
                base = 0
                starts_parts = []
                for p, o in bursts:
                    starts_parts.append(p.pair_start[o:] + base)
                    base += len(p.kids)
                starts_m = _np.concatenate(starts_parts)[sel]
                lens_m = _np.concatenate([p.npairs[o:] for p, o in bursts])[sel]
                kids_g = _np.concatenate([p.kids for p, _o in bursts])
                vals_g = _np.concatenate([p.vals for p, _o in bursts])
            bounds = _np.cumsum(lens_m)
            total_pairs = int(bounds[-1])
            pair_idx = _np.repeat(starts_m - (bounds - lens_m), lens_m) + _np.arange(
                total_pairs, dtype=_np.int64
            )
            mass = 0
            for j in range(k):
                p, o = bursts[j]
                c = counts[j]
                if c:
                    mass += p.mass_cum[o + c] - p.mass_cum[o]
            result = engine._vector_apply(
                state, kids_g[pair_idx], vals_g[pair_idx], mass, cut, bounds
            )
            if result is None:
                # int64 overflow guard tripped: replay the consumed prefix
                # through the per-packet path, which is exact for any mass.
                if k == 1:
                    p0, o0 = bursts[0]
                    for i in range(o0, o0 + cut):
                        scheduler.now = p0.times[i]
                        sink(p0.target, p0.ingress, p0.packets[i], p0.nbytes[i])
                else:
                    loc = _np.concatenate(
                        [
                            _np.arange(o, len(p.packets), dtype=_np.int64)
                            for p, o in bursts
                        ]
                    )
                    for b, i in zip(bid[sel].tolist(), loc[sel].tolist()):
                        p = bursts[b][0]
                        scheduler.now = p.times[i]
                        sink(p.target, p.ingress, p.packets[i], p.nbytes[i])
            else:
                nbytes_total = 0
                for j in range(k):
                    p, o = bursts[j]
                    c = counts[j]
                    if c:
                        nbytes_total += p.nbytes_cum[o + c] - p.nbytes_cum[o]
                traffic = switch_traffic.get(name)
                if traffic is None:
                    traffic = switch_traffic[name] = PerDeviceTraffic()
                traffic.packets += cut
                traffic.bytes += nbytes_total
                counters.packets_in += cut
                counters.bytes_in += nbytes_total
                parser.packets_parsed += cut
                parser.bytes_parsed += nbytes_total
                pipeline.packets_processed += cut
                daiet_tbl.hit_count += cut
                if result:
                    for pkt_i, port, out_packet in result:
                        scheduler.now = times_m[pkt_i].item()
                        counters.packets_generated += 1
                        counters.packets_out += 1
                        counters.bytes_out += _switch_packet_bytes(
                            out_packet, counters
                        )
                        transmit(name, port, out_packet, packet_wire_bytes(out_packet))
            # Re-enqueue every burst's un-consumed tail at its own position.
            for j in range(k):
                p, o = bursts[j]
                nxt = o + counts[j]
                if nxt < len(p.packets):
                    push_entry((p.times[nxt], p.seq0 + nxt, burst_sink, (p, nxt)))
            scheduler.now = times_m[cut - 1].item()
            return cut

        return handler

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def install_routes(self) -> int:
        """Compute shortest-path routes and populate every forwarding table."""
        self.routes = compute_routes(self.topology)
        return install_forwarding_rules(self.topology, self.routes)

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def send(self, src_host: str, packet: Any, delay: float = 0.0) -> None:
        """Inject a packet from a host NIC into the network."""
        device = self._devices.get(src_host)
        if device is None:
            raise TopologyError(f"unknown device {src_host!r}")
        if not isinstance(device, Host):
            raise SimulationError(f"send() source {src_host!r} is not a host")
        if 0 not in self._port_info[src_host]:
            raise TopologyError(f"host {src_host!r} has no uplink")
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        # The wire size is computed once here and threaded through every hop
        # (``_transmit``/``_deliver`` below) instead of being re-derived 3-5
        # times per hop as before.
        nbytes = packet_wire_bytes(packet)
        device.note_sent(packet, nbytes)
        self.stats.record_host_sent(src_host, nbytes)
        self.scheduler.push_at(
            self.scheduler.now + delay, self._transmit, (src_host, 0, packet, nbytes)
        )

    def send_burst(self, src_host: str, packets: Iterable[Any], delay: float = 0.0) -> int:
        """Inject a window of packets from one host as a single wire event.

        Semantically identical to calling :meth:`send` once per packet — the
        packets hit the wire in list order at the same simulated time, with
        identical loss draws, link serialization and statistics — but the
        whole window costs one scheduler entry instead of N. Senders with
        bursty windows (map-output packetization, retransmission rounds)
        use this to keep the event queue proportional to in-flight traffic
        rather than to send-call volume.

        Each burst member still counts as one logical event in the totals
        reported by :meth:`run`. Returns the number of packets injected.
        """
        device = self._devices.get(src_host)
        if device is None:
            raise TopologyError(f"unknown device {src_host!r}")
        if not isinstance(device, Host):
            raise SimulationError(f"send_burst() source {src_host!r} is not a host")
        if 0 not in self._port_info[src_host]:
            raise TopologyError(f"host {src_host!r} has no uplink")
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        record_sent = self.stats.record_host_sent
        items: list[tuple[Any, int]] = []
        for packet in packets:
            nbytes = packet_wire_bytes(packet)
            device.note_sent(packet, nbytes)
            record_sent(src_host, nbytes)
            items.append((packet, nbytes))
        if not items:
            return 0
        # The burst plan is computed here — at send time, outside any timed
        # hot region — so the delivery fast path pays nothing per packet.
        plan = _plan_burst(items) if self._fast_burst else None
        self.scheduler.push_at(
            self.scheduler.now + delay, self._transmit_burst, (src_host, items, plan)
        )
        return len(items)

    def _transmit_burst(
        self,
        src_host: str,
        items: list[tuple[Any, int]],
        plan: _BurstPlan | None = None,
    ) -> None:
        """Put a whole window of packets on a host's uplink, in order.

        When no observer needs to see individual transmissions (see the
        ``_fast_burst`` gate in ``_build_port_maps``) and the uplink is
        lossless, the per-packet ``_transmit`` calls are inlined into one
        loop with batched stats: the busy-chain arithmetic, entry tuples and
        backend migration checks are operation-for-operation the ones
        ``_transmit`` performs, so arrival times and event order are
        bit-identical. Hosts are never congestion-modelled, so the congestion
        branch is statically dead here.
        """
        n = len(items)
        if n > 1 and self._fast_burst:
            info = self._port_info[src_host].get(0)
            if info is not None and info[0].loss_rate == 0.0:
                (
                    link,
                    link_name,
                    callback,
                    target,
                    other_port,
                    direction,
                    busy_key,
                    burst_sink,
                ) = info
                total_bytes = 0
                for _packet, nbytes in items:
                    total_bytes += nbytes
                direction.packets += n
                direction.bytes += total_bytes
                link_traffic = self._link_stats
                traffic = link_traffic.get(link_name)
                if traffic is None:
                    traffic = link_traffic[link_name] = PerDeviceTraffic()
                traffic.packets += n
                traffic.bytes += total_bytes
                busy = self._link_busy_until
                scheduler = self.scheduler
                now = scheduler.now
                busy_end = busy.get(busy_key, 0.0)
                if now > busy_end:
                    busy_end = now
                bandwidth = link.bandwidth_bps
                propagation = link.propagation_s
                seq = scheduler._seq
                threshold = scheduler._threshold
                if plan is not None and burst_sink is not None:
                    # Burst delivery entry: ONE queue entry stands for the
                    # whole window. Arrival times come from the same
                    # busy-chain arithmetic as the per-packet schedule, and
                    # the window consumes the same sequence-number range, so
                    # global event order is bit-identical; the burst handler
                    # re-expands any tail that foreign events interleave.
                    times: list[float] = []
                    for _packet, nbytes in items:
                        busy_end = busy_end + nbytes / bandwidth
                        times.append(busy_end + propagation)
                    plan.times = times
                    plan.seq0 = seq
                    plan.target = target
                    plan.ingress = other_port
                    entry = (times[0], seq, burst_sink, (plan, 0))
                    scheduler._seq = seq + n
                    cal = scheduler._cal
                    if cal is not None:
                        cal.push(entry)
                    else:
                        queue = scheduler._queue
                        heappush(queue, entry)
                        if len(queue) >= threshold:
                            scheduler._activate_calendar()
                    busy[busy_key] = busy_end
                    self._synthetic_events += n - 1
                    return
                for packet, nbytes in items:
                    busy_end = busy_end + nbytes / bandwidth
                    entry = (
                        busy_end + propagation,
                        seq,
                        callback,
                        (target, other_port, packet, nbytes),
                    )
                    seq += 1
                    cal = scheduler._cal
                    if cal is not None:
                        cal.push(entry)
                    else:
                        queue = scheduler._queue
                        heappush(queue, entry)
                        if len(queue) >= threshold:
                            scheduler._activate_calendar()
                scheduler._seq = seq
                busy[busy_key] = busy_end
                self._synthetic_events += n - 1
                return
        transmit = self._transmit
        for packet, nbytes in items:
            transmit(src_host, 0, packet, nbytes)
        self._synthetic_events += n - 1

    def _transmit(self, from_device: str, egress_port: int, packet: Any, nbytes: int) -> None:
        """Put a packet on the link attached to ``(from_device, egress_port)``."""
        info = self._port_info[from_device].get(egress_port)
        if info is None:
            # Transmissions towards unconnected ports are counted as drops.
            self.stats.record_drop(from_device)
            return
        link, link_name, callback, target, other_port, direction, busy_key, _burst = info
        if self._congestion_enabled and from_device in self._switch_names:
            # Switch egress queue model: the backlog is the serialization
            # time already committed to this link direction, expressed in
            # bytes. Over the buffer limit the packet is tail-dropped before
            # it ever occupies the link; over the ECN threshold, ECN-capable
            # packets are CE-marked in flight (False->True transitions only,
            # so retransmitted already-marked packets are not re-counted).
            backlog_s = self._link_busy_until.get(busy_key, 0.0) - self.scheduler.now
            if backlog_s > 0.0:
                backlog_bytes = backlog_s * link.bandwidth_bps
                limit = self._switch_buffer
                if limit is not None and backlog_bytes > limit:
                    self.stats.record_queue_drop(link_name)
                    return
                threshold = self._ecn_threshold
                if (
                    threshold is not None
                    and backlog_bytes > threshold
                    and getattr(packet, "ecn", None) is False
                ):
                    object.__setattr__(packet, "ecn", True)
                    self.stats.record_ecn_mark(link_name)
        direction.packets += 1
        direction.bytes += nbytes
        # stats.record_link, inlined (one call per packet per hop).
        link_traffic = self._link_stats
        traffic = link_traffic.get(link_name)
        if traffic is None:
            traffic = link_traffic[link_name] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes
        # Serialize transmissions per link direction (FIFO): a packet starts
        # transmitting only once the previous one has left the NIC. The busy
        # time is charged before the loss draw: a packet dropped in flight
        # still occupied the sender's NIC and the link for its serialization
        # time, so losses contribute to congestion like any other packet.
        busy = self._link_busy_until
        now = self.scheduler.now
        start = busy.get(busy_key, 0.0)
        if now > start:
            start = now
        serialization = nbytes / link.bandwidth_bps
        busy[busy_key] = start + serialization
        if link.loss_rate > 0.0 and self._loss_rng.random() < link.loss_rate:
            # The packet is lost in flight: it never reaches the other end.
            self.stats.record_loss(link_name)
            return
        # scheduler.push_at, inlined (one schedule per packet per hop); the
        # calendar branch mirrors EventScheduler.push_at exactly.
        scheduler = self.scheduler
        seq = scheduler._seq
        scheduler._seq = seq + 1
        entry = (
            start + serialization + link.propagation_s,
            seq,
            callback,
            (target, other_port, packet, nbytes),
        )
        cal = scheduler._cal
        if cal is not None:
            cal.push(entry)
        else:
            queue = scheduler._queue
            heappush(queue, entry)
            if len(queue) >= scheduler._threshold:
                scheduler._activate_calendar()

    def _deliver(self, device_name: str, ingress_port: int, packet: Any, nbytes: int) -> None:
        device = self._devices[device_name]
        device_type = type(device)
        if device_type is Host:
            # Hosts never forward; deliver straight to the application.
            # stats.record_host_received, inlined.
            host_received = self._host_recv_stats
            traffic = host_received.get(device_name)
            if traffic is None:
                traffic = host_received[device_name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            device.deliver(packet, nbytes)
            return
        if device_type is SwitchDevice:
            # Direct dispatch into the switch model, skipping the
            # handle_packet wrapper and re-derived packet sizing.
            # stats.record_switch, inlined.
            switch_traffic = self._switch_stats
            traffic = switch_traffic.get(device_name)
            if traffic is None:
                traffic = switch_traffic[device_name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            outputs = device.deliver(packet, ingress_port, nbytes)
        else:
            if isinstance(device, Host):
                self.stats.record_host_received(device_name, nbytes)
            elif isinstance(device, SwitchDevice):
                self.stats.record_switch(device_name, nbytes)
            outputs = device.handle_packet(packet, ingress_port)
        for egress_port, out_packet in outputs:
            self._transmit(
                device_name, egress_port, out_packet, packet_wire_bytes(out_packet)
            )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None) -> int:
        """Run the simulation until the event queue drains (or ``until``).

        Returns the number of logical events executed: scheduler dispatches
        plus the extra injections carried by burst events (see
        :meth:`send_burst`), so event totals are independent of whether a
        sender batched its window.
        """
        executed = self.scheduler.run(until=until, max_events=self.config.max_events)
        extra = self._synthetic_events
        if extra:
            self._synthetic_events = 0
            executed += extra
        return executed

    # ------------------------------------------------------------------ #
    # Timer hooks (used by the end-host reliability layer)
    # ------------------------------------------------------------------ #
    def schedule_timer(self, delay: float, callback: Any, *args: Any) -> Event:
        """Schedule an application callback (e.g. a retransmit check)."""
        return self.scheduler.schedule(delay, callback, *args)

    def timer(self, callback: Any) -> Timer:
        """A restartable one-shot :class:`Timer` on this simulation's clock."""
        return Timer(self.scheduler, callback)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.scheduler.now

    def device(self, name: str) -> Device:
        """Convenience accessor for a topology device."""
        return self.topology.get(name)

    def host(self, name: str) -> Host:
        """Return a host device, or raise if ``name`` is not a host."""
        device = self.topology.get(name)
        if not isinstance(device, Host):
            raise SimulationError(f"{name!r} is not a host")
        return device

    def switch(self, name: str) -> SwitchDevice:
        """Return a switch device, or raise if ``name`` is not a switch."""
        device = self.topology.get(name)
        if not isinstance(device, SwitchDevice):
            raise SimulationError(f"{name!r} is not a switch")
        return device
