"""The network simulator tying topology, devices, links and events together.

The simulator owns the event scheduler and the per-device port maps. Sending a
packet from a host schedules its arrival at the attached switch after the
link's store-and-forward delay; every switch output is likewise scheduled on
the corresponding link until the packet reaches a host, whose application
receiver is then invoked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappush
from typing import Any, Iterable

from repro.core.errors import SimulationError, TopologyError
from repro.netsim.devices import Device, Host, SwitchDevice, packet_wire_bytes
from repro.netsim.events import Event, EventScheduler, Timer
from repro.netsim.links import DirectionCounters, Link
from repro.netsim.routing import RoutingState, compute_routes, install_forwarding_rules
from repro.netsim.stats import PerDeviceTraffic, TrafficStats
from repro.netsim.topology import Topology


@dataclass
class SimulatorConfig:
    """Tunables of a simulation run."""

    #: Safety valve: maximum number of events a single ``run`` may execute.
    max_events: int = 50_000_000
    #: Automatically compute routes and install forwarding rules on start.
    auto_install_routes: bool = True
    #: Seed of the random stream deciding per-link packet drops (only used on
    #: links whose ``loss_rate`` is non-zero).
    loss_seed: int = 0
    #: Run with the runtime invariant sanitizer installed (conservation
    #: ledger, scheduler and register-leak checks). ``None`` defers to the
    #: ``REPRO_SANITIZE`` environment variable; the sanitizer costs nothing
    #: when disabled (no wrapper is installed, no flag is checked per event).
    sanitize: bool | None = None
    #: ECN marking threshold: when a switch egress queue (the serialized-but-
    #: not-yet-sent backlog of one link direction) exceeds this many bytes,
    #: ECN-capable packets passing through it have their CE bit set (DCTCP-
    #: style instantaneous marking). ``None`` disables marking entirely —
    #: the congestion branch is a single boolean check per transmission.
    ecn_threshold_bytes: int | None = None
    #: Finite switch egress buffering: a packet arriving at a switch egress
    #: whose queued backlog already exceeds this many bytes is tail-dropped
    #: (counted in ``TrafficStats.queue_drops``). ``None`` models infinite
    #: buffers — the historical, byte-identical behaviour.
    switch_buffer_bytes: int | None = None


class NetworkSimulator:
    """Discrete-event simulator over a :class:`Topology`."""

    def __init__(self, topology: Topology, config: SimulatorConfig | None = None) -> None:
        topology.validate()
        self.topology = topology
        self.config = config or SimulatorConfig()
        self.scheduler = EventScheduler()
        self.stats = TrafficStats()
        self.routes: RoutingState | None = None
        self._port_links: dict[str, dict[int, Link]] = {}
        #: Hot-path lookup: device -> port -> (link, link name, delivery
        #: callback, delivery target, neighbour port, per-direction byte
        #: counters, busy key). Everything static about a hop — including
        #: which specialized delivery routine the far end needs — is
        #: resolved once here instead of on every transmission.
        self._port_info: dict[
            str,
            dict[int, tuple[Link, str, Any, Any, int, DirectionCounters, tuple[str, str]]],
        ] = {}
        #: Direct reference to the topology's device table (hot-path lookup).
        self._devices = topology.devices
        #: Bound references to the hot stats tables. ``TrafficStats.reset``
        #: clears these dicts in place, so the bindings stay valid.
        self._link_stats = self.stats.link_traffic
        self._host_recv_stats = self.stats.host_received
        self._switch_stats = self.stats.switch_traffic
        #: Per-direction link occupancy: (link name, sender) -> time the link
        #: becomes free. Transmissions on the same direction are serialized so
        #: packets cannot overtake each other (FIFO links).
        self._link_busy_until: dict[tuple[str, str], float] = {}
        self._loss_rng = random.Random(self.config.loss_seed)
        #: Congestion modelling (ECN marking, finite egress buffers) only
        #: applies to switch egress queues; host uplinks are the sender's own
        #: NIC, which backpressures rather than drops. The combined flag
        #: keeps the default hot path at one boolean check per transmission.
        self._ecn_threshold = self.config.ecn_threshold_bytes
        self._switch_buffer = self.config.switch_buffer_bytes
        self._congestion_enabled = (
            self._ecn_threshold is not None or self._switch_buffer is not None
        )
        self._switch_names = frozenset(
            name
            for name, device in topology.devices.items()
            if isinstance(device, SwitchDevice)
        )
        #: Extra logical events carried by burst transmissions: a burst of N
        #: packets is ONE scheduler event whose callback performs N
        #: injections, and the N-1 "saved" events are accounted here so
        #: ``run()`` keeps returning the same event count a per-packet
        #: schedule would have produced (reports and benches stay
        #: comparable across PRs).
        self._synthetic_events = 0
        #: Installed :class:`~repro.checks.sanitize.SimulatorSanitizer`, or
        #: ``None`` on an ordinary (unsanitized) simulator.
        self.sanitizer = None
        #: Installed :class:`~repro.netsim.faults.FaultInjector`, or ``None``
        #: on a fault-free simulator. Set by ``FaultInjector.install``.
        self.fault_injector = None
        self._build_port_maps()
        if self.config.auto_install_routes:
            self.install_routes()
        sanitize = self.config.sanitize
        if sanitize is None:
            from repro.checks.sanitize import sanitize_enabled_in_env

            sanitize = sanitize_enabled_in_env()
        if sanitize:
            from repro.checks.sanitize import install_sanitizer

            install_sanitizer(self)

    def _build_port_maps(self) -> None:
        for name in self.topology.devices:
            self._port_links[name] = {}
            self._port_info[name] = {}
        for link in self.topology.links:
            for end, other in ((link.a, link.b), (link.b, link.a)):
                self._port_links[end.device][end.port] = link
                # The delivery callback is compiled per receiver at build
                # time — a closure binding the receiver's stats slot and
                # delivery routine — so per-packet delivery needs no device
                # lookup, type dispatch or simulator attribute traffic.
                # Subclassed devices use the generic path.
                device = self.topology.devices[other.device]
                device_type = type(device)
                if device_type is Host:
                    callback = self._compile_host_sink(device)
                    target: Any = device
                elif device_type is SwitchDevice:
                    callback = self._compile_switch_sink(device)
                    target = device
                else:
                    callback = self._deliver
                    target = other.device
                self._port_info[end.device][end.port] = (
                    link,
                    link.name,
                    callback,
                    target,
                    other.port,
                    link.counters(end.device),
                    (link.name, end.device),
                )

    def _compile_host_sink(self, host: Host) -> Any:
        """A delivery closure for one host: stats recording + app delivery.

        The per-packet ``self`` attribute loads are resolved at build time.
        The stats *dict* is bound (not the per-host counter object), so
        ``TrafficStats.reset`` keeps working — counters are re-created on
        the next packet.
        """
        host_received = self._host_recv_stats
        name = host.name
        deliver = host.deliver

        def sink(_target: Any, _ingress_port: int, packet: Any, nbytes: int) -> None:
            traffic = host_received.get(name)
            if traffic is None:
                traffic = host_received[name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            deliver(packet, nbytes)

        return sink

    def _compile_switch_sink(self, device: SwitchDevice) -> Any:
        """A delivery closure for one switch: stats + deliver + re-transmit."""
        switch_traffic = self._switch_stats
        name = device.name
        deliver = device.deliver
        transmit = self._transmit

        def sink(_target: Any, ingress_port: int, packet: Any, nbytes: int) -> None:
            traffic = switch_traffic.get(name)
            if traffic is None:
                traffic = switch_traffic[name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            outputs = deliver(packet, ingress_port, nbytes)
            if outputs:
                for egress_port, out_packet in outputs:
                    transmit(
                        name, egress_port, out_packet, packet_wire_bytes(out_packet)
                    )

        return sink

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def install_routes(self) -> int:
        """Compute shortest-path routes and populate every forwarding table."""
        self.routes = compute_routes(self.topology)
        return install_forwarding_rules(self.topology, self.routes)

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def send(self, src_host: str, packet: Any, delay: float = 0.0) -> None:
        """Inject a packet from a host NIC into the network."""
        device = self._devices.get(src_host)
        if device is None:
            raise TopologyError(f"unknown device {src_host!r}")
        if not isinstance(device, Host):
            raise SimulationError(f"send() source {src_host!r} is not a host")
        if 0 not in self._port_info[src_host]:
            raise TopologyError(f"host {src_host!r} has no uplink")
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        # The wire size is computed once here and threaded through every hop
        # (``_transmit``/``_deliver`` below) instead of being re-derived 3-5
        # times per hop as before.
        nbytes = packet_wire_bytes(packet)
        device.note_sent(packet, nbytes)
        self.stats.record_host_sent(src_host, nbytes)
        self.scheduler.push_at(
            self.scheduler.now + delay, self._transmit, (src_host, 0, packet, nbytes)
        )

    def send_burst(self, src_host: str, packets: Iterable[Any], delay: float = 0.0) -> int:
        """Inject a window of packets from one host as a single wire event.

        Semantically identical to calling :meth:`send` once per packet — the
        packets hit the wire in list order at the same simulated time, with
        identical loss draws, link serialization and statistics — but the
        whole window costs one scheduler entry instead of N. Senders with
        bursty windows (map-output packetization, retransmission rounds)
        use this to keep the event queue proportional to in-flight traffic
        rather than to send-call volume.

        Each burst member still counts as one logical event in the totals
        reported by :meth:`run`. Returns the number of packets injected.
        """
        device = self._devices.get(src_host)
        if device is None:
            raise TopologyError(f"unknown device {src_host!r}")
        if not isinstance(device, Host):
            raise SimulationError(f"send_burst() source {src_host!r} is not a host")
        if 0 not in self._port_info[src_host]:
            raise TopologyError(f"host {src_host!r} has no uplink")
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        record_sent = self.stats.record_host_sent
        items: list[tuple[Any, int]] = []
        for packet in packets:
            nbytes = packet_wire_bytes(packet)
            device.note_sent(packet, nbytes)
            record_sent(src_host, nbytes)
            items.append((packet, nbytes))
        if not items:
            return 0
        self.scheduler.push_at(
            self.scheduler.now + delay, self._transmit_burst, (src_host, items)
        )
        return len(items)

    def _transmit_burst(self, src_host: str, items: list[tuple[Any, int]]) -> None:
        """Put a whole window of packets on a host's uplink, in order."""
        transmit = self._transmit
        for packet, nbytes in items:
            transmit(src_host, 0, packet, nbytes)
        self._synthetic_events += len(items) - 1

    def _transmit(self, from_device: str, egress_port: int, packet: Any, nbytes: int) -> None:
        """Put a packet on the link attached to ``(from_device, egress_port)``."""
        info = self._port_info[from_device].get(egress_port)
        if info is None:
            # Transmissions towards unconnected ports are counted as drops.
            self.stats.record_drop(from_device)
            return
        link, link_name, callback, target, other_port, direction, busy_key = info
        if self._congestion_enabled and from_device in self._switch_names:
            # Switch egress queue model: the backlog is the serialization
            # time already committed to this link direction, expressed in
            # bytes. Over the buffer limit the packet is tail-dropped before
            # it ever occupies the link; over the ECN threshold, ECN-capable
            # packets are CE-marked in flight (False->True transitions only,
            # so retransmitted already-marked packets are not re-counted).
            backlog_s = self._link_busy_until.get(busy_key, 0.0) - self.scheduler.now
            if backlog_s > 0.0:
                backlog_bytes = backlog_s * link.bandwidth_bps
                limit = self._switch_buffer
                if limit is not None and backlog_bytes > limit:
                    self.stats.record_queue_drop(link_name)
                    return
                threshold = self._ecn_threshold
                if (
                    threshold is not None
                    and backlog_bytes > threshold
                    and getattr(packet, "ecn", None) is False
                ):
                    object.__setattr__(packet, "ecn", True)
                    self.stats.record_ecn_mark(link_name)
        direction.packets += 1
        direction.bytes += nbytes
        # stats.record_link, inlined (one call per packet per hop).
        link_traffic = self._link_stats
        traffic = link_traffic.get(link_name)
        if traffic is None:
            traffic = link_traffic[link_name] = PerDeviceTraffic()
        traffic.packets += 1
        traffic.bytes += nbytes
        # Serialize transmissions per link direction (FIFO): a packet starts
        # transmitting only once the previous one has left the NIC. The busy
        # time is charged before the loss draw: a packet dropped in flight
        # still occupied the sender's NIC and the link for its serialization
        # time, so losses contribute to congestion like any other packet.
        busy = self._link_busy_until
        now = self.scheduler.now
        start = busy.get(busy_key, 0.0)
        if now > start:
            start = now
        serialization = nbytes / link.bandwidth_bps
        busy[busy_key] = start + serialization
        if link.loss_rate > 0.0 and self._loss_rng.random() < link.loss_rate:
            # The packet is lost in flight: it never reaches the other end.
            self.stats.record_loss(link_name)
            return
        # scheduler.push_at, inlined (one schedule per packet per hop); the
        # calendar branch mirrors EventScheduler.push_at exactly.
        scheduler = self.scheduler
        seq = scheduler._seq
        scheduler._seq = seq + 1
        entry = (
            start + serialization + link.propagation_s,
            seq,
            callback,
            (target, other_port, packet, nbytes),
        )
        cal = scheduler._cal
        if cal is not None:
            cal.push(entry)
        else:
            queue = scheduler._queue
            heappush(queue, entry)
            if len(queue) >= scheduler._threshold:
                scheduler._activate_calendar()

    def _deliver(self, device_name: str, ingress_port: int, packet: Any, nbytes: int) -> None:
        device = self._devices[device_name]
        device_type = type(device)
        if device_type is Host:
            # Hosts never forward; deliver straight to the application.
            # stats.record_host_received, inlined.
            host_received = self._host_recv_stats
            traffic = host_received.get(device_name)
            if traffic is None:
                traffic = host_received[device_name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            device.deliver(packet, nbytes)
            return
        if device_type is SwitchDevice:
            # Direct dispatch into the switch model, skipping the
            # handle_packet wrapper and re-derived packet sizing.
            # stats.record_switch, inlined.
            switch_traffic = self._switch_stats
            traffic = switch_traffic.get(device_name)
            if traffic is None:
                traffic = switch_traffic[device_name] = PerDeviceTraffic()
            traffic.packets += 1
            traffic.bytes += nbytes
            outputs = device.deliver(packet, ingress_port, nbytes)
        else:
            if isinstance(device, Host):
                self.stats.record_host_received(device_name, nbytes)
            elif isinstance(device, SwitchDevice):
                self.stats.record_switch(device_name, nbytes)
            outputs = device.handle_packet(packet, ingress_port)
        for egress_port, out_packet in outputs:
            self._transmit(
                device_name, egress_port, out_packet, packet_wire_bytes(out_packet)
            )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None) -> int:
        """Run the simulation until the event queue drains (or ``until``).

        Returns the number of logical events executed: scheduler dispatches
        plus the extra injections carried by burst events (see
        :meth:`send_burst`), so event totals are independent of whether a
        sender batched its window.
        """
        executed = self.scheduler.run(until=until, max_events=self.config.max_events)
        extra = self._synthetic_events
        if extra:
            self._synthetic_events = 0
            executed += extra
        return executed

    # ------------------------------------------------------------------ #
    # Timer hooks (used by the end-host reliability layer)
    # ------------------------------------------------------------------ #
    def schedule_timer(self, delay: float, callback: Any, *args: Any) -> Event:
        """Schedule an application callback (e.g. a retransmit check)."""
        return self.scheduler.schedule(delay, callback, *args)

    def timer(self, callback: Any) -> Timer:
        """A restartable one-shot :class:`Timer` on this simulation's clock."""
        return Timer(self.scheduler, callback)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.scheduler.now

    def device(self, name: str) -> Device:
        """Convenience accessor for a topology device."""
        return self.topology.get(name)

    def host(self, name: str) -> Host:
        """Return a host device, or raise if ``name`` is not a host."""
        device = self.topology.get(name)
        if not isinstance(device, Host):
            raise SimulationError(f"{name!r} is not a host")
        return device

    def switch(self, name: str) -> SwitchDevice:
        """Return a switch device, or raise if ``name`` is not a switch."""
        device = self.topology.get(name)
        if not isinstance(device, SwitchDevice):
            raise SimulationError(f"{name!r} is not a switch")
        return device
