"""The network simulator tying topology, devices, links and events together.

The simulator owns the event scheduler and the per-device port maps. Sending a
packet from a host schedules its arrival at the attached switch after the
link's store-and-forward delay; every switch output is likewise scheduled on
the corresponding link until the packet reaches a host, whose application
receiver is then invoked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.errors import SimulationError, TopologyError
from repro.netsim.devices import Device, Host, SwitchDevice, packet_wire_bytes
from repro.netsim.events import Event, EventScheduler, Timer
from repro.netsim.links import Link
from repro.netsim.routing import RoutingState, compute_routes, install_forwarding_rules
from repro.netsim.stats import TrafficStats
from repro.netsim.topology import Topology


@dataclass
class SimulatorConfig:
    """Tunables of a simulation run."""

    #: Safety valve: maximum number of events a single ``run`` may execute.
    max_events: int = 50_000_000
    #: Automatically compute routes and install forwarding rules on start.
    auto_install_routes: bool = True
    #: Seed of the random stream deciding per-link packet drops (only used on
    #: links whose ``loss_rate`` is non-zero).
    loss_seed: int = 0


class NetworkSimulator:
    """Discrete-event simulator over a :class:`Topology`."""

    def __init__(self, topology: Topology, config: SimulatorConfig | None = None) -> None:
        topology.validate()
        self.topology = topology
        self.config = config or SimulatorConfig()
        self.scheduler = EventScheduler()
        self.stats = TrafficStats()
        self.routes: RoutingState | None = None
        self._port_links: dict[str, dict[int, Link]] = {}
        #: Per-direction link occupancy: (link name, sender) -> time the link
        #: becomes free. Transmissions on the same direction are serialized so
        #: packets cannot overtake each other (FIFO links).
        self._link_busy_until: dict[tuple[str, str], float] = {}
        self._loss_rng = random.Random(self.config.loss_seed)
        self._build_port_maps()
        if self.config.auto_install_routes:
            self.install_routes()

    def _build_port_maps(self) -> None:
        for name in self.topology.devices:
            self._port_links[name] = {}
        for link in self.topology.links:
            self._port_links[link.a.device][link.a.port] = link
            self._port_links[link.b.device][link.b.port] = link

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def install_routes(self) -> int:
        """Compute shortest-path routes and populate every forwarding table."""
        self.routes = compute_routes(self.topology)
        return install_forwarding_rules(self.topology, self.routes)

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def send(self, src_host: str, packet: Any, delay: float = 0.0) -> None:
        """Inject a packet from a host NIC into the network."""
        device = self.topology.get(src_host)
        if not isinstance(device, Host):
            raise SimulationError(f"send() source {src_host!r} is not a host")
        ports = self._port_links.get(src_host, {})
        if 0 not in ports:
            raise TopologyError(f"host {src_host!r} has no uplink")
        device.note_sent(packet)
        self.stats.record_host_sent(src_host, packet_wire_bytes(packet))
        self.scheduler.schedule(delay, self._transmit, src_host, 0, packet)

    def _transmit(self, from_device: str, egress_port: int, packet: Any) -> None:
        """Put a packet on the link attached to ``(from_device, egress_port)``."""
        ports = self._port_links.get(from_device, {})
        link = ports.get(egress_port)
        if link is None:
            # Transmissions towards unconnected ports are counted as drops.
            self.stats.record_drop(from_device)
            return
        nbytes = packet_wire_bytes(packet)
        link.record_transmission(from_device, nbytes)
        self.stats.record_link(link.name, nbytes)
        # Serialize transmissions per link direction (FIFO): a packet starts
        # transmitting only once the previous one has left the NIC. The busy
        # time is charged before the loss draw: a packet dropped in flight
        # still occupied the sender's NIC and the link for its serialization
        # time, so losses contribute to congestion like any other packet.
        busy_key = (link.name, from_device)
        start = max(self.scheduler.now, self._link_busy_until.get(busy_key, 0.0))
        serialization = nbytes / link.bandwidth_bps
        self._link_busy_until[busy_key] = start + serialization
        if link.loss_rate > 0.0 and self._loss_rng.random() < link.loss_rate:
            # The packet is lost in flight: it never reaches the other end.
            self.stats.record_loss(link.name)
            return
        other = link.other_end(from_device)
        arrival = start + serialization + link.propagation_s
        self.scheduler.schedule_at(arrival, self._deliver, other.device, other.port, packet)

    def _deliver(self, device_name: str, ingress_port: int, packet: Any) -> None:
        device = self.topology.get(device_name)
        nbytes = packet_wire_bytes(packet)
        if isinstance(device, Host):
            self.stats.record_host_received(device_name, nbytes)
        elif isinstance(device, SwitchDevice):
            self.stats.record_switch(device_name, nbytes)
        outputs = device.handle_packet(packet, ingress_port)
        for egress_port, out_packet in outputs:
            self._transmit(device_name, egress_port, out_packet)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None) -> int:
        """Run the simulation until the event queue drains (or ``until``)."""
        return self.scheduler.run(until=until, max_events=self.config.max_events)

    # ------------------------------------------------------------------ #
    # Timer hooks (used by the end-host reliability layer)
    # ------------------------------------------------------------------ #
    def schedule_timer(self, delay: float, callback: Any, *args: Any) -> Event:
        """Schedule an application callback (e.g. a retransmit check)."""
        return self.scheduler.schedule(delay, callback, *args)

    def timer(self, callback: Any) -> Timer:
        """A restartable one-shot :class:`Timer` on this simulation's clock."""
        return Timer(self.scheduler, callback)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.scheduler.now

    def device(self, name: str) -> Device:
        """Convenience accessor for a topology device."""
        return self.topology.get(name)

    def host(self, name: str) -> Host:
        """Return a host device, or raise if ``name`` is not a host."""
        device = self.topology.get(name)
        if not isinstance(device, Host):
            raise SimulationError(f"{name!r} is not a host")
        return device

    def switch(self, name: str) -> SwitchDevice:
        """Return a switch device, or raise if ``name`` is not a switch."""
        device = self.topology.get(name)
        if not isinstance(device, SwitchDevice):
            raise SimulationError(f"{name!r} is not a switch")
        return device
