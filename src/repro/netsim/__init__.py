"""Data-center network simulator substrate.

Provides the discrete-event engine (:mod:`events`), link and device models
(:mod:`links`, :mod:`devices`), topology builders (:mod:`topology`), routing
(:mod:`routing`), traffic accounting (:mod:`stats`) and the simulator facade
(:mod:`simulator`).
"""

from repro.netsim.devices import (
    DAIET_TABLE,
    FORWARDING_TABLE,
    Device,
    Host,
    HostCounters,
    SwitchDevice,
    packet_wire_bytes,
)
from repro.netsim.events import Event, EventScheduler, Timer
from repro.netsim.links import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_PROPAGATION_S,
    DirectionCounters,
    Endpoint,
    Link,
)
from repro.netsim.routing import (
    RoutingState,
    compute_routes,
    host_uplink_switch,
    install_forwarding_rules,
    path_switches,
    shortest_path,
)
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.stats import PerDeviceTraffic, TrafficStats
from repro.netsim.topology import Topology, fat_tree, leaf_spine, single_rack

__all__ = [
    "DAIET_TABLE",
    "FORWARDING_TABLE",
    "Device",
    "Host",
    "HostCounters",
    "SwitchDevice",
    "packet_wire_bytes",
    "Event",
    "EventScheduler",
    "Timer",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_PROPAGATION_S",
    "DirectionCounters",
    "Endpoint",
    "Link",
    "RoutingState",
    "compute_routes",
    "host_uplink_switch",
    "install_forwarding_rules",
    "path_switches",
    "shortest_path",
    "NetworkSimulator",
    "SimulatorConfig",
    "PerDeviceTraffic",
    "TrafficStats",
    "Topology",
    "fat_tree",
    "leaf_spine",
    "single_rack",
]
