"""Route computation and forwarding-table population.

The control plane computes shortest paths over the topology graph and installs
one exact-match entry per destination host into every switch's ``l3_forward``
table. Equal-cost multipath is resolved deterministically (lexicographically
smallest next hop) unless a flow label is provided, in which case the next hop
is picked by hashing the label — mirroring ECMP hashing in real fabrics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import RoutingError
from repro.dataplane.tables import FlowRule
from repro.netsim.devices import FORWARDING_TABLE, Host, SwitchDevice
from repro.netsim.topology import Topology


@dataclass
class RoutingState:
    """Computed routing state: per-switch next hops for every host destination."""

    #: switch name -> destination host name -> next-hop device name
    next_hops: dict[str, dict[str, str]] = field(default_factory=dict)

    def next_hop(self, switch: str, dst: str) -> str:
        """Next-hop device name for traffic to ``dst`` at ``switch``."""
        try:
            return self.next_hops[switch][dst]
        except KeyError as exc:
            raise RoutingError(f"no route from {switch!r} to {dst!r}") from exc


def compute_routes(topology: Topology, ecmp_seed: int = 0) -> RoutingState:
    """Compute shortest-path next hops from every switch to every host."""
    graph = topology.graph()
    hosts = [h.name for h in topology.hosts()]
    state = RoutingState()
    for switch in topology.switches():
        state.next_hops[switch.name] = {}
        for dst in hosts:
            paths = _shortest_paths(graph, switch.name, dst)
            if not paths:
                raise RoutingError(f"host {dst!r} unreachable from switch {switch.name!r}")
            chosen = _pick_path(paths, key=f"{switch.name}->{dst}", seed=ecmp_seed)
            # chosen[0] is the switch itself; chosen[1] is the next hop.
            state.next_hops[switch.name][dst] = chosen[1]
    return state


def install_forwarding_rules(topology: Topology, routes: RoutingState | None = None) -> int:
    """Install destination-based forwarding entries on every switch.

    Returns the number of flow rules installed.
    """
    routes = routes or compute_routes(topology)
    installed = 0
    for switch in topology.switches():
        for dst, next_hop in routes.next_hops[switch.name].items():
            port = topology.port_towards(switch.name, next_hop)
            rule = FlowRule.create(
                table=FORWARDING_TABLE,
                match={"dst": dst},
                action_name="forward",
                action_params={"egress_port": port},
            )
            switch.switch.install_rule(rule)
            installed += 1
    return installed


def shortest_path(topology: Topology, src: str, dst: str) -> list[str]:
    """The (deterministic) shortest path between two devices, as device names."""
    graph = topology.graph()
    paths = _shortest_paths(graph, src, dst)
    if not paths:
        raise RoutingError(f"no path from {src!r} to {dst!r}")
    return _pick_path(paths, key=f"{src}->{dst}", seed=0)


def path_switches(topology: Topology, src: str, dst: str) -> list[str]:
    """Switches traversed on the shortest path from ``src`` to ``dst``."""
    return [
        name
        for name in shortest_path(topology, src, dst)
        if isinstance(topology.get(name), SwitchDevice)
    ]


def host_uplink_switch(topology: Topology, host_name: str) -> str:
    """The ToR switch a host is directly attached to."""
    host = topology.get(host_name)
    if not isinstance(host, Host):
        raise RoutingError(f"{host_name!r} is not a host")
    neighbors = topology.neighbors(host_name)
    switches = [n for n in neighbors if isinstance(topology.get(n), SwitchDevice)]
    if not switches:
        raise RoutingError(f"host {host_name!r} has no switch uplink")
    return switches[0]


def _shortest_paths(graph: nx.Graph, src: str, dst: str) -> list[list[str]]:
    if src == dst:
        return [[src]]
    try:
        return sorted(nx.all_shortest_paths(graph, src, dst))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return []


def _pick_path(paths: list[list[str]], key: str, seed: int) -> list[str]:
    if len(paths) == 1:
        return paths[0]
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    index = int.from_bytes(digest[:4], "big") % len(paths)
    return paths[index]
