"""Route computation and forwarding-table population.

The control plane computes shortest paths over the topology graph and installs
one exact-match entry per destination host into every switch's ``l3_forward``
table. Equal-cost multipath is resolved deterministically (lexicographically
smallest next hop) unless a flow label is provided, in which case the next hop
is picked by hashing the label — mirroring ECMP hashing in real fabrics.

Implementation note: routes are derived from **one BFS per destination host**
over the shortest-path DAG, not from per-(source, destination) path
enumeration. Counting the equal-cost paths through each DAG successor lets the
hash index select the k-th lexicographic path without materializing the path
set, so the result is bit-identical to sorting ``all_shortest_paths`` and
indexing into it — the previous implementation — while route installation for
a 1000-host fabric drops from minutes to about a second. The aggregation-tree
builder (:mod:`repro.core.tree`) reuses the same per-destination machinery via
:func:`paths_towards`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import RoutingError
from repro.dataplane.tables import FlowRule
from repro.netsim.devices import FORWARDING_TABLE, Host, SwitchDevice
from repro.netsim.topology import Topology


@dataclass
class RoutingState:
    """Computed routing state: per-switch next hops for every host destination."""

    #: switch name -> destination host name -> next-hop device name
    next_hops: dict[str, dict[str, str]] = field(default_factory=dict)

    def next_hop(self, switch: str, dst: str) -> str:
        """Next-hop device name for traffic to ``dst`` at ``switch``."""
        try:
            return self.next_hops[switch][dst]
        except KeyError as exc:
            raise RoutingError(f"no route from {switch!r} to {dst!r}") from exc


class _DestinationDag:
    """Shortest-path DAG towards one destination, with per-node path counts.

    ``succs[node]`` holds the lexicographically sorted neighbours one hop
    closer to the destination; ``counts[node]`` is the number of distinct
    shortest paths from ``node`` to the destination. Together they allow
    selecting the k-th path in the order ``sorted(all_shortest_paths(...))``
    would produce — by walking the DAG and subtracting subtree path counts —
    without enumerating any path.
    """

    __slots__ = ("dst", "dist", "succs", "counts")

    def __init__(self, adjacency: dict[str, list[str]], dst: str) -> None:
        if dst not in adjacency:
            raise RoutingError(f"unknown destination {dst!r}")
        self.dst = dst
        dist: dict[str, int] = {dst: 0}
        frontier = [dst]
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                hop = dist[node] + 1
                for neighbor in adjacency[node]:
                    if neighbor not in dist:
                        dist[neighbor] = hop
                        next_frontier.append(neighbor)
            frontier = next_frontier
        self.dist = dist
        succs: dict[str, list[str]] = {dst: []}
        counts: dict[str, int] = {dst: 1}
        # Process nodes by increasing distance so successor counts exist.
        for node in sorted(dist, key=dist.__getitem__):
            if node == dst:
                continue
            closer = dist[node] - 1
            node_succs = [n for n in adjacency[node] if dist.get(n) == closer]
            succs[node] = node_succs
            counts[node] = sum(counts[s] for s in node_succs)
        self.succs = succs
        self.counts = counts

    def path_index(self, src: str, seed: int) -> int:
        """The deterministic ECMP index for traffic ``src`` -> ``dst``."""
        total = self.counts[src]
        if total == 1:
            return 0
        digest = hashlib.sha256(f"{seed}:{src}->{self.dst}".encode()).digest()
        return int.from_bytes(digest[:4], "big") % total

    def first_hop(self, src: str, seed: int) -> str:
        """First hop of the selected shortest path from ``src``."""
        index = self.path_index(src, seed)
        for succ in self.succs[src]:
            count = self.counts[succ]
            if index < count:
                return succ
            index -= count
        raise RoutingError(f"no route from {src!r} to {self.dst!r}")  # pragma: no cover

    def path_from(self, src: str, seed: int) -> list[str]:
        """The full selected shortest path from ``src`` (as device names)."""
        if src == self.dst:
            return [src]
        if src not in self.counts:
            raise RoutingError(f"no path from {src!r} to {self.dst!r}")
        index = self.path_index(src, seed)
        path = [src]
        node = src
        while node != self.dst:
            for succ in self.succs[node]:
                count = self.counts[succ]
                if index < count:
                    path.append(succ)
                    node = succ
                    break
                index -= count
            else:  # pragma: no cover - counts always sum over succs
                raise RoutingError(f"no path from {src!r} to {self.dst!r}")
        return path


def _sorted_adjacency(
    topology: Topology, exclude: Iterable[str] | None = None
) -> dict[str, list[str]]:
    """Neighbour lists sorted by name (the lexicographic ECMP order).

    Devices named in ``exclude`` (crashed or quarantined switches) are
    removed from the graph entirely: they appear neither as nodes nor as
    anyone's neighbour, so no path ever traverses them.
    """
    if not exclude:
        return {name: sorted(topology.neighbors(name)) for name in topology.devices}
    excluded = set(exclude)
    return {
        name: sorted(n for n in topology.neighbors(name) if n not in excluded)
        for name in topology.devices
        if name not in excluded
    }


def paths_towards(
    topology: Topology,
    dst: str,
    sources: Iterable[str],
    ecmp_seed: int = 0,
    exclude: Iterable[str] | None = None,
) -> dict[str, list[str]]:
    """Selected shortest path from every source towards one destination.

    One BFS serves every source, so building an aggregation tree over
    hundreds of mappers costs O(E + mappers · path length) instead of one
    graph traversal per mapper. ``exclude`` removes devices (e.g. crashed
    switches) from the graph before the BFS; an unreachable source raises
    :class:`RoutingError`.
    """
    dag = _DestinationDag(_sorted_adjacency(topology, exclude), dst)
    return {src: dag.path_from(src, ecmp_seed) for src in sources}


def compute_routes(
    topology: Topology,
    ecmp_seed: int = 0,
    exclude: Iterable[str] | None = None,
) -> RoutingState:
    """Compute shortest-path next hops from every switch to every host.

    Switches named in ``exclude`` are removed from the graph: they get no
    next-hop entries and no path routes through them. A host unreachable
    from a surviving switch raises :class:`RoutingError`.
    """
    excluded = set(exclude) if exclude else set()
    adjacency = _sorted_adjacency(topology, excluded)
    switches = [s for s in topology.switches() if s.name not in excluded]
    state = RoutingState()
    for switch in switches:
        state.next_hops[switch.name] = {}
    for host in topology.hosts():
        dst = host.name
        if dst not in adjacency:
            continue
        dag = _DestinationDag(adjacency, dst)
        for switch in switches:
            if switch.name not in dag.counts:
                raise RoutingError(
                    f"host {dst!r} unreachable from switch {switch.name!r}"
                )
            state.next_hops[switch.name][dst] = dag.first_hop(switch.name, ecmp_seed)
    return state


def install_forwarding_rules(
    topology: Topology,
    routes: RoutingState | None = None,
    *,
    skip: Iterable[str] = (),
    clear_first: bool = False,
) -> int:
    """Install destination-based forwarding entries on every switch.

    ``skip`` names switches to leave untouched (crashed ones, during a
    failover reinstall). ``clear_first`` empties each touched switch's
    forwarding table before installing — required when re-planning, because
    exact-match tables reject duplicate entries. Switches absent from
    ``routes.next_hops`` (excluded at route computation) are skipped too.
    Returns the number of flow rules installed.
    """
    routes = routes or compute_routes(topology)
    skipped = set(skip)
    installed = 0
    for switch in topology.switches():
        if switch.name in skipped:
            continue
        next_hops = routes.next_hops.get(switch.name)
        if next_hops is None:
            continue
        if clear_first:
            switch.forwarding_table.clear()
        for dst, next_hop in next_hops.items():
            port = topology.port_towards(switch.name, next_hop)
            rule = FlowRule.create(
                table=FORWARDING_TABLE,
                match={"dst": dst},
                action_name="forward",
                action_params={"egress_port": port},
            )
            switch.switch.install_rule(rule)
            installed += 1
    return installed


def shortest_path(topology: Topology, src: str, dst: str) -> list[str]:
    """The (deterministic) shortest path between two devices, as device names."""
    if src not in topology.devices:
        raise RoutingError(f"no path from {src!r} to {dst!r}")
    dag = _DestinationDag(_sorted_adjacency(topology), dst)
    return dag.path_from(src, 0)


def path_switches(topology: Topology, src: str, dst: str) -> list[str]:
    """Switches traversed on the shortest path from ``src`` to ``dst``."""
    return [
        name
        for name in shortest_path(topology, src, dst)
        if isinstance(topology.get(name), SwitchDevice)
    ]


def host_uplink_switch(topology: Topology, host_name: str) -> str:
    """The ToR switch a host is directly attached to."""
    host = topology.get(host_name)
    if not isinstance(host, Host):
        raise RoutingError(f"{host_name!r} is not a host")
    neighbors = topology.neighbors(host_name)
    switches = [n for n in neighbors if isinstance(topology.get(n), SwitchDevice)]
    if not switches:
        raise RoutingError(f"host {host_name!r} has no switch uplink")
    return switches[0]
