"""Point-to-point link model.

Links connect a port on one device to a port on another. Each direction keeps
its own byte and packet counters (which is what the evaluation reads to compute
traffic-reduction ratios) and a simple store-and-forward latency model:
``delay = propagation + size / bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import TopologyError

#: 40 Gb/s expressed in bytes per second — a typical data-center access link.
DEFAULT_BANDWIDTH_BPS = 40e9 / 8

#: Intra-data-center propagation delay (a few microseconds).
DEFAULT_PROPAGATION_S = 2e-6


@dataclass
class DirectionCounters:
    """Per-direction traffic counters."""

    packets: int = 0
    bytes: int = 0

    def record(self, nbytes: int) -> None:
        """Account one packet of ``nbytes`` bytes."""
        self.packets += 1
        self.bytes += nbytes


@dataclass
class Endpoint:
    """One end of a link: a device name and a port number."""

    device: str
    port: int


@dataclass
class Link:
    """A full-duplex point-to-point link between two device ports.

    ``loss_rate`` is the independent per-packet drop probability applied by the
    simulator on each direction; the default of 0 models the lossless fabric
    of the paper's evaluation (packet losses are explicitly left as future
    work there), and the failure-injection tests raise it.
    """

    a: Endpoint
    b: Endpoint
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    propagation_s: float = DEFAULT_PROPAGATION_S
    loss_rate: float = 0.0
    name: str = ""
    _counters: dict[str, DirectionCounters] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise TopologyError("link bandwidth must be positive")
        if self.propagation_s < 0:
            raise TopologyError("link propagation delay must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise TopologyError("link loss_rate must lie in [0, 1)")
        if self.a.device == self.b.device:
            raise TopologyError(f"link endpoints must differ (got {self.a.device!r} twice)")
        if not self.name:
            self.name = f"{self.a.device}:{self.a.port}<->{self.b.device}:{self.b.port}"
        self._counters = {self.a.device: DirectionCounters(), self.b.device: DirectionCounters()}

    def other_end(self, device: str) -> Endpoint:
        """The endpoint opposite to ``device``."""
        if device == self.a.device:
            return self.b
        if device == self.b.device:
            return self.a
        raise TopologyError(f"device {device!r} is not attached to link {self.name!r}")

    def port_of(self, device: str) -> int:
        """The port number ``device`` uses on this link."""
        if device == self.a.device:
            return self.a.port
        if device == self.b.device:
            return self.b.port
        raise TopologyError(f"device {device!r} is not attached to link {self.name!r}")

    def transmission_delay(self, nbytes: int) -> float:
        """Store-and-forward latency for a packet of ``nbytes`` bytes."""
        return self.propagation_s + nbytes / self.bandwidth_bps

    def record_transmission(self, from_device: str, nbytes: int) -> None:
        """Account a packet sent by ``from_device`` over this link."""
        if from_device not in self._counters:
            raise TopologyError(
                f"device {from_device!r} is not attached to link {self.name!r}"
            )
        self._counters[from_device].record(nbytes)

    def counters(self, from_device: str) -> DirectionCounters:
        """Counters for the direction whose sender is ``from_device``."""
        if from_device not in self._counters:
            raise TopologyError(
                f"device {from_device!r} is not attached to link {self.name!r}"
            )
        return self._counters[from_device]

    def total_bytes(self) -> int:
        """Bytes carried in both directions."""
        return sum(c.bytes for c in self._counters.values())

    def total_packets(self) -> int:
        """Packets carried in both directions."""
        return sum(c.packets for c in self._counters.values())
