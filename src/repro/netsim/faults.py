"""Deterministic fault injection: crashes, link flaps and stragglers.

The paper's evaluation assumes a healthy fabric ("we do not address the
issue of packet losses, which we leave as future work"); PR 1 added loss,
and this module adds the remaining failure axis — *churn*. A
:class:`FaultPlan` is a declarative, fully deterministic schedule of fault
events; a :class:`FaultInjector` arms the plan on a simulator's event
scheduler and enforces it on the data path:

* **switch crash / restart** — a crashed switch stops forwarding and, like
  real ASIC power loss, loses its volatile state: steering and forwarding
  tables are cleared and every in-switch aggregation tree (partial
  registers, spillover, reliability windows) is wiped. A restarted switch
  stays blank until the control plane reconfigures it.
* **host crash / restart** — a crashed host neither sends (its injections
  die on the NIC) nor receives.
* **link down / up / flap** — packets transmitted onto a downed link are
  destroyed at the sender's NIC.
* **straggler slowdown** — a per-link latency multiplier: bandwidth is
  divided and propagation multiplied by ``factor`` for the fault window.
  The simulator reads link attributes live on every transmission, so the
  mutation needs no wrapper and costs nothing per packet.

Every packet destroyed by a fault is *counted*, never silently dropped:
it lands in ``TrafficStats.fault_drops`` and — when the runtime sanitizer
is installed — in the conservation ledger's ``faulted`` bucket, so
``REPRO_SANITIZE=1`` churn runs still balance exactly.

Install order matters and is asserted by construction: the sanitizer (if
any) wraps the simulator at construction time, the injector wraps it
afterwards, so the fault gate is the *outermost* layer. A gated packet is
accounted as faulted and the inner (sanitizer, then real) paths never see
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.checks.registry import fastpath
from repro.core.errors import SimulationError
from repro.netsim.devices import Host, SwitchDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import NetworkSimulator

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "install_faults",
    "HOST_CRASH",
    "HOST_RESTART",
    "LINK_DOWN",
    "LINK_UP",
    "SLOWDOWN_END",
    "SLOWDOWN_START",
    "SWITCH_CRASH",
    "SWITCH_RESTART",
]

#: Fault kinds. Plain strings (not an enum) so plans serialize trivially
#: into the deterministic experiment reports.
SWITCH_CRASH = "switch-crash"
SWITCH_RESTART = "switch-restart"
HOST_CRASH = "host-crash"
HOST_RESTART = "host-restart"
LINK_DOWN = "link-down"
LINK_UP = "link-up"
SLOWDOWN_START = "slowdown-start"
SLOWDOWN_END = "slowdown-end"

_DEVICE_KINDS = (SWITCH_CRASH, SWITCH_RESTART, HOST_CRASH, HOST_RESTART)
_LINK_KINDS = (LINK_DOWN, LINK_UP, SLOWDOWN_START, SLOWDOWN_END)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault. Ordered by ``(time, kind, target)``.

    ``target`` is a device name for device faults and an ``(a, b)`` device
    pair (resolved against the topology at install time) for link faults.
    """

    time: float
    kind: str
    target: str | tuple[str, str]
    #: Latency multiplier, only meaningful for :data:`SLOWDOWN_START`.
    factor: float = 1.0

    def describe(self) -> str:
        """Stable one-line rendering for logs and reports."""
        target = (
            self.target if isinstance(self.target, str) else "<->".join(self.target)
        )
        if self.kind == SLOWDOWN_START:
            return f"t={self.time:.6f} {self.kind} {target} x{self.factor:g}"
        return f"t={self.time:.6f} {self.kind} {target}"


@dataclass
class FaultPlan:
    """A deterministic schedule of fault events.

    Built either explicitly through the fluent ``switch_crash`` /
    ``link_flap`` / ... helpers or randomly-but-seeded through
    :meth:`random_flaps`. The plan is inert data; arming it on a simulator
    is the :class:`FaultInjector`'s job.
    """

    events: list[FaultEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Builders (each returns ``self`` for chaining)
    # ------------------------------------------------------------------ #
    def _add(self, event: FaultEvent) -> "FaultPlan":
        if event.time < 0:
            raise SimulationError(f"fault time must be non-negative (got {event.time})")
        self.events.append(event)
        return self

    def switch_crash(self, time: float, switch: str) -> "FaultPlan":
        """Crash ``switch`` at ``time`` (volatile state is wiped)."""
        return self._add(FaultEvent(time, SWITCH_CRASH, switch))

    def switch_restart(self, time: float, switch: str) -> "FaultPlan":
        """Restart a crashed ``switch`` at ``time`` (it comes up blank)."""
        return self._add(FaultEvent(time, SWITCH_RESTART, switch))

    def host_crash(self, time: float, host: str) -> "FaultPlan":
        """Crash the agent on ``host`` at ``time``."""
        return self._add(FaultEvent(time, HOST_CRASH, host))

    def host_restart(self, time: float, host: str) -> "FaultPlan":
        """Restart the agent on ``host`` at ``time``."""
        return self._add(FaultEvent(time, HOST_RESTART, host))

    def link_down(self, time: float, a: str, b: str) -> "FaultPlan":
        """Take the ``a``-``b`` link down at ``time`` (both directions)."""
        return self._add(FaultEvent(time, LINK_DOWN, (a, b)))

    def link_up(self, time: float, a: str, b: str) -> "FaultPlan":
        """Bring the ``a``-``b`` link back up at ``time``."""
        return self._add(FaultEvent(time, LINK_UP, (a, b)))

    def link_flap(self, time: float, a: str, b: str, duration: float) -> "FaultPlan":
        """Down the ``a``-``b`` link for ``duration`` seconds."""
        if duration <= 0:
            raise SimulationError(f"flap duration must be positive (got {duration})")
        self.link_down(time, a, b)
        return self.link_up(time + duration, a, b)

    def slowdown(
        self, time: float, a: str, b: str, factor: float, duration: float | None = None
    ) -> "FaultPlan":
        """Multiply the ``a``-``b`` link's latency by ``factor``.

        Bandwidth is divided and propagation multiplied by ``factor`` for
        ``duration`` seconds (or for the rest of the run when ``None``).
        """
        if factor <= 1.0:
            raise SimulationError(f"slowdown factor must exceed 1 (got {factor})")
        self._add(FaultEvent(time, SLOWDOWN_START, (a, b), factor=factor))
        if duration is not None:
            if duration <= 0:
                raise SimulationError(
                    f"slowdown duration must be positive (got {duration})"
                )
            self._add(FaultEvent(time + duration, SLOWDOWN_END, (a, b)))
        return self

    @classmethod
    def random_flaps(
        cls,
        links: Iterable[tuple[str, str]],
        *,
        seed: int,
        count: int,
        start: float,
        window: float,
        duration: float,
    ) -> "FaultPlan":
        """A seeded plan of ``count`` flaps across ``links``.

        Flap start times are drawn uniformly from ``[start, start+window)``
        and each flap downs one (seeded-choice) link for ``duration``
        seconds. The same arguments always produce the same plan.
        """
        pool = sorted(links)
        if not pool:
            raise SimulationError("random_flaps needs at least one candidate link")
        rng = random.Random(seed)
        plan = cls()
        for _ in range(count):
            a, b = pool[rng.randrange(len(pool))]
            at = start + rng.random() * window
            plan.link_flap(at, a, b, duration)
        return plan

    def sorted_events(self) -> list[FaultEvent]:
        """The plan's events in deterministic application order."""
        return sorted(self.events)

    def crash_targets(self) -> list[str]:
        """Names of every device the plan ever crashes, sorted."""
        return sorted(
            {
                e.target
                for e in self.events
                if e.kind in (SWITCH_CRASH, HOST_CRASH) and isinstance(e.target, str)
            }
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` on one simulator and enforces it.

    The injector keeps the authoritative up/down state (``is_down``), a
    deterministic application log (``log``), and a list of ``observers``
    called synchronously after each fault is applied (the failover
    manager's detection hook; heartbeat-driven managers may instead poll
    ``is_down``).
    """

    def __init__(self, sim: "NetworkSimulator", plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self.down_devices: set[str] = set()
        self.down_links: set[str] = set()
        #: (sim time, event description) per applied fault, in order.
        self.log: list[tuple[float, str]] = []
        self.observers: list[Callable[[FaultEvent], None]] = []
        #: link name -> (original bandwidth, original propagation), recorded
        #: the first time a slowdown touches the link so SLOWDOWN_END (and
        #: overlapping slowdowns) restore the true baseline.
        self._link_baseline: dict[str, tuple[float, float]] = {}
        self._installed = False
        self._validate_plan()

    def _validate_plan(self) -> None:
        topology = self.sim.topology
        for event in self.plan.events:
            if event.kind in _DEVICE_KINDS:
                if not isinstance(event.target, str):
                    raise SimulationError(
                        f"device fault {event.kind!r} needs a device name target"
                    )
                device = topology.get(event.target)  # raises TopologyError
                if event.kind in (SWITCH_CRASH, SWITCH_RESTART):
                    if not isinstance(device, SwitchDevice):
                        raise SimulationError(
                            f"{event.kind} target {event.target!r} is not a switch"
                        )
                elif not isinstance(device, Host):
                    raise SimulationError(
                        f"{event.kind} target {event.target!r} is not a host"
                    )
            elif event.kind in _LINK_KINDS:
                if isinstance(event.target, str):
                    raise SimulationError(
                        f"link fault {event.kind!r} needs an (a, b) device pair"
                    )
                topology.link_between(*event.target)  # raises TopologyError
            else:
                raise SimulationError(f"unknown fault kind {event.kind!r}")

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install(self) -> "FaultInjector":
        """Wrap the data path and schedule every planned fault."""
        if self._installed:
            return self
        sim = self.sim
        sim._transmit = self._compile_transmit_gate()
        for name in self.plan.crash_targets():
            self._wrap_device(sim.topology.get(name))
        # The compiled per-link sinks captured the pre-fault bound methods;
        # rebuilding makes them re-capture the gate and deliver wrappers.
        sim._build_port_maps()
        for event in self.plan.sorted_events():
            sim.scheduler.push_at(event.time, self._apply, (event,))
        sim.fault_injector = self
        self._installed = True
        return self

    @fastpath("fault-gate", oracle="tests/netsim/test_fault_churn.py")
    def _compile_transmit_gate(self) -> Any:
        """Compile the outermost ``_transmit`` wrapper.

        The gate destroys (and accounts) packets leaving a crashed device
        or entering a downed link, and passes everything else through to
        the inner transmit path unchanged. All lookups are pre-bound; the
        healthy-path cost is two set probes and one dict probe per hop.
        The twin-path oracle (``tests/netsim/test_fault_churn.py``) holds
        that a run with an *empty* plan is byte-identical to an uninstalled
        run, and that every gated packet is conserved in ``fault_drops`` /
        the sanitizer's ``faulted`` bucket.
        """
        inner_transmit = self.sim._transmit
        down_devices = self.down_devices
        down_links = self.down_links
        port_links = self.sim._port_links
        record_fault_drop = self.sim.stats.record_fault_drop
        sanitizer = self.sim.sanitizer
        ledger_faulted = sanitizer.ledger.faulted if sanitizer is not None else None

        def transmit(from_device: str, egress_port: int, packet: Any, nbytes: int) -> None:
            if from_device in down_devices:
                record_fault_drop(from_device)
                if ledger_faulted is not None:
                    cls = type(packet).__name__
                    ledger_faulted[cls] = ledger_faulted.get(cls, 0) + 1
                return
            if down_links:
                link = port_links[from_device].get(egress_port)
                if link is not None and link.name in down_links:
                    record_fault_drop(link.name)
                    if ledger_faulted is not None:
                        cls = type(packet).__name__
                        ledger_faulted[cls] = ledger_faulted.get(cls, 0) + 1
                    return
            inner_transmit(from_device, egress_port, packet, nbytes)

        return transmit

    def _wrap_device(self, device: Any) -> None:
        """Wrap the deliver path of a crash-target device.

        Needed for packets already in flight *towards* the device when it
        crashes (the sender-side gate cannot see those).
        """
        down_devices = self.down_devices
        record_fault_drop = self.sim.stats.record_fault_drop
        sanitizer = self.sim.sanitizer
        ledger_faulted = sanitizer.ledger.faulted if sanitizer is not None else None
        name = device.name

        def account(packet: Any) -> None:
            record_fault_drop(name)
            if ledger_faulted is not None:
                cls = type(packet).__name__
                ledger_faulted[cls] = ledger_faulted.get(cls, 0) + 1

        if isinstance(device, Host):
            inner_deliver = device.deliver

            def deliver(packet: Any, nbytes: int) -> None:
                if name in down_devices:
                    account(packet)
                    return
                inner_deliver(packet, nbytes)

            device.deliver = deliver
            return

        inner_switch_deliver = device.deliver

        def switch_deliver(
            packet: Any, ingress_port: int, nbytes: int
        ) -> list[tuple[int, Any]]:
            if name in down_devices:
                account(packet)
                return []
            return inner_switch_deliver(packet, ingress_port, nbytes)

        device.deliver = switch_deliver

    # ------------------------------------------------------------------ #
    # Fault application
    # ------------------------------------------------------------------ #
    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == SWITCH_CRASH:
            self.down_devices.add(event.target)
            self._wipe_switch(self.sim.topology.get(event.target))
        elif kind == HOST_CRASH:
            self.down_devices.add(event.target)
        elif kind in (SWITCH_RESTART, HOST_RESTART):
            self.down_devices.discard(event.target)
        elif kind == LINK_DOWN:
            self.down_links.add(self._link(event).name)
        elif kind == LINK_UP:
            self.down_links.discard(self._link(event).name)
        elif kind == SLOWDOWN_START:
            link = self._link(event)
            baseline = self._link_baseline.setdefault(
                link.name, (link.bandwidth_bps, link.propagation_s)
            )
            link.bandwidth_bps = baseline[0] / event.factor
            link.propagation_s = baseline[1] * event.factor
        elif kind == SLOWDOWN_END:
            link = self._link(event)
            baseline = self._link_baseline.get(link.name)
            if baseline is not None:
                link.bandwidth_bps, link.propagation_s = baseline
        self.log.append((self.sim.now, event.describe()))
        for observer in self.observers:
            observer(event)

    def _link(self, event: FaultEvent) -> Any:
        assert isinstance(event.target, tuple)
        return self.sim.topology.link_between(*event.target)

    def _wipe_switch(self, device: SwitchDevice) -> None:
        """Volatile-state loss on crash: tables, caches and extern trees."""
        engine = device.switch.externs.get("daiet")
        if engine is not None:
            engine._trees.clear()
        device.daiet_table.clear()
        device.forwarding_table.clear()
        device._fast_cache.clear()
        device._fwd_cache.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_down(self, name: str) -> bool:
        """True while device ``name`` is crashed."""
        return name in self.down_devices

    def down_switch_names(self) -> list[str]:
        """Sorted names of currently crashed switches."""
        return sorted(
            name
            for name in self.down_devices
            if isinstance(self.sim.topology.get(name), SwitchDevice)
        )


def install_faults(sim: "NetworkSimulator", plan: FaultPlan) -> FaultInjector:
    """Create and install a :class:`FaultInjector` for ``plan`` on ``sim``."""
    return FaultInjector(sim, plan).install()
