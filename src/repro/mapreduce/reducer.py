"""Reduce-task execution and its processing-time model.

The reducer receives intermediate pairs either as sorted runs (one per mapper,
as in the original TCP shuffle) or as an unsorted stream (the DAIET and UDP
paths, because in-network aggregation cannot preserve ordering). ``finish()``
does the real work in-process — merging or sorting, grouping and applying the
user reduce function — and reports the reduce time of Figure 3.

The reported ``reduce_seconds`` comes from a **simulated cost model**, not a
wall-clock timer: the model charges the comparisons of the sort/merge, the
per-pair grouping walk and the per-key reduce call at constants calibrated
against CPython wall-clock runs, so the figure3 reduce-time row is
bit-reproducible under a fixed seed (the measured wall time jittered with
machine load). The actual wall time is still measured and reported separately
as ``reduce_wall_seconds`` for anyone comparing the model against reality.
"""

from __future__ import annotations

import heapq
import time
from math import log2
from operator import itemgetter
from typing import Any, Sequence

from repro.core.errors import JobError
from repro.mapreduce.job import JobSpec, ReducerMetrics

#: Simulated seconds per comparison of the in-memory sort (C timsort).
SIM_SORT_SECONDS_PER_COMPARISON = 6e-8

#: Simulated seconds per pair streamed through the k-way ``heapq.merge``
#: (charged per log2(k) to model the per-item heap sift).
SIM_MERGE_SECONDS_PER_PAIR = 2.5e-7

#: Simulated seconds per pair of a single-run linear scan (no merge heap).
SIM_SCAN_SECONDS_PER_PAIR = 1.2e-7

#: Simulated seconds per pair of the grouping walk.
SIM_GROUP_SECONDS_PER_PAIR = 1.2e-7

#: Simulated seconds per output key (one user reduce-function call).
SIM_REDUCE_SECONDS_PER_KEY = 2e-7


def simulated_reduce_seconds(
    sorted_run_sizes: Sequence[int],
    unsorted_pairs: int,
    output_keys: int,
) -> float:
    """Deterministic processing-time model of one reduce task.

    Charges: an n·log2(n) comparison sort when an unsorted buffer exists
    (the DAIET/UDP paths), a per-pair·log2(k) streaming cost for the k-way
    merge of sorted runs (the TCP path), a linear scan when only one run
    remains, plus the per-pair grouping walk and one reduce call per key.
    """
    total = sum(sorted_run_sizes) + unsorted_pairs
    cost = 0.0
    runs = len(sorted_run_sizes)
    if unsorted_pairs:
        cost += (
            unsorted_pairs
            * log2(max(unsorted_pairs, 2))
            * SIM_SORT_SECONDS_PER_COMPARISON
        )
        runs += 1
    if runs > 1:
        cost += total * log2(runs) * SIM_MERGE_SECONDS_PER_PAIR
    elif runs == 1:
        cost += total * SIM_SCAN_SECONDS_PER_PAIR
    cost += total * SIM_GROUP_SECONDS_PER_PAIR
    cost += output_keys * SIM_REDUCE_SECONDS_PER_KEY
    return cost


class ReduceTask:
    """One reduce task bound to a host of the simulated cluster."""

    def __init__(self, reducer_id: int, host: str, spec: JobSpec) -> None:
        if reducer_id < 0:
            raise JobError("reducer_id must be non-negative")
        self.reducer_id = reducer_id
        self.host = host
        self.spec = spec
        self.metrics = ReducerMetrics(reducer_id=reducer_id, host=host)
        self._sorted_runs: list[list[tuple[str, int]]] = []
        self._unsorted: list[tuple[str, int]] = []
        self._finished = False
        self.output: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Input collection
    # ------------------------------------------------------------------ #
    def add_sorted_run(self, pairs: list[tuple[str, int]], from_network: bool = True) -> None:
        """Add one mapper's pre-sorted partition (original shuffle path)."""
        self._check_open()
        if pairs:
            self._sorted_runs.append(list(pairs))
        self._account_pairs(len(pairs), from_network)

    def add_unsorted_pairs(self, pairs: list[tuple[str, int]], from_network: bool = True) -> None:
        """Add unordered pairs (DAIET flushes or the UDP baseline)."""
        self._check_open()
        self._unsorted.extend(pairs)
        self._account_pairs(len(pairs), from_network)

    def _account_pairs(self, count: int, from_network: bool) -> None:
        if from_network:
            self.metrics.pairs_received += count
        else:
            self.metrics.local_pairs += count

    def _check_open(self) -> None:
        if self._finished:
            raise JobError(f"reduce task {self.reducer_id} already finished")

    @property
    def pending_pairs(self) -> int:
        """Number of pairs buffered and not yet reduced."""
        return sum(len(run) for run in self._sorted_runs) + len(self._unsorted)

    # ------------------------------------------------------------------ #
    # Reduce phase
    # ------------------------------------------------------------------ #
    def finish(self) -> dict[str, Any]:
        """Sort/merge the buffered pairs, apply the reduce function, cost it."""
        self._check_open()
        start = time.perf_counter()
        runs = [run for run in self._sorted_runs if run]
        run_sizes = [len(run) for run in runs]
        unsorted_pairs = len(self._unsorted)
        if self._unsorted:
            # DAIET delivers unordered results: the reducer must perform the
            # full sort itself (Section 4: "the intermediate results must be
            # sorted at the reducer rather than at the mapper").
            runs.append(sorted(self._unsorted))
        if len(runs) == 1:
            merged = iter(runs[0])
        else:
            merged = heapq.merge(*runs, key=itemgetter(0))

        output: dict[str, Any] = {}
        current_key: str | None = None
        current_values: list[int] = []
        for key, value in merged:
            if key != current_key:
                if current_key is not None:
                    output[current_key] = self.spec.reduce_function(current_key, current_values)
                current_key = key
                current_values = [value]
            else:
                current_values.append(value)
        if current_key is not None:
            output[current_key] = self.spec.reduce_function(current_key, current_values)

        self.metrics.reduce_wall_seconds = time.perf_counter() - start
        self.metrics.reduce_seconds = simulated_reduce_seconds(
            run_sizes, unsorted_pairs, len(output)
        )
        self.metrics.output_keys = len(output)
        self.output = output
        self._finished = True
        return output
