"""Reduce-task execution and its processing-time model.

The reducer receives intermediate pairs either as sorted runs (one per mapper,
as in the original TCP shuffle) or as an unsorted stream (the DAIET and UDP
paths, because in-network aggregation cannot preserve ordering). ``finish()``
does the real work in-process — merging or sorting, grouping and applying the
user reduce function — and measures the wall-clock time spent, which is the
"reduce time" metric of Figure 3.
"""

from __future__ import annotations

import heapq
import time
from operator import itemgetter
from typing import Any

from repro.core.errors import JobError
from repro.mapreduce.job import JobSpec, ReducerMetrics


class ReduceTask:
    """One reduce task bound to a host of the simulated cluster."""

    def __init__(self, reducer_id: int, host: str, spec: JobSpec) -> None:
        if reducer_id < 0:
            raise JobError("reducer_id must be non-negative")
        self.reducer_id = reducer_id
        self.host = host
        self.spec = spec
        self.metrics = ReducerMetrics(reducer_id=reducer_id, host=host)
        self._sorted_runs: list[list[tuple[str, int]]] = []
        self._unsorted: list[tuple[str, int]] = []
        self._finished = False
        self.output: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Input collection
    # ------------------------------------------------------------------ #
    def add_sorted_run(self, pairs: list[tuple[str, int]], from_network: bool = True) -> None:
        """Add one mapper's pre-sorted partition (original shuffle path)."""
        self._check_open()
        if pairs:
            self._sorted_runs.append(list(pairs))
        self._account_pairs(len(pairs), from_network)

    def add_unsorted_pairs(self, pairs: list[tuple[str, int]], from_network: bool = True) -> None:
        """Add unordered pairs (DAIET flushes or the UDP baseline)."""
        self._check_open()
        self._unsorted.extend(pairs)
        self._account_pairs(len(pairs), from_network)

    def _account_pairs(self, count: int, from_network: bool) -> None:
        if from_network:
            self.metrics.pairs_received += count
        else:
            self.metrics.local_pairs += count

    def _check_open(self) -> None:
        if self._finished:
            raise JobError(f"reduce task {self.reducer_id} already finished")

    @property
    def pending_pairs(self) -> int:
        """Number of pairs buffered and not yet reduced."""
        return sum(len(run) for run in self._sorted_runs) + len(self._unsorted)

    # ------------------------------------------------------------------ #
    # Reduce phase
    # ------------------------------------------------------------------ #
    def finish(self) -> dict[str, Any]:
        """Sort/merge the buffered pairs, apply the reduce function, time it."""
        self._check_open()
        start = time.perf_counter()
        runs = [run for run in self._sorted_runs if run]
        if self._unsorted:
            # DAIET delivers unordered results: the reducer must perform the
            # full sort itself (Section 4: "the intermediate results must be
            # sorted at the reducer rather than at the mapper").
            runs.append(sorted(self._unsorted))
        if len(runs) == 1:
            merged = iter(runs[0])
        else:
            merged = heapq.merge(*runs, key=itemgetter(0))

        output: dict[str, Any] = {}
        current_key: str | None = None
        current_values: list[int] = []
        for key, value in merged:
            if key != current_key:
                if current_key is not None:
                    output[current_key] = self.spec.reduce_function(current_key, current_values)
                current_key = key
                current_values = [value]
            else:
                current_values.append(value)
        if current_key is not None:
            output[current_key] = self.spec.reduce_function(current_key, current_values)

        elapsed = time.perf_counter() - start
        self.metrics.reduce_seconds = elapsed
        self.metrics.output_keys = len(output)
        self.output = output
        self._finished = True
        return output
