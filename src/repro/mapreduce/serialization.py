"""Fixed-size serialization of intermediate key-value pairs.

Section 4: "we use a fixed-size representation for the pairs, so that it is
easy to calculate the offsets of pairs in the file and extract a number of
complete pairs" — the map output is written to the local spill file in exactly
the format that later goes on the wire, so packetization never has to
deserialize records. This module implements that representation (16-byte
padded keys, 4-byte big-endian integer values by default) plus helpers to
compute serialized sizes, which the baselines use to account bytes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.config import DaietConfig
from repro.core.errors import PacketFormatError


def serialized_pair_bytes(config: DaietConfig | None = None) -> int:
    """Size of one serialized pair under the fixed-size representation."""
    config = config or DaietConfig()
    return config.pair_bytes


def serialized_size(num_pairs: int, config: DaietConfig | None = None) -> int:
    """Size of ``num_pairs`` serialized pairs."""
    if num_pairs < 0:
        raise PacketFormatError("num_pairs must be non-negative")
    return num_pairs * serialized_pair_bytes(config)


def encode_pair(key: str, value: int, config: DaietConfig | None = None) -> bytes:
    """Serialize a single pair with key padding and a fixed-width value."""
    config = config or DaietConfig()
    key_bytes = key.encode()
    if len(key_bytes) > config.key_width:
        raise PacketFormatError(
            f"key {key!r} is {len(key_bytes)} B, exceeding the fixed key width "
            f"of {config.key_width} B"
        )
    try:
        value_bytes = value.to_bytes(config.value_width, "big", signed=True)
    except OverflowError as exc:
        raise PacketFormatError(
            f"value {value} does not fit in {config.value_width} bytes"
        ) from exc
    return key_bytes.ljust(config.key_width, b"\x00") + value_bytes


def encode_pairs(pairs: Iterable[tuple[str, int]], config: DaietConfig | None = None) -> bytes:
    """Serialize a sequence of pairs into one spill-file blob."""
    config = config or DaietConfig()
    return b"".join(encode_pair(key, value, config) for key, value in pairs)


def decode_pairs(data: bytes, config: DaietConfig | None = None) -> list[tuple[str, int]]:
    """Deserialize a spill-file blob back into pairs."""
    config = config or DaietConfig()
    pair_bytes = config.pair_bytes
    if len(data) % pair_bytes != 0:
        raise PacketFormatError(
            f"blob of {len(data)} B is not a multiple of the {pair_bytes} B pair size"
        )
    pairs: list[tuple[str, int]] = []
    for offset in range(0, len(data), pair_bytes):
        key_bytes = data[offset : offset + config.key_width].rstrip(b"\x00")
        value_bytes = data[offset + config.key_width : offset + pair_bytes]
        pairs.append((key_bytes.decode(), int.from_bytes(value_bytes, "big", signed=True)))
    return pairs


def iter_complete_pairs(
    pairs: Sequence[tuple[str, int]],
    pairs_per_chunk: int,
) -> Iterator[Sequence[tuple[str, int]]]:
    """Yield chunks of at most ``pairs_per_chunk`` complete pairs.

    This mirrors how the DAIET sender walks the spill file: because records are
    fixed size, it can always cut the stream at a pair boundary and never emits
    a partial pair.
    """
    if pairs_per_chunk <= 0:
        raise PacketFormatError("pairs_per_chunk must be positive")
    for start in range(0, len(pairs), pairs_per_chunk):
        yield pairs[start : start + pairs_per_chunk]


class SpillFile:
    """An in-memory stand-in for a mapper's local spill file.

    Records are appended in serialized form; readers can extract any number of
    complete pairs without deserializing the rest, exactly as the paper's
    modified MapReduce does when packetizing.
    """

    def __init__(self, config: DaietConfig | None = None) -> None:
        self.config = config or DaietConfig()
        self._buffer = bytearray()
        self.pairs_written = 0

    def append(self, key: str, value: int) -> None:
        """Append one pair to the spill file."""
        self._buffer.extend(encode_pair(key, value, self.config))
        self.pairs_written += 1

    def extend(self, pairs: Iterable[tuple[str, int]]) -> None:
        """Append many pairs."""
        for key, value in pairs:
            self.append(key, value)

    def size_bytes(self) -> int:
        """Current serialized size."""
        return len(self._buffer)

    def read_pairs(self, start_pair: int = 0, count: int | None = None) -> list[tuple[str, int]]:
        """Read ``count`` complete pairs starting at pair index ``start_pair``."""
        pair_bytes = self.config.pair_bytes
        start = start_pair * pair_bytes
        end = len(self._buffer) if count is None else start + count * pair_bytes
        return decode_pairs(bytes(self._buffer[start:end]), self.config)

    def all_pairs(self) -> list[tuple[str, int]]:
        """Every pair in the file."""
        return self.read_pairs()
