"""Map-task execution.

A map task applies the user map function to its input split, partitions the
emitted pairs among the reducers and stores each partition in a spill file
using the fixed-size serialization (so the shuffle can packetize without
deserializing). For the TCP baseline the per-partition output is additionally
sorted by key, as the original MapReduce does before serving it to reducers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import JobError
from repro.mapreduce.job import JobSpec
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.serialization import SpillFile


@dataclass
class MapOutput:
    """The materialized output of one map task."""

    mapper_id: int
    host: str
    partitions: dict[int, list[tuple[str, int]]] = field(default_factory=dict)
    pairs_emitted: int = 0
    records_processed: int = 0

    def partition(self, reducer_id: int) -> list[tuple[str, int]]:
        """Pairs destined to ``reducer_id`` (possibly empty)."""
        return self.partitions.get(reducer_id, [])

    def sorted_partition(self, reducer_id: int) -> list[tuple[str, int]]:
        """The partition sorted by key (mapper-side sort of the TCP baseline)."""
        return sorted(self.partition(reducer_id))

    def serialized_bytes(self, reducer_id: int, pair_bytes: int) -> int:
        """Size of the partition under the fixed-size representation."""
        return len(self.partition(reducer_id)) * pair_bytes

    def total_bytes(self, pair_bytes: int) -> int:
        """Serialized size of the whole map output."""
        return self.pairs_emitted * pair_bytes


class MapTask:
    """One map task bound to a host of the simulated cluster."""

    def __init__(
        self,
        mapper_id: int,
        host: str,
        spec: JobSpec,
        partitioner: HashPartitioner | None = None,
    ) -> None:
        if mapper_id < 0:
            raise JobError("mapper_id must be non-negative")
        self.mapper_id = mapper_id
        self.host = host
        self.spec = spec
        self.partitioner = partitioner or HashPartitioner(spec.num_reducers)
        self.spill_files: dict[int, SpillFile] = {}

    def run(self, records: Iterable[Any]) -> MapOutput:
        """Execute the map function over the input split."""
        output = MapOutput(mapper_id=self.mapper_id, host=self.host)
        for record in records:
            output.records_processed += 1
            for key, value in self.spec.map_function(record):
                reducer_id = self.partitioner(key)
                output.partitions.setdefault(reducer_id, []).append((key, value))
                output.pairs_emitted += 1
        self._write_spill_files(output)
        return output

    def _write_spill_files(self, output: MapOutput) -> None:
        """Materialize each partition into a fixed-size-record spill file."""
        for reducer_id, pairs in output.partitions.items():
            spill = SpillFile(self.spec.daiet)
            spill.extend(pairs)
            self.spill_files[reducer_id] = spill

    def spill_file(self, reducer_id: int) -> SpillFile:
        """The spill file holding the partition for ``reducer_id``."""
        if reducer_id not in self.spill_files:
            # An empty partition still has an (empty) spill file.
            self.spill_files[reducer_id] = SpillFile(self.spec.daiet)
        return self.spill_files[reducer_id]
