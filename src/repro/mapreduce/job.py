"""Job specification, placement and results for the MapReduce substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.config import DaietConfig
from repro.core.errors import JobError
from repro.core.functions import AggregationFunction, get as get_function

#: A map function turns one input record into zero or more key-value pairs.
MapFunction = Callable[[Any], Iterable[tuple[str, int]]]

#: A reduce function folds all values of one key into the final output value.
ReduceFunction = Callable[[str, list[int]], Any]


@dataclass(frozen=True)
class JobSpec:
    """Static description of a MapReduce job.

    Parameters
    ----------
    name:
        Job name used in logs and results.
    map_function:
        The user map function applied to each input record.
    reduce_function:
        The user reduce function applied to each key's value list.
    aggregation:
        The commutative/associative aggregation function offloadable to the
        network (``"sum"`` for WordCount). This is the function DAIET installs
        on the switches; the job's correctness must not depend on *where* it is
        applied.
    num_mappers / num_reducers:
        Degree of parallelism of the two phases.
    daiet:
        The DAIET wire-format configuration (key width, pairs per packet...).
    """

    name: str
    map_function: MapFunction
    reduce_function: ReduceFunction
    aggregation: str = "sum"
    num_mappers: int = 24
    num_reducers: int = 12
    daiet: DaietConfig = field(default_factory=DaietConfig)

    def __post_init__(self) -> None:
        if self.num_mappers <= 0:
            raise JobError("num_mappers must be positive")
        if self.num_reducers <= 0:
            raise JobError("num_reducers must be positive")

    def aggregation_function(self) -> AggregationFunction:
        """The resolved aggregation function object."""
        return get_function(self.aggregation)


@dataclass(frozen=True)
class TaskPlacement:
    """Where every task runs.

    The paper's testbed co-locates tasks on 12 worker containers (two mappers
    and one reducer each); placements are expressed as host names from the
    simulated topology.
    """

    mapper_hosts: tuple[str, ...]
    reducer_hosts: tuple[str, ...]
    master_host: str = "master"

    def __post_init__(self) -> None:
        if not self.mapper_hosts:
            raise JobError("placement needs at least one mapper host")
        if not self.reducer_hosts:
            raise JobError("placement needs at least one reducer host")
        if len(set(self.reducer_hosts)) != len(self.reducer_hosts):
            raise JobError("each reduce task must run on a distinct host")

    @property
    def num_mappers(self) -> int:
        """Number of map tasks."""
        return len(self.mapper_hosts)

    @property
    def num_reducers(self) -> int:
        """Number of reduce tasks."""
        return len(self.reducer_hosts)

    def mapper_host(self, mapper_id: int) -> str:
        """Host running map task ``mapper_id``."""
        try:
            return self.mapper_hosts[mapper_id]
        except IndexError as exc:
            raise JobError(f"no mapper with id {mapper_id}") from exc

    def reducer_host(self, reducer_id: int) -> str:
        """Host running reduce task ``reducer_id``."""
        try:
            return self.reducer_hosts[reducer_id]
        except IndexError as exc:
            raise JobError(f"no reducer with id {reducer_id}") from exc


@dataclass
class ReducerMetrics:
    """Per-reducer measurements used by Figure 3.

    Attributes mirror what the paper measures at each reducer: the volume of
    intermediate data received over the network, the number of packets that
    carried it, and the wall-clock time the reduce task spent processing it.
    """

    reducer_id: int
    host: str
    payload_bytes_received: int = 0
    wire_bytes_received: int = 0
    packets_received: int = 0
    pairs_received: int = 0
    local_pairs: int = 0
    #: Simulated reduce-phase time (deterministic cost model; see
    #: :func:`repro.mapreduce.reducer.simulated_reduce_seconds`).
    reduce_seconds: float = 0.0
    #: Measured wall-clock time of the same work (jitters with machine load;
    #: kept for calibrating the model, never used in figure rows).
    reduce_wall_seconds: float = 0.0
    output_keys: int = 0

    def snapshot(self) -> dict[str, float]:
        """The metrics as a plain dictionary."""
        return {
            "reducer_id": self.reducer_id,
            "payload_bytes_received": self.payload_bytes_received,
            "wire_bytes_received": self.wire_bytes_received,
            "packets_received": self.packets_received,
            "pairs_received": self.pairs_received,
            "local_pairs": self.local_pairs,
            "reduce_seconds": self.reduce_seconds,
            "reduce_wall_seconds": self.reduce_wall_seconds,
            "output_keys": self.output_keys,
        }


@dataclass
class JobResult:
    """Outcome of one MapReduce run."""

    job_name: str
    shuffle_mode: str
    output: dict[str, Any] = field(default_factory=dict)
    reducer_metrics: dict[int, ReducerMetrics] = field(default_factory=dict)
    map_output_pairs: int = 0
    map_output_bytes: int = 0
    total_packets_sent: int = 0
    simulated_seconds: float = 0.0

    def total_reducer_bytes(self) -> int:
        """Bytes of intermediate data received by all reducers over the network."""
        return sum(m.payload_bytes_received for m in self.reducer_metrics.values())

    def total_reducer_packets(self) -> int:
        """Packets received by all reducers over the network."""
        return sum(m.packets_received for m in self.reducer_metrics.values())

    def total_reduce_seconds(self) -> float:
        """Total reduce-phase processing time across reducers."""
        return sum(m.reduce_seconds for m in self.reducer_metrics.values())

    def per_reducer(self, field_name: str) -> list[float]:
        """A per-reducer list of one metric, ordered by reducer id."""
        return [
            getattr(self.reducer_metrics[rid], field_name)
            for rid in sorted(self.reducer_metrics)
        ]
