"""Job orchestration.

The master assigns input splits to map tasks, runs the map phase, drives the
shuffle transport over the simulated network, and finally runs the reduce
phase, collecting the per-reducer metrics the evaluation reads.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.errors import JobError
from repro.mapreduce.cluster import Cluster, default_placement
from repro.mapreduce.job import JobResult, JobSpec, TaskPlacement
from repro.mapreduce.mapper import MapOutput, MapTask
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.reducer import ReduceTask
from repro.mapreduce.shuffle import ShuffleTransport


class MapReduceMaster:
    """Coordinates one MapReduce job over a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        spec: JobSpec,
        shuffle: ShuffleTransport,
        placement: TaskPlacement | None = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.shuffle = shuffle
        self.placement = placement or default_placement(
            cluster, spec.num_mappers, spec.num_reducers
        )
        if self.placement.num_mappers != spec.num_mappers:
            raise JobError(
                f"placement provides {self.placement.num_mappers} mapper hosts but the "
                f"job declares {spec.num_mappers} map tasks"
            )
        if self.placement.num_reducers != spec.num_reducers:
            raise JobError(
                f"placement provides {self.placement.num_reducers} reducer hosts but "
                f"the job declares {spec.num_reducers} reduce tasks"
            )
        self.partitioner = HashPartitioner(spec.num_reducers)
        self.map_tasks: list[MapTask] = []
        self.reduce_tasks: dict[int, ReduceTask] = {}
        self.map_outputs: list[MapOutput] = []

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, input_splits: Sequence[Iterable[Any]]) -> JobResult:
        """Execute the whole job and return its result and metrics."""
        if len(input_splits) != self.spec.num_mappers:
            raise JobError(
                f"expected {self.spec.num_mappers} input splits, got {len(input_splits)}"
            )
        self._create_tasks()
        self.shuffle.prepare(self.cluster, self.spec, self.placement, self.reduce_tasks)

        # --- Map phase (runs in-process; placement matters only for traffic).
        self.map_outputs = [
            task.run(split) for task, split in zip(self.map_tasks, input_splits)
        ]

        # --- Shuffle phase over the simulated network.
        baseline_received = {
            host: self.cluster.simulator.host(host).counters.packets_received
            for host in self.placement.reducer_hosts
        }
        baseline_bytes = {
            host: self.cluster.simulator.host(host).counters.bytes_received
            for host in self.placement.reducer_hosts
        }
        self.shuffle.transfer(self.map_outputs)
        self.cluster.simulator.run()
        self.shuffle.finalize()

        # --- Reduce phase.
        output: dict[str, Any] = {}
        for reducer_id in sorted(self.reduce_tasks):
            task = self.reduce_tasks[reducer_id]
            partial = task.finish()
            overlap = set(partial) & set(output)
            if overlap:
                raise JobError(
                    f"reducers produced overlapping keys (e.g. {next(iter(overlap))!r}); "
                    "the partitioner is inconsistent"
                )
            output.update(partial)

        return self._build_result(output, baseline_received, baseline_bytes)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _create_tasks(self) -> None:
        self.map_tasks = [
            MapTask(mapper_id=i, host=self.placement.mapper_host(i), spec=self.spec,
                    partitioner=self.partitioner)
            for i in range(self.spec.num_mappers)
        ]
        self.reduce_tasks = {
            i: ReduceTask(reducer_id=i, host=self.placement.reducer_host(i), spec=self.spec)
            for i in range(self.spec.num_reducers)
        }

    def _build_result(
        self,
        output: dict[str, Any],
        baseline_received: dict[str, int],
        baseline_bytes: dict[str, int],
    ) -> JobResult:
        pair_bytes = self.spec.daiet.pair_bytes
        result = JobResult(job_name=self.spec.name, shuffle_mode=self.shuffle.name)
        result.output = output
        result.map_output_pairs = sum(o.pairs_emitted for o in self.map_outputs)
        result.map_output_bytes = result.map_output_pairs * pair_bytes
        result.total_packets_sent = self.shuffle.accounting.packets_sent
        result.simulated_seconds = self.cluster.simulator.now

        for reducer_id, task in self.reduce_tasks.items():
            host = task.host
            counters = self.cluster.simulator.host(host).counters
            task.metrics.packets_received = (
                counters.packets_received - baseline_received[host]
            )
            task.metrics.wire_bytes_received = (
                counters.bytes_received - baseline_bytes[host]
            )
            result.reducer_metrics[reducer_id] = task.metrics
        return result


def run_wordcount_job(
    cluster: Cluster,
    spec: JobSpec,
    shuffle: ShuffleTransport,
    input_splits: Sequence[Iterable[Any]],
    placement: TaskPlacement | None = None,
) -> JobResult:
    """Convenience wrapper: build a master and run the job in one call."""
    master = MapReduceMaster(cluster, spec, shuffle, placement)
    return master.run(input_splits)
