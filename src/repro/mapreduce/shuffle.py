"""Shuffle transports: how map output reaches the reducers.

The paper's evaluation compares three shuffle paths over the same job:

1. the original TCP-based exchange (baseline i, :class:`repro.baselines.
   tcp_shuffle.TcpShuffle`),
2. UDP with the DAIET protocol but no switch aggregation (baseline ii,
   :class:`repro.baselines.udp_shuffle.UdpShuffle`),
3. DAIET with in-network aggregation (:class:`DaietShuffle`, below).

All three implement :class:`ShuffleTransport`, so the
:class:`~repro.mapreduce.master.MapReduceMaster` can run the identical job over
any of them and the benchmark harness can compute the reduction ratios of
Figure 3 from the per-reducer metrics.

Map output destined to a reducer co-located on the same worker host never
crosses the network (it is handed over locally), consistently across all
transports, so comparisons stay fair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.config import DaietConfig
from repro.core.controller import DaietController, InstalledJob
from repro.core.errors import JobError
from repro.core.packet import DaietPacket, DaietPacketType, packetize_pairs
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.job import JobSpec, TaskPlacement
from repro.mapreduce.mapper import MapOutput
from repro.mapreduce.reducer import ReduceTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <-> transport)
    from repro.transport.reliability import HostReliabilityAgent


@dataclass
class ShuffleAccounting:
    """Sender-side accounting shared by every transport."""

    packets_sent: int = 0
    payload_bytes_sent: int = 0
    local_pairs: int = 0
    network_pairs: int = 0


class ShuffleTransport(ABC):
    """Interface of a shuffle path between map and reduce tasks."""

    #: Human-readable transport name, used in results and reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.accounting = ShuffleAccounting()
        self._cluster: Cluster | None = None
        self._spec: JobSpec | None = None
        self._placement: TaskPlacement | None = None
        self._reduce_tasks: dict[int, ReduceTask] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        cluster: Cluster,
        spec: JobSpec,
        placement: TaskPlacement,
        reduce_tasks: dict[int, ReduceTask],
    ) -> None:
        """Install receivers (and any network state) before the map phase."""
        self._cluster = cluster
        self._spec = spec
        self._placement = placement
        self._reduce_tasks = reduce_tasks
        self._prepare()

    @abstractmethod
    def _prepare(self) -> None:
        """Transport-specific preparation."""

    @abstractmethod
    def transfer(self, map_outputs: list[MapOutput]) -> None:
        """Inject the map output into the network (and local hand-offs)."""

    @abstractmethod
    def finalize(self) -> None:
        """Deliver buffered network input to the reduce tasks after the run."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @property
    def cluster(self) -> Cluster:
        if self._cluster is None:
            raise JobError("shuffle transport used before prepare()")
        return self._cluster

    @property
    def spec(self) -> JobSpec:
        if self._spec is None:
            raise JobError("shuffle transport used before prepare()")
        return self._spec

    @property
    def placement(self) -> TaskPlacement:
        if self._placement is None:
            raise JobError("shuffle transport used before prepare()")
        return self._placement

    def reduce_task(self, reducer_id: int) -> ReduceTask:
        """The reduce task with the given id."""
        try:
            return self._reduce_tasks[reducer_id]
        except KeyError as exc:
            raise JobError(f"no reduce task with id {reducer_id}") from exc

    def pairs_by_host(
        self, map_outputs: list[MapOutput], reducer_id: int
    ) -> dict[str, list[tuple[str, int]]]:
        """Group the pairs destined to one reducer by sending mapper host.

        The DAIET host shim combines the output of co-located map tasks into a
        single stream per (host, reducer) pair, terminated by one END packet,
        which is also what keeps the switch's children count host-based.
        """
        grouped: dict[str, list[tuple[str, int]]] = defaultdict(list)
        for output in map_outputs:
            pairs = output.partition(reducer_id)
            if pairs:
                grouped[output.host].extend(pairs)
            else:
                # A mapper with an empty partition still participates in the
                # END protocol, so record the host with no pairs.
                grouped.setdefault(output.host, [])
        return dict(grouped)


@dataclass
class _DaietReducerBuffer:
    """Per-reducer network input buffered by the DAIET shuffle."""

    tree_id: int
    expected_ends: int
    pairs: list[tuple[str, int]] = field(default_factory=list)
    payload_bytes: int = 0
    ends_seen: int = 0
    data_packets: int = 0

    @property
    def done(self) -> bool:
        return self.ends_seen >= self.expected_ends


class DaietShuffle(ShuffleTransport):
    """The paper's shuffle: DAIET packets aggregated inside the switches."""

    name = "daiet"

    def __init__(self, config: DaietConfig | None = None) -> None:
        super().__init__()
        self.config = config or DaietConfig()
        self.controller: DaietController | None = None
        self.job: InstalledJob | None = None
        self._buffers: dict[int, _DaietReducerBuffer] = {}
        self._agents: dict[str, "HostReliabilityAgent"] = {}

    def _agent(self, host: str) -> "HostReliabilityAgent":
        """Reliability endpoint of one worker host (created on first use)."""
        from repro.transport.reliability import HostReliabilityAgent

        if host not in self._agents:
            self._agents[host] = HostReliabilityAgent.from_config(
                self.cluster.simulator, host, self.config
            )
        return self._agents[host]

    def _prepare(self) -> None:
        self.controller = DaietController(self.cluster.topology, self.config)
        mapper_hosts = sorted(set(self.placement.mapper_hosts))
        reducer_hosts = list(self.placement.reducer_hosts)
        self.job = self.controller.install_job(
            mappers=mapper_hosts,
            reducers=reducer_hosts,
            function=self.spec.aggregation,
        )
        for reducer_id, host in enumerate(reducer_hosts):
            tree = self.job.tree_for_reducer(host)
            buffer = _DaietReducerBuffer(
                tree_id=tree.tree_id,
                expected_ends=tree.children_count(host),
            )
            self._buffers[reducer_id] = buffer
            if self.config.reliability:
                self._agent(host).attach_tree(
                    tree.tree_id,
                    children=tree.node(host).children,
                    inner=self._make_receiver(buffer),
                )
            else:
                self.cluster.simulator.host(host).set_receiver(
                    self._make_receiver(buffer)
                )

    @staticmethod
    def _make_receiver(buffer: _DaietReducerBuffer):
        def receive(packet) -> None:
            if not isinstance(packet, DaietPacket) or packet.tree_id != buffer.tree_id:
                return
            buffer.payload_bytes += packet.payload_bytes()
            if packet.packet_type is DaietPacketType.END:
                buffer.ends_seen += 1
                return
            buffer.data_packets += 1
            buffer.pairs.extend(packet.pairs)

        return receive

    def transfer(self, map_outputs: list[MapOutput]) -> None:
        if self.job is None:
            raise JobError("DaietShuffle.transfer() called before prepare()")
        for reducer_id, reducer_host in enumerate(self.placement.reducer_hosts):
            tree = self.job.tree_for_reducer(reducer_host)
            for mapper_host, pairs in self.pairs_by_host(map_outputs, reducer_id).items():
                if mapper_host == reducer_host:
                    # Local partition: handed to the reduce task directly.
                    self.reduce_task(reducer_id).add_unsorted_pairs(pairs, from_network=False)
                    self.accounting.local_pairs += len(pairs)
                    continue
                self.accounting.network_pairs += len(pairs)
                packets = list(
                    packetize_pairs(
                        pairs,
                        tree_id=tree.tree_id,
                        src=mapper_host,
                        dst=reducer_host,
                        config=self.config,
                        include_end=True,
                    )
                )
                if self.config.reliability:
                    channel = self._agent(mapper_host).sender(tree.tree_id)
                    sequenced = [
                        replace(packet, seq=channel.take_seq()) for packet in packets
                    ]
                    channel.send(sequenced)
                    self._agent(reducer_host).arm(tree.tree_id)
                    for packet in sequenced:
                        self.accounting.packets_sent += 1
                        self.accounting.payload_bytes_sent += packet.payload_bytes()
                    continue
                self.cluster.simulator.send_burst(mapper_host, packets)
                for packet in packets:
                    self.accounting.packets_sent += 1
                    self.accounting.payload_bytes_sent += packet.payload_bytes()

    def finalize(self) -> None:
        for reducer_id, buffer in self._buffers.items():
            if not buffer.done:
                raise JobError(
                    f"reducer {reducer_id} finished with {buffer.ends_seen} END "
                    f"packets out of {buffer.expected_ends} expected"
                )
            task = self.reduce_task(reducer_id)
            task.add_unsorted_pairs(buffer.pairs, from_network=True)
            task.metrics.payload_bytes_received += buffer.payload_bytes
