"""Partitioning of intermediate keys across reducers.

The map output is "partitioned among the reducers" (Section 4). The default
hash partitioner uses a salted CRC32 so that it is deterministic across runs
but statistically independent from the in-switch register hash — a correlation
between the two would make register collisions systematically more (or less)
likely than in the paper's setup.
"""

from __future__ import annotations

import zlib

from repro.core.errors import JobError


class HashPartitioner:
    """Deterministic hash partitioner mapping keys to reducer indices."""

    def __init__(self, num_partitions: int, salt: str = "daiet-partition") -> None:
        if num_partitions <= 0:
            raise JobError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.salt = salt

    def partition(self, key: str) -> int:
        """Reducer index responsible for ``key``."""
        data = f"{self.salt}:{key}".encode()
        return zlib.crc32(data) % self.num_partitions

    def __call__(self, key: str) -> int:
        return self.partition(key)

    def split(self, pairs: list[tuple[str, int]]) -> dict[int, list[tuple[str, int]]]:
        """Split a pair list into per-reducer partitions (only non-empty ones)."""
        partitions: dict[int, list[tuple[str, int]]] = {}
        for key, value in pairs:
            index = self.partition(key)
            partitions.setdefault(index, []).append((key, value))
        return partitions


class RangePartitioner:
    """Partition keys by lexicographic range boundaries.

    Provided for completeness (some frameworks shuffle with range partitioning
    to obtain globally sorted output); the DAIET experiments use hashing.
    """

    def __init__(self, boundaries: list[str]) -> None:
        if sorted(boundaries) != list(boundaries):
            raise JobError("range boundaries must be sorted")
        self.boundaries = list(boundaries)
        self.num_partitions = len(boundaries) + 1

    def partition(self, key: str) -> int:
        """Reducer index whose range contains ``key``."""
        for index, boundary in enumerate(self.boundaries):
            if key < boundary:
                return index
        return len(self.boundaries)

    def __call__(self, key: str) -> int:
        return self.partition(key)
