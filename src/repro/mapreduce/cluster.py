"""Simulated MapReduce clusters and task placements.

The paper's testbed runs 12 worker containers (two mappers and one reducer
each) plus one master, all attached to a single bmv2 switch.
:func:`build_cluster` reproduces that shape by default and can also build a
leaf-spine fabric for the multi-level aggregation-tree ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import JobError
from repro.mapreduce.job import TaskPlacement
from repro.netsim.devices import Host
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology, leaf_spine, single_rack


@dataclass
class Cluster:
    """A simulated cluster: topology, simulator and the worker host names."""

    topology: Topology
    simulator: NetworkSimulator
    workers: list[str]
    master_host: str

    def worker(self, index: int) -> str:
        """Name of the ``index``-th worker host."""
        try:
            return self.workers[index]
        except IndexError as exc:
            raise JobError(f"cluster has no worker {index}") from exc


def build_cluster(
    num_workers: int = 12,
    fabric: str = "single_rack",
    spines: int = 2,
    workers_per_leaf: int = 4,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> Cluster:
    """Build a simulated cluster.

    Parameters
    ----------
    num_workers:
        Number of worker hosts (the paper uses 12).
    fabric:
        ``"single_rack"`` (default, one ToR switch — the paper's setup) or
        ``"leaf_spine"`` (used by the tree-depth ablation).
    spines, workers_per_leaf:
        Leaf-spine dimensioning; ignored for the single rack.
    loss_rate:
        Per-direction drop probability applied to every host uplink (the
        lossy-fabric scenario; requires ``DaietConfig(reliability=True)``
        for exact results).
    loss_seed:
        Seed of the simulator's loss random stream.
    """
    if num_workers <= 0:
        raise JobError("num_workers must be positive")
    worker_names = [f"w{i}" for i in range(num_workers)]
    if fabric == "single_rack":
        topology = single_rack(num_hosts=num_workers, host_prefix="w")
        master = topology.add_host("master")
        topology.connect("master", "tor")
    elif fabric == "leaf_spine":
        if workers_per_leaf <= 0:
            raise JobError("workers_per_leaf must be positive")
        num_leaves = -(-num_workers // workers_per_leaf)  # ceil division
        topology = leaf_spine(
            num_leaves=num_leaves,
            num_spines=spines,
            hosts_per_leaf=workers_per_leaf,
            host_prefix="w",
        )
        # Trim host naming to exactly num_workers workers; extra hosts (if the
        # last leaf is not full) simply stay idle.
        master = topology.add_host("master")
        topology.connect("master", "leaf0")
    else:
        raise JobError(f"unknown fabric {fabric!r}")
    if loss_rate:
        for link in topology.links:
            if isinstance(topology.get(link.a.device), Host) or isinstance(
                topology.get(link.b.device), Host
            ):
                link.loss_rate = loss_rate
    topology.validate()
    simulator = NetworkSimulator(topology, SimulatorConfig(loss_seed=loss_seed))
    return Cluster(
        topology=topology,
        simulator=simulator,
        workers=worker_names,
        master_host=master.name,
    )


def default_placement(
    cluster: Cluster,
    num_mappers: int = 24,
    num_reducers: int = 12,
) -> TaskPlacement:
    """The paper's placement: mappers round-robin over workers, one reducer each.

    With 24 mappers and 12 workers every worker runs two map tasks; with 12
    reducers every worker runs one reduce task.
    """
    if num_reducers > len(cluster.workers):
        raise JobError(
            f"cannot place {num_reducers} reducers on {len(cluster.workers)} workers "
            "(one reduce task per host)"
        )
    mapper_hosts = tuple(
        cluster.workers[i % len(cluster.workers)] for i in range(num_mappers)
    )
    reducer_hosts = tuple(cluster.workers[:num_reducers])
    return TaskPlacement(
        mapper_hosts=mapper_hosts,
        reducer_hosts=reducer_hosts,
        master_host=cluster.master_host,
    )
