"""MapReduce substrate with pluggable shuffle transports."""

from repro.mapreduce.cluster import Cluster, build_cluster, default_placement
from repro.mapreduce.job import (
    JobResult,
    JobSpec,
    ReducerMetrics,
    TaskPlacement,
)
from repro.mapreduce.mapper import MapOutput, MapTask
from repro.mapreduce.master import MapReduceMaster, run_wordcount_job
from repro.mapreduce.partitioner import HashPartitioner, RangePartitioner
from repro.mapreduce.reducer import ReduceTask
from repro.mapreduce.serialization import (
    SpillFile,
    decode_pairs,
    encode_pair,
    encode_pairs,
    iter_complete_pairs,
    serialized_pair_bytes,
    serialized_size,
)
from repro.mapreduce.shuffle import DaietShuffle, ShuffleAccounting, ShuffleTransport
from repro.mapreduce.wordcount import (
    Corpus,
    CorpusSpec,
    corpus_for_target_reduction,
    generate_corpus,
    generate_vocabulary,
    make_wordcount_job,
    wordcount_map,
    wordcount_reduce,
)

__all__ = [
    "Cluster",
    "build_cluster",
    "default_placement",
    "JobResult",
    "JobSpec",
    "ReducerMetrics",
    "TaskPlacement",
    "MapOutput",
    "MapTask",
    "MapReduceMaster",
    "run_wordcount_job",
    "HashPartitioner",
    "RangePartitioner",
    "ReduceTask",
    "SpillFile",
    "decode_pairs",
    "encode_pair",
    "encode_pairs",
    "iter_complete_pairs",
    "serialized_pair_bytes",
    "serialized_size",
    "DaietShuffle",
    "ShuffleAccounting",
    "ShuffleTransport",
    "Corpus",
    "CorpusSpec",
    "corpus_for_target_reduction",
    "generate_corpus",
    "generate_vocabulary",
    "make_wordcount_job",
    "wordcount_map",
    "wordcount_reduce",
]
