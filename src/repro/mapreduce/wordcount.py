"""WordCount application and the random-words corpus generator.

The paper's prototype evaluation runs "a WordCount benchmark [...] The input
dataset is a 500 MB file containing random words that are not causing hash
collisions" with words of at most 16 characters. :func:`generate_corpus`
produces an equivalent synthetic corpus, scaled down by default, with knobs for
the word-frequency distribution (uniform or Zipf) and for guaranteeing that no
two words of the same reducer partition collide in the switch register hash.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.aggregation import hash_key
from repro.core.config import DaietConfig
from repro.core.errors import JobError
from repro.mapreduce.job import JobSpec
from repro.mapreduce.partitioner import HashPartitioner

#: Words per generated line of text (the map input records are lines).
WORDS_PER_LINE = 10


def wordcount_map(record: str) -> Iterator[tuple[str, int]]:
    """The WordCount map function: one ``(word, 1)`` pair per occurrence."""
    for word in record.split():
        yield word, 1


def wordcount_reduce(key: str, values: list[int]) -> int:
    """The WordCount reduce function: sum of the occurrence counts."""
    return sum(values)


def make_wordcount_job(
    num_mappers: int = 24,
    num_reducers: int = 12,
    daiet: DaietConfig | None = None,
) -> JobSpec:
    """A ready-to-run WordCount job specification."""
    return JobSpec(
        name="wordcount",
        map_function=wordcount_map,
        reduce_function=wordcount_reduce,
        aggregation="sum",
        num_mappers=num_mappers,
        num_reducers=num_reducers,
        daiet=daiet or DaietConfig(),
    )


@dataclass
class Corpus:
    """A generated corpus: input lines plus the vocabulary that produced them."""

    lines: list[str]
    vocabulary: list[str]
    total_words: int
    seed: int
    distribution: str

    def splits(self, num_splits: int) -> list[list[str]]:
        """Partition the lines into ``num_splits`` round-robin input splits."""
        if num_splits <= 0:
            raise JobError("num_splits must be positive")
        splits: list[list[str]] = [[] for _ in range(num_splits)]
        for i, line in enumerate(self.lines):
            splits[i % num_splits].append(line)
        return splits

    def word_counts(self) -> dict[str, int]:
        """Ground-truth word counts (used to validate job outputs)."""
        counts: dict[str, int] = {}
        for line in self.lines:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        return counts


@dataclass
class CorpusSpec:
    """Parameters of the synthetic corpus generator."""

    total_words: int = 200_000
    vocabulary_size: int = 24_000
    min_word_length: int = 4
    max_word_length: int = 16
    seed: int = 2017
    #: "uniform" draws every word with equal probability; "zipf" applies a
    #: power-law frequency distribution with exponent ``zipf_exponent``.
    distribution: str = "uniform"
    zipf_exponent: float = 1.1
    #: When true, the vocabulary is built so that no two words mapping to the
    #: same reducer partition share a register-hash slot (the paper's dataset
    #: property: "random words that are not causing hash collisions").
    avoid_register_collisions: bool = True
    num_partitions: int = 12
    register_slots: int = field(default_factory=lambda: DaietConfig().register_slots)

    def __post_init__(self) -> None:
        if self.total_words <= 0:
            raise JobError("total_words must be positive")
        if self.vocabulary_size <= 0:
            raise JobError("vocabulary_size must be positive")
        if self.vocabulary_size > self.total_words:
            raise JobError("vocabulary_size cannot exceed total_words")
        if not 1 <= self.min_word_length <= self.max_word_length:
            raise JobError("invalid word length range")
        if self.max_word_length > 16:
            raise JobError(
                "the DAIET prototype serializes 16-byte keys; max_word_length > 16 "
                "would be rejected at packetization time"
            )
        if self.distribution not in ("uniform", "zipf"):
            raise JobError(f"unknown distribution {self.distribution!r}")
        if self.avoid_register_collisions:
            per_partition = self.vocabulary_size / self.num_partitions
            if per_partition > self.register_slots:
                raise JobError(
                    "cannot avoid register collisions: more unique words per "
                    "partition than register slots"
                )


def generate_vocabulary(spec: CorpusSpec) -> list[str]:
    """Generate the vocabulary, optionally avoiding per-partition hash collisions."""
    rng = random.Random(spec.seed)
    partitioner = HashPartitioner(spec.num_partitions)
    used_slots: dict[int, set[int]] = {p: set() for p in range(spec.num_partitions)}
    vocabulary: list[str] = []
    seen: set[str] = set()
    attempts = 0
    max_attempts = spec.vocabulary_size * 200
    while len(vocabulary) < spec.vocabulary_size:
        attempts += 1
        if attempts > max_attempts:
            raise JobError(
                "vocabulary generation did not converge; relax "
                "avoid_register_collisions or enlarge register_slots"
            )
        length = rng.randint(spec.min_word_length, spec.max_word_length)
        word = "".join(rng.choices(string.ascii_lowercase, k=length))
        if word in seen:
            continue
        if spec.avoid_register_collisions:
            partition = partitioner(word)
            slot = hash_key(word, spec.register_slots)
            if slot in used_slots[partition]:
                continue
            used_slots[partition].add(slot)
        seen.add(word)
        vocabulary.append(word)
    return vocabulary


def generate_corpus(spec: CorpusSpec | None = None, **overrides: object) -> Corpus:
    """Generate a synthetic random-words corpus.

    Keyword overrides are applied on top of the default :class:`CorpusSpec`,
    e.g. ``generate_corpus(total_words=50_000, vocabulary_size=6_000)``.
    """
    if spec is None:
        spec = CorpusSpec(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise JobError("pass either a CorpusSpec or keyword overrides, not both")
    vocabulary = generate_vocabulary(spec)
    rng = random.Random(spec.seed + 1)

    if spec.distribution == "zipf":
        weights = [1.0 / (rank**spec.zipf_exponent) for rank in range(1, len(vocabulary) + 1)]
    else:
        weights = None

    words: list[str] = []
    # Guarantee every vocabulary word appears at least once, then fill the rest
    # according to the requested distribution.
    words.extend(vocabulary)
    remaining = spec.total_words - len(vocabulary)
    if remaining > 0:
        words.extend(rng.choices(vocabulary, weights=weights, k=remaining))
    rng.shuffle(words)

    lines = [
        " ".join(words[i : i + WORDS_PER_LINE])
        for i in range(0, len(words), WORDS_PER_LINE)
    ]
    return Corpus(
        lines=lines,
        vocabulary=vocabulary,
        total_words=len(words),
        seed=spec.seed,
        distribution=spec.distribution,
    )


def corpus_for_target_reduction(
    target_reduction: float,
    total_words: int = 200_000,
    num_partitions: int = 12,
    seed: int = 2017,
    **extra: object,
) -> Corpus:
    """Generate a corpus whose ideal traffic-reduction ratio is ``target_reduction``.

    The achievable reduction of WordCount under perfect in-network aggregation
    is ``1 - vocabulary/total_words`` (every occurrence of a word collapses
    into one pair per reducer); this helper inverts that relation.
    """
    if not 0.0 < target_reduction < 1.0:
        raise JobError("target_reduction must lie strictly between 0 and 1")
    vocabulary_size = max(num_partitions, int(round(total_words * (1.0 - target_reduction))))
    spec = CorpusSpec(
        total_words=total_words,
        vocabulary_size=vocabulary_size,
        num_partitions=num_partitions,
        seed=seed,
        **extra,  # type: ignore[arg-type]
    )
    return generate_corpus(spec)
