"""AST-based determinism linter for the simulator core.

The repo's hard product guarantee is byte-identical reports under fixed
seeds. The four things that historically break that class of guarantee in
Python simulators are each a mechanical pattern:

* ``unseeded-random`` — draws from the module-level :mod:`random` RNG (or a
  ``random.Random()`` constructed without a seed). Repo idiom is an
  explicit ``random.Random(seed)`` instance per stream.
* ``wall-clock`` — ``time.time()`` / ``time.perf_counter()`` and friends
  feeding simulation state. Wall-clock reads are only legitimate in the
  allowlisted measurement sites (reducer wall-time metrics, the
  figure_scale throughput timer).
* ``set-iteration`` — iterating a ``set`` literal/constructor (directly or
  via a set-valued local) drives callbacks in hash order, which is stable
  per process but not a contract; repo idiom is ``sorted(...)`` first.
* ``mutable-default`` — a mutable default argument shares state across
  simulator instances, leaking one run's state into the next.

The linter is flow-insensitive and deliberately conservative: it flags only
patterns it can prove from the AST, so a clean tree stays clean without
suppression comments.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.checks.findings import Finding

RULE_UNSEEDED_RANDOM = "unseeded-random"
RULE_WALL_CLOCK = "wall-clock"
RULE_SET_ITERATION = "set-iteration"
RULE_MUTABLE_DEFAULT = "mutable-default"

#: Files (matched by path suffix) where wall-clock reads are the point:
#: they measure host-side wall time and never feed simulation state.
WALL_CLOCK_ALLOWLIST: tuple[str, ...] = (
    "repro/mapreduce/reducer.py",
    "repro/experiments/figure_scale.py",
)

#: Wall-clock functions of the :mod:`time` module.
_TIME_WALL_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Wall-clock constructors reached through the :mod:`datetime` module.
_DATETIME_WALL_FNS = frozenset({"now", "utcnow", "today"})

#: Callables producing a fresh mutable object when used as a default.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that evaluate to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


class _CallVisitor(ast.NodeVisitor):
    """Flags unseeded-random and wall-clock calls, tracking import aliases."""

    def __init__(self, display_path: str, wall_clock_allowed: bool) -> None:
        self.display_path = display_path
        self.wall_clock_allowed = wall_clock_allowed
        self.findings: list[Finding] = []
        self._random_modules: set[str] = set()
        self._time_modules: set[str] = set()
        self._datetime_modules: set[str] = set()
        #: local name -> original name, for ``from random import ...``.
        self._random_funcs: dict[str, str] = {}
        self._time_funcs: dict[str, str] = {}

    def _flag(self, rule: str, line: int, message: str) -> None:
        self.findings.append(Finding(rule=rule, path=self.display_path, line=line, message=message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_modules.add(local)
            elif alias.name == "time":
                self._time_modules.add(local)
            elif alias.name == "datetime":
                self._datetime_modules.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._random_funcs[alias.asname or alias.name] = alias.name
        elif node.module == "time":
            for alias in node.names:
                self._time_funcs[alias.asname or alias.name] = alias.name
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if rest and head in self._random_modules:
                self._check_random_call(node, rest)
            elif rest and head in self._time_modules:
                if rest in _TIME_WALL_FNS:
                    self._flag_wall_clock(node, dotted)
            elif rest and head in self._datetime_modules:
                if rest.rpartition(".")[2] in _DATETIME_WALL_FNS:
                    self._flag_wall_clock(node, dotted)
            elif not rest:
                original = self._random_funcs.get(head)
                if original is not None:
                    self._check_random_call(node, original)
                original = self._time_funcs.get(head)
                if original is not None and original in _TIME_WALL_FNS:
                    self._flag_wall_clock(node, f"time.{original}")
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, attr: str) -> None:
        if attr == "Random":
            if not node.args and not node.keywords:
                self._flag(
                    RULE_UNSEEDED_RANDOM,
                    node.lineno,
                    "random.Random() constructed without a seed; pass an explicit "
                    "seed so the stream is reproducible",
                )
            return
        if attr == "seed":
            # Seeding the global RNG is not itself a draw; any later draw
            # through the module-level API is still flagged below.
            return
        if attr == "SystemRandom":
            self._flag(
                RULE_UNSEEDED_RANDOM,
                node.lineno,
                "random.SystemRandom is OS-entropy backed and cannot be seeded",
            )
            return
        self._flag(
            RULE_UNSEEDED_RANDOM,
            node.lineno,
            f"random.{attr}() draws from the unseeded module-level RNG; use a "
            "random.Random(seed) instance",
        )

    def _flag_wall_clock(self, node: ast.Call, dotted: str) -> None:
        if self.wall_clock_allowed:
            return
        self._flag(
            RULE_WALL_CLOCK,
            node.lineno,
            f"{dotted}() reads the wall clock outside the measurement "
            "allowlist; simulation logic must use simulated time",
        )


def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
    """Nodes belonging to ``scope``, not descending into nested scopes."""
    barrier = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    collected: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        collected.append(node)
        if not isinstance(node, barrier):
            stack.extend(ast.iter_child_nodes(node))
    return collected


def _scan_set_iteration(tree: ast.Module, display_path: str) -> list[Finding]:
    findings: list[Finding] = []
    scopes = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        nodes = _scope_nodes(scope)
        set_assigned: set[str] = set()
        otherwise_bound: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                otherwise_bound.add(arg.arg)
        for node in nodes:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], None
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], None
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                targets, value = [node.optional_vars], None
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        if value is not None and _is_set_expr(value) and target is name_node:
                            set_assigned.add(name_node.id)
                        else:
                            otherwise_bound.add(name_node.id)
        set_locals = set_assigned - otherwise_bound
        for node in nodes:
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if _is_set_expr(candidate):
                    findings.append(
                        Finding(
                            rule=RULE_SET_ITERATION,
                            path=display_path,
                            line=candidate.lineno,
                            message="iteration over an unordered set expression; sort "
                            "first so event order does not depend on hashing",
                        )
                    )
                elif isinstance(candidate, ast.Name) and candidate.id in set_locals:
                    findings.append(
                        Finding(
                            rule=RULE_SET_ITERATION,
                            path=display_path,
                            line=candidate.lineno,
                            message=f"iteration over set-valued local {candidate.id!r}; "
                            "sort first so event order does not depend on hashing",
                        )
                    )
    return findings


def _scan_mutable_defaults(tree: ast.Module, display_path: str) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                label = getattr(node, "name", "<lambda>")
                findings.append(
                    Finding(
                        rule=RULE_MUTABLE_DEFAULT,
                        path=display_path,
                        line=default.lineno,
                        message=f"mutable default argument in {label!r} is shared "
                        "across calls and instances; default to None instead",
                    )
                )
    return findings


def lint_source(
    source: str, display_path: str, *, wall_clock_allowed: bool = False
) -> list[Finding]:
    """Lint one module's source text; findings are sorted by line."""
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=display_path,
                line=exc.lineno or 0,
                message=f"module does not parse: {exc.msg}",
            )
        ]
    visitor = _CallVisitor(display_path, wall_clock_allowed)
    visitor.visit(tree)
    findings = visitor.findings
    findings += _scan_set_iteration(tree, display_path)
    findings += _scan_mutable_defaults(tree, display_path)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve().parent).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(root: str | Path) -> list[Finding]:
    """Lint one file, or every ``*.py`` file under a directory.

    Display paths are made relative to the *parent* of ``root`` so the
    output reads naturally both for the package tree (``repro/...``) and
    for fixture directories (``fixtures/...``).
    """
    root = Path(root)
    if root.is_file():
        files = [root]
        base = root.parent
    else:
        files = sorted(root.rglob("*.py"))
        base = root
    findings: list[Finding] = []
    for path in files:
        display = _display_path(path, base)
        allowed = any(display.endswith(entry) for entry in WALL_CLOCK_ALLOWLIST)
        findings += lint_source(
            path.read_text(encoding="utf-8"), display, wall_clock_allowed=allowed
        )
    return findings
