"""The ``repro lint`` driver: determinism + parity + dataplane checks.

The default run lints the whole ``src/repro`` tree with the determinism
linter, verifies fast-path/oracle parity, and builds two small reference
DAIET systems (unreliable and reliable single-rack jobs) to run the
dataplane config checker against real constructed pipelines. Passing an
explicit ``root`` restricts the run to the determinism linter over that
file or directory — that is what the fixture tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.checks.dataplane import check_simulator
from repro.checks.determinism import lint_paths
from repro.checks.findings import Finding
from repro.checks.parity import check_fastpath_parity, repo_root


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    #: Human-readable labels of the check groups that ran.
    checked: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        checks = ", ".join(self.checked)
        if self.findings:
            noun = "finding" if len(self.findings) == 1 else "findings"
            lines.append(f"repro lint: {len(self.findings)} {noun} ({checks})")
        else:
            lines.append(f"repro lint: clean ({checks})")
        return "\n".join(lines)


def _check_reference_dataplanes() -> list[Finding]:
    """Build canonical single-rack jobs and validate their pipelines.

    One unreliable and one reliable configuration, covering both wire
    formats the parser budget has to absorb and both steering layouts.
    """
    from repro.core.config import DaietConfig
    from repro.core.daiet import DaietSystem

    findings: list[Finding] = []
    for label, config in (
        ("rack-sum", DaietConfig(register_slots=256, pairs_per_packet=4)),
        (
            "rack-sum-reliable",
            DaietConfig(register_slots=256, pairs_per_packet=4, reliability=True),
        ),
    ):
        system = DaietSystem.single_rack(4, config=config)
        system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
        findings += check_simulator(system.simulator, label=label)
    return findings


def run_lint(root: str | Path | None = None) -> LintReport:
    """Run the configured checks; ``root`` restricts to determinism lint."""
    if root is not None:
        findings = lint_paths(Path(root))
        return LintReport(findings=tuple(findings), checked=("determinism",))
    findings = lint_paths(repo_root() / "src" / "repro")
    findings += check_fastpath_parity()
    findings += _check_reference_dataplanes()
    return LintReport(
        findings=tuple(findings),
        checked=("determinism", "fastpath-parity", "dataplane-config"),
    )
