"""Fast-path parity checker.

Every compiled fast path in the simulator core must be registered with
:func:`repro.checks.fastpath` and paired with an oracle test module that
drives the fast path and the generic path side by side. This checker
imports the known fast-path modules (registration happens at import time),
then verifies:

* every *required* fast path name is registered (the nine compiled paths
  the repo ships today are hard-required, so deleting a decorator fails
  lint rather than silently dropping coverage);
* every registered fast path's oracle module exists on disk;
* the oracle module actually contains tests (``def test``).
"""

from __future__ import annotations

import importlib
from pathlib import Path

import repro
from repro.checks.findings import Finding
from repro.checks.registry import FastPathInfo, registered_fastpaths

#: Modules that define compiled fast paths. Imported before reading the
#: registry so decorators have run even if nothing else touched them.
FASTPATH_MODULES: tuple[str, ...] = (
    "repro.netsim.events",
    "repro.netsim.devices",
    "repro.netsim.faults",
    "repro.netsim.simulator",
    "repro.dataplane.registers",
    "repro.core.aggregation",
    "repro.transport.window",
)

#: Fast paths that must exist in the registry. Keep in sync with the
#: ``@fastpath`` decorators in :data:`FASTPATH_MODULES`.
REQUIRED_FASTPATHS: frozenset[str] = frozenset(
    {
        "calendar-queue",
        "switch-delivery",
        "switch-batch-delivery",
        "switch-burst-delivery",
        "forwarding-cache",
        "sum-register-loop",
        "vector-register-kernel",
        "fault-gate",
        "window-advance",
    }
)


def repo_root() -> Path:
    """Repository root, derived from the installed package location."""
    return Path(repro.__file__).resolve().parents[2]


def check_fastpath_parity(
    root: Path | None = None,
    registry: dict[str, FastPathInfo] | None = None,
) -> list[Finding]:
    """Return findings for unregistered or oracle-less fast paths.

    ``root`` and ``registry`` exist for tests; the defaults check the live
    registry against the real repository tree.
    """
    if registry is None:
        for module in FASTPATH_MODULES:
            importlib.import_module(module)
        registry = registered_fastpaths()
    if root is None:
        root = repo_root()

    findings: list[Finding] = []
    for name in sorted(REQUIRED_FASTPATHS - registry.keys()):
        findings.append(
            Finding(
                rule="fastpath-missing",
                path="<registry>",
                line=0,
                message=f"required fast path {name!r} is not registered; "
                "restore its @fastpath decorator",
            )
        )
    for name in sorted(registry):
        info = registry[name]
        oracle = root / info.oracle
        if not oracle.is_file():
            findings.append(
                Finding(
                    rule="fastpath-oracle-missing",
                    path=info.source_path(),
                    line=0,
                    message=f"fast path {name!r} ({info.qualname}) declares "
                    f"oracle {info.oracle!r} but the file does not exist",
                )
            )
            continue
        if "def test" not in oracle.read_text(encoding="utf-8"):
            findings.append(
                Finding(
                    rule="fastpath-oracle-empty",
                    path=info.oracle,
                    line=0,
                    message=f"oracle module for fast path {name!r} contains no tests",
                )
            )
    return findings
