"""Runtime sanitizer: conservation ledger, scheduler and register checks.

Enabled with ``REPRO_SANITIZE=1`` (or ``repro <experiment> --sanitize``),
the sanitizer wraps one :class:`~repro.netsim.simulator.NetworkSimulator`
instance with:

* a **conservation ledger** asserting, per packet class, that
  ``sent + switch_out == delivered + lost_or_dropped + switch_in + faulted
  + unprotected`` once the event queue drains (and that in-flight never goes
  negative mid-run); the ``faulted`` bucket is fed by the fault injector
  (:mod:`repro.netsim.faults`) for packets destroyed by crashed devices or
  downed links, and ``unprotected`` counts drops on trees deliberately run
  under a reduced reliability policy (``sampled`` / ``best_effort``);
* **sim-time monotonicity** and **dispatch-order** checks on every event,
  plus periodic **backend structural invariants** (binary-heap property on
  the heap backend; bucket filing and per-bucket heap property on the
  calendar backend);
* **register-leak detection**: occupied aggregation cells must exactly
  match the index stack, and after a round completes (final flush done, no
  round in progress) every slot must have rearmed to empty.

Cost model: everything here lives on *wrappers installed onto one opted-in
simulator instance*. When the sanitizer is off, no wrapper exists, no flag
is consulted and no per-event branch is executed anywhere in the hot path —
the mode is compiled out by construction, not by an ``if``.

The wrappers replace *instance attributes* (``sim.send``, ``sim._transmit``,
``host.deliver``...) and then rebuild the simulator's compiled port maps so
the per-link delivery closures re-capture the wrapped bound methods.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.errors import SanitizerError
from repro.netsim.devices import Host, SwitchDevice

__all__ = [
    "ConservationLedger",
    "SANITIZE_ENV",
    "SimulatorSanitizer",
    "install_sanitizer",
    "sanitize_enabled_in_env",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import NetworkSimulator

#: Environment switch; truthy values enable the sanitizer.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled_in_env() -> bool:
    """True when :data:`SANITIZE_ENV` requests sanitized runs."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


class ConservationLedger:
    """Per-packet-class counters for the conservation invariant.

    At quiescence every class must satisfy ``sent + switch_out ==
    delivered + lost_or_dropped + switch_in + faulted + unprotected``;
    mid-run the difference (packets in flight) must never go negative —
    a negative balance means a phantom delivery or an unaccounted emission.
    """

    def __init__(self) -> None:
        self.sent: dict[str, int] = {}
        self.delivered: dict[str, int] = {}
        self.lost_or_dropped: dict[str, int] = {}
        self.switch_in: dict[str, int] = {}
        self.switch_out: dict[str, int] = {}
        #: Packets destroyed by an injected fault (crashed device, downed
        #: link). A separate consumed-side bucket — not folded into
        #: ``lost_or_dropped`` — so churn runs under ``REPRO_SANITIZE=1``
        #: balance without hiding fault damage inside ordinary loss.
        self.faulted: dict[str, int] = {}
        #: Packets dropped on a tree that deliberately runs without (full)
        #: retransmission — ``reliability_policy`` ``"sampled"`` or
        #: ``"best_effort"``. A separate consumed-side bucket so accepted
        #: approximation loss is never conflated with ``faulted`` damage or
        #: ordinary congestion loss; the conservation equation still closes
        #: at quiescence with it on the consumed side.
        self.unprotected: dict[str, int] = {}
        #: Packets ECN-marked in flight (CE False->True transitions observed
        #: at the transmit wrapper). Marked packets still flow to a consumer
        #: bucket, so this tally sits *outside* the conservation equation —
        #: it is cross-checked against ``TrafficStats.ecn_marked`` instead,
        #: so a mark the stats missed (or vice versa) is never silent.
        self.marked: dict[str, int] = {}

    @staticmethod
    def _bump(table: dict[str, int], cls: str) -> None:
        table[cls] = table.get(cls, 0) + 1

    def classes(self) -> list[str]:
        """Every packet class seen by any counter, sorted."""
        names: set[str] = set()
        for table in (
            self.sent,
            self.delivered,
            self.lost_or_dropped,
            self.switch_in,
            self.switch_out,
            self.faulted,
            self.unprotected,
        ):
            names.update(table)
        return sorted(names)

    def in_flight(self, cls: str) -> int:
        """Injected-or-emitted minus accounted-for, for one packet class."""
        produced = self.sent.get(cls, 0) + self.switch_out.get(cls, 0)
        consumed = (
            self.delivered.get(cls, 0)
            + self.lost_or_dropped.get(cls, 0)
            + self.switch_in.get(cls, 0)
            + self.faulted.get(cls, 0)
            + self.unprotected.get(cls, 0)
        )
        return produced - consumed

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Copy of every counter table (diagnostics and tests)."""
        return {
            "sent": dict(self.sent),
            "delivered": dict(self.delivered),
            "lost_or_dropped": dict(self.lost_or_dropped),
            "switch_in": dict(self.switch_in),
            "switch_out": dict(self.switch_out),
            "faulted": dict(self.faulted),
            "unprotected": dict(self.unprotected),
            "marked": dict(self.marked),
        }

    def check(self, *, quiescent: bool) -> None:
        """Raise :class:`SanitizerError` on a conservation violation."""
        for cls in self.classes():
            balance = self.in_flight(cls)
            if balance < 0:
                raise SanitizerError(
                    f"conservation violated for {cls}: "
                    f"{-balance} more packets accounted for than were ever "
                    f"sent or emitted (sent={self.sent.get(cls, 0)}, "
                    f"switch_out={self.switch_out.get(cls, 0)}, "
                    f"delivered={self.delivered.get(cls, 0)}, "
                    f"lost_or_dropped={self.lost_or_dropped.get(cls, 0)}, "
                    f"switch_in={self.switch_in.get(cls, 0)}, "
                    f"faulted={self.faulted.get(cls, 0)}, "
                    f"unprotected={self.unprotected.get(cls, 0)})"
                )
            if quiescent and balance != 0:
                raise SanitizerError(
                    f"conservation violated for {cls}: {balance} packets "
                    "unaccounted for at quiescence (sent + switch_out != "
                    "delivered + lost_or_dropped + switch_in + faulted "
                    "+ unprotected)"
                )


class SimulatorSanitizer:
    """Installs and drives every runtime check on one simulator instance."""

    def __init__(self, sim: "NetworkSimulator", heap_check_interval: int = 4096) -> None:
        self.sim = sim
        self.ledger = ConservationLedger()
        #: Structural backend checks are O(pending events), so they run every
        #: ``heap_check_interval`` dispatched events rather than on each one.
        self.heap_check_interval = heap_check_interval
        self._installed = False

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install(self) -> "SimulatorSanitizer":
        """Wrap the simulator's injection, transport and delivery paths."""
        if self._installed:
            return self
        sim = self.sim
        ledger = self.ledger
        bump = ConservationLedger._bump
        scheduler = sim.scheduler

        real_send = sim.send
        real_send_burst = sim.send_burst
        real_transmit = sim._transmit

        def send(src_host: str, packet: Any, delay: float = 0.0) -> None:
            real_send(src_host, packet, delay)
            bump(ledger.sent, type(packet).__name__)

        def send_burst(src_host: str, packets: Iterable[Any], delay: float = 0.0) -> int:
            window = list(packets)
            injected = real_send_burst(src_host, window, delay)
            for packet in window[:injected] if injected else []:
                bump(ledger.sent, type(packet).__name__)
            return injected

        def transmit(from_device: str, egress_port: int, packet: Any, nbytes: int) -> None:
            # A transmission either schedules exactly one delivery event or
            # sinks the packet (loss draw, unconnected port, full egress
            # buffer): the scheduler backlog delta tells the two apart
            # without duplicating the drop/loss logic here. ECN marking is
            # likewise observed from outside: a CE False->True transition
            # across the call is tallied per packet class and cross-checked
            # against ``TrafficStats.ecn_marked`` at quiescence.
            was_unmarked = getattr(packet, "ecn", None) is False
            before = len(scheduler)
            real_transmit(from_device, egress_port, packet, nbytes)
            if was_unmarked and packet.ecn:
                bump(ledger.marked, type(packet).__name__)
            if len(scheduler) == before:
                # Drops on a tree that *chose* reduced reliability file under
                # ``unprotected`` — accepted approximation loss, not damage.
                # The policy registry is shared onto the simulator by
                # DaietSystem; absent registry (bare simulators) means every
                # drop is ordinary loss.
                policies = getattr(sim, "tree_policies", None)
                tree_id = getattr(packet, "tree_id", None)
                if (
                    policies is not None
                    and tree_id is not None
                    and policies.get(tree_id, "exact") != "exact"
                ):
                    bump(ledger.unprotected, type(packet).__name__)
                else:
                    bump(ledger.lost_or_dropped, type(packet).__name__)

        sim.send = send
        sim.send_burst = send_burst
        sim._transmit = transmit

        for device in sim.topology.devices.values():
            self._wrap_device(device)

        # The compiled per-link sinks captured the *original* bound methods
        # (host.deliver / device.deliver / sim._transmit) at construction;
        # rebuilding the port maps makes them re-capture the wrappers.
        sim._build_port_maps()

        sim.run = self._run
        sim.sanitizer = self
        self._installed = True
        return self

    def _wrap_device(self, device: Any) -> None:
        ledger = self.ledger
        bump = ConservationLedger._bump

        if isinstance(device, Host):
            # Every path into a host application funnels through
            # ``deliver`` (the compiled sink, the generic path and
            # Host.handle_packet all call it).
            real_deliver = device.deliver

            def deliver(packet: Any, nbytes: int) -> None:
                bump(ledger.delivered, type(packet).__name__)
                real_deliver(packet, nbytes)

            device.deliver = deliver
            return

        if type(device) is SwitchDevice:
            # Exact switches are entered via ``deliver`` (compiled sink
            # and generic path both dispatch to it directly).
            real_switch_deliver = device.deliver

            def switch_deliver(
                packet: Any, ingress_port: int, nbytes: int
            ) -> list[tuple[int, Any]]:
                bump(ledger.switch_in, type(packet).__name__)
                outputs = real_switch_deliver(packet, ingress_port, nbytes)
                for _port, out_packet in outputs:
                    bump(ledger.switch_out, type(out_packet).__name__)
                return outputs

            device.deliver = switch_deliver
            return

        # Subclassed switches and any other device type take the generic
        # ``handle_packet`` path (the simulator never compiles a sink for
        # them); packets they absorb count as switch-consumed.
        real_handle = device.handle_packet

        def handle_packet(packet: Any, ingress_port: int) -> list[tuple[int, Any]]:
            bump(ledger.switch_in, type(packet).__name__)
            outputs = real_handle(packet, ingress_port)
            for _port, out_packet in outputs:
                bump(ledger.switch_out, type(out_packet).__name__)
            return outputs

        device.handle_packet = handle_packet

    # ------------------------------------------------------------------ #
    # Sanitized run loop
    # ------------------------------------------------------------------ #
    def _run(self, until: float | None = None) -> int:
        """Step-by-step replacement for :meth:`NetworkSimulator.run`.

        Mirrors the scheduler's ``run`` semantics (stop past ``until``,
        honour ``max_events``, advance the clock to ``until`` at the end)
        while checking monotonicity and dispatch order on every event and
        the backend structure periodically.
        """
        sim = self.sim
        scheduler = sim.scheduler
        max_events = sim.config.max_events
        interval = self.heap_check_interval
        executed = 0
        last_time = scheduler.now
        while executed < max_events:
            next_time = scheduler.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if next_time < last_time:
                raise SanitizerError(
                    f"sim-time monotonicity violated: next event at "
                    f"{next_time!r} lies before the current time {last_time!r}"
                )
            if not scheduler.step():
                break
            if scheduler.now != next_time:
                raise SanitizerError(
                    f"dispatch-order violation: peeked head at {next_time!r} "
                    f"but the scheduler executed an event at {scheduler.now!r}"
                )
            last_time = scheduler.now
            executed += 1
            if executed % interval == 0:
                self.check_backend_invariant()
        if until is not None and until > scheduler.now:
            scheduler.now = until
        extra = sim._synthetic_events
        if extra:
            sim._synthetic_events = 0
            executed += extra
        self.check()
        return executed

    # ------------------------------------------------------------------ #
    # Invariant checks
    # ------------------------------------------------------------------ #
    def check_backend_invariant(self) -> None:
        """Structural invariants of the active scheduler backend."""
        scheduler = self.sim.scheduler
        cal = scheduler._cal
        if cal is None:
            queue = scheduler._queue
            for i in range(1, len(queue)):
                parent = (i - 1) >> 1
                if queue[i] < queue[parent]:
                    raise SanitizerError(
                        f"heap invariant violated at index {i}: entry "
                        f"t={queue[i][0]!r} sorts before its parent "
                        f"t={queue[parent][0]!r}"
                    )
            return
        total = 0
        inv = cal.inv_width
        mask = cal.mask
        for index, bucket in enumerate(cal.buckets):
            total += len(bucket)
            for i in range(1, len(bucket)):
                parent = (i - 1) >> 1
                if bucket[i] < bucket[parent]:
                    raise SanitizerError(
                        f"calendar bucket {index} heap invariant violated "
                        f"at index {i}"
                    )
            for entry in bucket:
                expected = int(entry[0] * inv) & mask
                if expected != index:
                    raise SanitizerError(
                        f"calendar entry t={entry[0]!r} filed in bucket "
                        f"{index} but belongs in bucket {expected}"
                    )
        if total != cal.count:
            raise SanitizerError(
                f"calendar count {cal.count} does not match the "
                f"{total} entries actually stored"
            )

    def check_registers(self) -> None:
        """Aggregation register-leak checks across every switch."""
        for device in self.sim.topology.switches():
            engine = device.switch.externs.get("daiet")
            if engine is None:
                continue
            for tree_id in sorted(engine._trees):
                self._check_tree(device.name, tree_id, engine._trees[tree_id])

    def _check_tree(self, switch_name: str, tree_id: int, state: Any) -> None:
        where = f"switch {switch_name!r} tree {tree_id}"
        stack = list(state.index_stack.peek_all())
        stack_set = set(stack)
        if len(stack_set) != len(stack):
            duplicates = sorted({i for i in stack if stack.count(i) > 1})
            raise SanitizerError(
                f"{where}: index stack holds duplicate slots ({duplicates})"
            )
        occupied = set(state.key_register.occupied_indices())
        leaked = occupied - stack_set
        if leaked:
            raise SanitizerError(
                f"{where}: register slots {sorted(leaked)} hold keys but are "
                "not recorded on the index stack; they would never be "
                "flushed or rearmed"
            )
        orphaned = stack_set - occupied
        if orphaned:
            raise SanitizerError(
                f"{where}: index stack records slots {sorted(orphaned)} whose "
                "key cells are empty; the final flush would read empty slots"
            )
        for index in sorted(occupied):
            if state.value_register.is_empty(index):
                raise SanitizerError(
                    f"{where}: slot {index} holds a key but no value"
                )
        # After a completed round — the final flush ran and no new round has
        # started — every slot must have rearmed to the empty state.
        round_complete = (
            state.counters.final_flushes > 0
            and state.remaining_children == state.num_children
            and not state._ended_sources
        )
        if round_complete:
            if occupied:
                raise SanitizerError(
                    f"{where}: slots {sorted(occupied)} did not rearm to "
                    "empty after the round's final flush"
                )
            if len(state.spillover):
                raise SanitizerError(
                    f"{where}: spillover bucket still holds "
                    f"{len(state.spillover)} pairs after the round's final "
                    "flush"
                )

    def check(self) -> None:
        """Run every invariant check; raise on the first violation."""
        self.check_backend_invariant()
        scheduler = self.sim.scheduler
        self.ledger.check(quiescent=len(scheduler) == 0)
        ledger_marks = sum(self.ledger.marked.values())
        stats_marks = self.sim.stats.total_ecn_marked()
        if ledger_marks != stats_marks:
            raise SanitizerError(
                f"ECN mark accounting diverged: the transmit wrapper observed "
                f"{ledger_marks} CE transitions but TrafficStats recorded "
                f"{stats_marks} marks"
            )
        self.check_registers()


def install_sanitizer(sim: "NetworkSimulator") -> SimulatorSanitizer:
    """Create and install a :class:`SimulatorSanitizer` on ``sim``."""
    return SimulatorSanitizer(sim).install()
