"""Registry tying each compiled fast path to its oracle test module.

The simulator core carries several *compiled* hot paths — closures and
specialized loops that replicate the observable behaviour of a generic
(slow) path. Their correctness rests on twin-path tests that drive both
implementations and compare every observable effect. The
:func:`fastpath` decorator makes that pairing explicit and machine
checkable: decorating the hot path records its name and the repo-relative
path of its oracle test module, and ``repro lint`` fails when a registered
fast path has no oracle (or the oracle module has no tests).

Registration is pure metadata: the decorator stores one record in a module
dictionary at import time and returns the decorated object unchanged, so
there is zero per-call cost on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class FastPathInfo:
    """Metadata of one registered compiled fast path."""

    #: Stable short name (used in lint output and the parity gate).
    name: str
    #: Repo-relative path of the twin/oracle test module.
    oracle: str
    #: Module defining the fast path (``obj.__module__``).
    module: str
    #: Qualified name of the decorated function or class.
    qualname: str

    def source_path(self) -> str:
        """Repo-relative path of the module defining this fast path."""
        return "src/" + self.module.replace(".", "/") + ".py"


#: name -> :class:`FastPathInfo`. Re-importing a module re-registers the
#: same record, so the mapping is idempotent across reloads.
_REGISTRY: dict[str, FastPathInfo] = {}


def fastpath(name: str, *, oracle: str) -> Callable[[T], T]:
    """Register a compiled fast path with its paired oracle test module.

    Usage::

        @fastpath("calendar-queue", oracle="tests/netsim/test_calendar_queue.py")
        class CalendarQueue: ...

    The decorated object is returned unchanged.
    """

    def register(obj: T) -> T:
        _REGISTRY[name] = FastPathInfo(
            name=name,
            oracle=oracle,
            module=getattr(obj, "__module__", "<unknown>"),
            qualname=getattr(obj, "__qualname__", repr(obj)),
        )
        return obj

    return register


def registered_fastpaths() -> dict[str, FastPathInfo]:
    """Snapshot of every registered fast path, keyed by name."""
    return dict(_REGISTRY)
