"""The finding record shared by every ``repro lint`` check."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule identifier anchored to a location.

    ``path`` is a display path (repo-relative where possible); ``line`` is
    1-based, with 0 meaning the finding has no meaningful line (e.g. a
    missing registration or a constructed-pipeline violation).
    """

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """The conventional ``path:line: [rule] message`` form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
