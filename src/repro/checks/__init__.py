"""Static analysis and runtime sanitizer for the simulator core.

The package has two halves:

* **Static checks** (``repro lint``): an AST determinism linter over
  ``src/repro`` (:mod:`repro.checks.determinism`), a fast-path parity
  checker tying every compiled hot path to its oracle test module
  (:mod:`repro.checks.parity` + the :func:`fastpath` registry decorator),
  and a dataplane configuration checker over constructed pipelines
  (:mod:`repro.checks.dataplane`). :mod:`repro.checks.lint` drives all
  three for the CLI.
* **Runtime sanitizer** (``REPRO_SANITIZE=1`` or ``--sanitize``):
  :mod:`repro.checks.sanitize` wraps one :class:`~repro.netsim.simulator.
  NetworkSimulator` with a packet-conservation ledger, scheduler
  monotonicity/heap-invariant checks and register-leak detection. Nothing
  here touches the hot path when the sanitizer is off — the wrappers are
  only installed on an opted-in simulator instance.

This module deliberately imports only the lightweight pieces (the registry
and the finding record); the lint driver and the sanitizer are imported on
demand so that decorating a hot-path module with :func:`fastpath` costs one
dict store at import time and nothing per packet.
"""

from __future__ import annotations

from repro.checks.findings import Finding
from repro.checks.registry import FastPathInfo, fastpath, registered_fastpaths

__all__ = ["FastPathInfo", "Finding", "fastpath", "registered_fastpaths"]
