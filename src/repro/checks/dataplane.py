"""Dataplane configuration checker.

Validates *constructed* pipelines — a :class:`~repro.netsim.simulator.
NetworkSimulator` with its switches, tables and aggregation engines wired
up — against the invariants that, when violated, produce silent packet
loss or resource corruption long before any assertion fires:

* steering-table (``daiet_steer``) entries must reference a configured
  aggregation tree whose egress and child ports are live (cabled) ports;
* forwarding entries must emit on live ports (broadcast excepted);
* exact-match tables must have no duplicate canonical keys, and ternary
  tables no entry fully shadowed by a higher-priority one;
* the parser byte budget must cover the largest DAIET packet the
  configured job can produce (``parse_depth_bytes``);
* register-file and spillover capacities must agree with the
  :mod:`repro.dataplane.resources` ledger and the job config.

The checker is read-only; it never mutates the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.checks.findings import Finding
from repro.dataplane.actions import CallableAction, ForwardAction
from repro.dataplane.switch import BROADCAST_PORT
from repro.dataplane.tables import WILDCARD, MatchActionTable, _canonical_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import NetworkSimulator


def _shadows(higher: dict[str, Any], lower: dict[str, Any]) -> bool:
    """True if ternary match ``higher`` matches every key ``lower`` matches."""
    for field, low_value in lower.items():
        high_value = higher.get(field, WILDCARD)
        if high_value == WILDCARD:
            continue
        if low_value == WILDCARD or high_value != low_value:
            return False
    return True


def check_table(table: MatchActionTable, *, path: str) -> list[Finding]:
    """Duplicate-key and shadowing checks on one match-action table."""
    findings: list[Finding] = []
    if table.match_kind == "exact":
        seen: dict[tuple, int] = {}
        for entry in table._entries:
            key = _canonical_key(entry.match)
            if key is None:
                continue
            if key in seen:
                findings.append(
                    Finding(
                        rule="table-duplicate-key",
                        path=path,
                        line=0,
                        message=f"exact table {table.name!r} holds duplicate "
                        f"entries for match {entry.match}",
                    )
                )
            else:
                seen[key] = 1
    else:
        # _entries is sorted by descending priority; an entry is dead if any
        # earlier (>= priority) entry matches its entire match space.
        entries = table._entries
        for i, low in enumerate(entries):
            for high in entries[:i]:
                if high.priority >= low.priority and _shadows(high.match, low.match):
                    findings.append(
                        Finding(
                            rule="table-shadowed-entry",
                            path=path,
                            line=0,
                            message=f"ternary table {table.name!r} entry "
                            f"{low.match} (priority {low.priority}) is shadowed "
                            f"by {high.match} (priority {high.priority})",
                        )
                    )
                    break
    return findings


def _check_ports(
    ports: Iterable[int],
    *,
    what: str,
    num_ports: int,
    live_ports: set[int] | None,
    path: str,
) -> list[Finding]:
    findings: list[Finding] = []
    for port in ports:
        if port == BROADCAST_PORT:
            continue
        if not 0 <= port < num_ports:
            findings.append(
                Finding(
                    rule="dead-egress-port",
                    path=path,
                    line=0,
                    message=f"{what} references port {port}, outside the "
                    f"switch's 0..{num_ports - 1} range",
                )
            )
        elif live_ports is not None and port not in live_ports:
            findings.append(
                Finding(
                    rule="dead-egress-port",
                    path=path,
                    line=0,
                    message=f"{what} references port {port}, which has no "
                    "link attached",
                )
            )
    return findings


def check_switch(
    device: Any, *, live_ports: set[int] | None = None, path: str | None = None
) -> list[Finding]:
    """Validate one :class:`SwitchDevice`'s tables, trees and resources."""
    switch = device.switch
    if path is None:
        path = f"<switch {switch.name}>"
    findings: list[Finding] = []
    tables = switch.pipeline.tables()
    for table in tables.values():
        findings += check_table(table, path=path)

    engine = switch.externs.get("daiet")
    trees = engine._trees if engine is not None else {}

    # Steering entries must point at configured trees on live ports.
    steer = tables.get("daiet_steer")
    if steer is not None:
        for entry in steer._entries:
            tree_id = entry.match.get("tree_id")
            state = trees.get(tree_id)
            if state is None:
                findings.append(
                    Finding(
                        rule="steering-unconfigured-tree",
                        path=path,
                        line=0,
                        message=f"steering entry for tree {tree_id!r} has no "
                        "configured aggregation tree on this switch",
                    )
                )
                continue
            if not isinstance(entry.action, CallableAction):
                findings.append(
                    Finding(
                        rule="steering-wrong-action",
                        path=path,
                        line=0,
                        message=f"steering entry for tree {tree_id!r} is bound "
                        f"to {type(entry.action).__name__}, not the aggregation "
                        "extern",
                    )
                )
            findings += _check_ports(
                [state.egress_port],
                what=f"tree {tree_id} egress",
                num_ports=switch.num_ports,
                live_ports=live_ports,
                path=path,
            )
            findings += _check_ports(
                sorted(state.child_ports.values()),
                what=f"tree {tree_id} child port set",
                num_ports=switch.num_ports,
                live_ports=live_ports,
                path=path,
            )

    # Trees configured on the engine but never steered are dead state.
    if steer is not None:
        steered = {e.match.get("tree_id") for e in steer._entries}
        for tree_id in sorted(set(trees) - steered):
            findings.append(
                Finding(
                    rule="steering-missing-entry",
                    path=path,
                    line=0,
                    message=f"aggregation tree {tree_id} is configured but has "
                    "no steering-table entry; its packets will bypass "
                    "aggregation",
                )
            )

    # Forwarding actions must emit on live ports.
    for table in tables.values():
        forward_ports = [
            entry.action.egress_port
            for entry in table._entries
            if isinstance(entry.action, ForwardAction)
        ]
        findings += _check_ports(
            forward_ports,
            what=f"table {table.name!r} forward entry",
            num_ports=switch.num_ports,
            live_ports=live_ports,
            path=path,
        )

    # Per-tree register/parser/ledger consistency.
    for tree_id in sorted(trees):
        state = trees[tree_id]
        config = state.config
        findings += _check_tree_resources(switch, tree_id, state, config, path)
    return findings


def _check_tree_resources(
    switch: Any, tree_id: int, state: Any, config: Any, path: str
) -> list[Finding]:
    findings: list[Finding] = []
    slots = config.register_slots
    if len(state.key_register) != slots or len(state.value_register) != slots:
        findings.append(
            Finding(
                rule="register-capacity-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} registers hold "
                f"{len(state.key_register)}/{len(state.value_register)} cells "
                f"but the config declares {slots} slots",
            )
        )
    if state.index_stack.capacity != slots:
        findings.append(
            Finding(
                rule="register-capacity-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} index stack capacity "
                f"{state.index_stack.capacity} != register slots {slots}",
            )
        )
    expected_spill = config.effective_spillover_capacity
    if state.spillover.capacity != expected_spill:
        findings.append(
            Finding(
                rule="spillover-capacity-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} spillover capacity "
                f"{state.spillover.capacity} != configured "
                f"{expected_spill}",
            )
        )
    if state.spillover.capacity > config.pairs_per_packet:
        findings.append(
            Finding(
                rule="spillover-capacity-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} spillover capacity "
                f"{state.spillover.capacity} exceeds pairs_per_packet "
                f"{config.pairs_per_packet}; a flush could overflow one packet",
            )
        )

    # Parser budget must cover the largest packet this job can emit.
    max_depth = _max_parse_depth(config)
    budget = switch.resources.max_parse_bytes
    if max_depth > budget:
        findings.append(
            Finding(
                rule="parser-budget-exceeded",
                path=path,
                line=0,
                message=f"tree {tree_id} max packet parse depth {max_depth}B "
                f"exceeds the parser budget {budget}B; full-size DAIET "
                "packets would be dropped",
            )
        )

    # The controller's SRAM reservation must match the config's footprint.
    owner = f"tree{tree_id}"
    allocations = switch.ledger.allocations()
    expected = config.sram_bytes()
    actual = allocations.get(owner)
    if actual is None:
        findings.append(
            Finding(
                rule="sram-ledger-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} has no SRAM allocation in the ledger "
                f"(expected {expected}B under owner {owner!r})",
            )
        )
    elif actual != expected:
        findings.append(
            Finding(
                rule="sram-ledger-mismatch",
                path=path,
                line=0,
                message=f"tree {tree_id} SRAM allocation {actual}B != the "
                f"config footprint {expected}B",
            )
        )
    return findings


def _max_parse_depth(config: Any) -> int:
    """Parse depth of the largest DAIET data packet the config allows."""
    from repro.core.packet import DaietPacket

    pairs = tuple(
        ("k" * config.key_width, (1 << (8 * config.value_width - 1)) - 1)
        for _ in range(config.pairs_per_packet)
    )
    packet = DaietPacket(
        tree_id=1,
        src="probe-src",
        dst="probe-dst",
        pairs=pairs,
        config=config,
        seq=0 if config.reliability else None,
    )
    return packet.parse_depth_bytes()


def check_simulator(sim: "NetworkSimulator", *, label: str = "<sim>") -> list[Finding]:
    """Run every dataplane check on each switch of a built simulator."""
    findings: list[Finding] = []
    for device in sim.topology.switches():
        live = set(sim._port_info.get(device.name, {}))
        findings += check_switch(
            device, live_ports=live, path=f"{label}:{device.name}"
        )
    return findings
