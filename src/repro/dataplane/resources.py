"""Resource model of a programmable switch ASIC.

Section 2 of the paper lists the constraints of the RMT/Tofino "network
machine architecture" that in-network computation has to live within:

* **Limited memory size** — a few tens of MB of SRAM/TCAM.
* **Limited set of actions** — simple arithmetic, data manipulation, hashing.
* **Few operations per packet** — tens of nanoseconds per packet, no unbounded
  loops; the parser can only inspect the first ~200-300 bytes of each packet.

This module makes those limits explicit and enforceable, so that the DAIET
pipeline (and any other program loaded on the simulated switch) fails loudly
when it would not fit real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ResourceExhaustedError

#: SRAM available to stateful registers on a Tofino-class chip (paper: "the
#: expected available SRAM is in the range of few tens of MBs").
DEFAULT_SRAM_BYTES = 32 * 1024 * 1024

#: Number of match-action stages in an RMT-style pipeline.
DEFAULT_PIPELINE_STAGES = 12

#: Maximum number of bytes the parser may inspect per packet (paper: "current
#: P4 hardware switches are expected to parse only around 200-300 B").
DEFAULT_MAX_PARSE_BYTES = 300

#: Maximum ALU operations the pipeline may perform on a single packet. This is
#: a coarse stand-in for the per-stage VLIW instruction budget.
DEFAULT_MAX_OPS_PER_PACKET = 512

#: Maximum times a packet may be recirculated through the ingress pipeline.
DEFAULT_MAX_RECIRCULATIONS = 1


@dataclass(frozen=True)
class SwitchResources:
    """Static resource budget of one switch chip."""

    sram_bytes: int = DEFAULT_SRAM_BYTES
    pipeline_stages: int = DEFAULT_PIPELINE_STAGES
    max_parse_bytes: int = DEFAULT_MAX_PARSE_BYTES
    max_ops_per_packet: int = DEFAULT_MAX_OPS_PER_PACKET
    max_recirculations: int = DEFAULT_MAX_RECIRCULATIONS

    def __post_init__(self) -> None:
        if self.sram_bytes <= 0:
            raise ResourceExhaustedError("sram_bytes must be positive")
        if self.pipeline_stages <= 0:
            raise ResourceExhaustedError("pipeline_stages must be positive")
        if self.max_parse_bytes <= 0:
            raise ResourceExhaustedError("max_parse_bytes must be positive")
        if self.max_ops_per_packet <= 0:
            raise ResourceExhaustedError("max_ops_per_packet must be positive")
        if self.max_recirculations < 0:
            raise ResourceExhaustedError("max_recirculations must be non-negative")


@dataclass
class ResourceLedger:
    """Tracks how much of a :class:`SwitchResources` budget has been allocated.

    The controller allocates SRAM when it installs per-tree register arrays;
    the pipeline charges per-packet operations as it executes actions. The
    ledger raises :class:`ResourceExhaustedError` when a budget is exceeded,
    mirroring a P4 compiler rejecting a program that does not fit the target.
    """

    budget: SwitchResources = field(default_factory=SwitchResources)
    sram_allocated: int = 0
    _allocations: dict[str, int] = field(default_factory=dict, repr=False)

    def allocate_sram(self, owner: str, nbytes: int) -> None:
        """Reserve ``nbytes`` of SRAM for ``owner`` (e.g. a tree's registers)."""
        if nbytes < 0:
            raise ResourceExhaustedError("cannot allocate a negative SRAM amount")
        if self.sram_allocated + nbytes > self.budget.sram_bytes:
            raise ResourceExhaustedError(
                f"SRAM exhausted: {owner!r} requested {nbytes} B but only "
                f"{self.budget.sram_bytes - self.sram_allocated} B remain"
            )
        self.sram_allocated += nbytes
        self._allocations[owner] = self._allocations.get(owner, 0) + nbytes

    def release_sram(self, owner: str) -> int:
        """Release everything allocated to ``owner``; returns the byte count."""
        released = self._allocations.pop(owner, 0)
        self.sram_allocated -= released
        return released

    def sram_available(self) -> int:
        """Bytes of SRAM still unallocated."""
        return self.budget.sram_bytes - self.sram_allocated

    def allocations(self) -> dict[str, int]:
        """Copy of the per-owner allocation map."""
        return dict(self._allocations)


@dataclass(slots=True)
class PacketOpCounter:
    """Per-packet operation counter enforcing the line-rate budget.

    A fresh counter is created for every packet entering the pipeline; each
    primitive action charges one or more operations. Exceeding the budget
    models a program that could not run at line rate on the target.
    """

    limit: int
    used: int = 0

    def charge(self, ops: int = 1) -> None:
        """Consume ``ops`` operations from the per-packet budget."""
        if ops < 0:
            raise ResourceExhaustedError("cannot charge a negative op count")
        self.used += ops
        if self.used > self.limit:
            raise ResourceExhaustedError(
                f"per-packet operation budget exceeded ({self.used} > {self.limit})"
            )

    def remaining(self) -> int:
        """Operations left in the budget for this packet."""
        return max(0, self.limit - self.used)
