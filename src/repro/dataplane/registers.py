"""Stateful register structures of a programmable switch.

The DAIET design (Section 4 of the paper) keeps, per aggregation tree:

* a *key register array* and a *value register array*, managed together as a
  hash table with single-element buckets,
* an *index stack* recording which slots are in use, so flushing does not
  require scanning the whole array,
* a *spillover bucket*, a small queue that absorbs hash collisions and is
  flushed to the next node whenever it fills up.

These structures are modelled here independently of the aggregation algorithm
so that they can be unit-tested and reused (e.g. by the ablation benches that
sweep register sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.checks.registry import fastpath
from repro.core.errors import AggregationError, ResourceExhaustedError


@dataclass
class RegisterArray:
    """A fixed-size array of register cells, as exposed by P4 targets.

    Cells hold arbitrary Python values; ``None`` marks an empty cell, matching
    the paper's "cell is empty" check in Algorithm 1.
    """

    size: int
    name: str = "register"
    _cells: list[Any] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ResourceExhaustedError(
                f"register array {self.name!r} must have a positive size"
            )
        self._cells = [None] * self.size

    def __len__(self) -> int:
        return self.size

    def read(self, index: int) -> Any:
        """Return the value stored at ``index`` (``None`` if empty)."""
        self._check_index(index)
        return self._cells[index]

    def write(self, index: int, value: Any) -> None:
        """Store ``value`` at ``index``."""
        self._check_index(index)
        self._cells[index] = value

    def clear(self, index: int) -> None:
        """Reset a single cell to the empty state."""
        self._check_index(index)
        self._cells[index] = None

    def reset(self) -> None:
        """Reset every cell (controller-driven re-initialization)."""
        self._cells = [None] * self.size

    def is_empty(self, index: int) -> bool:
        """Return ``True`` when the cell holds no value."""
        self._check_index(index)
        return self._cells[index] is None

    def occupied_indices(self) -> list[int]:
        """Indices of non-empty cells (diagnostic; O(size))."""
        return [i for i, cell in enumerate(self._cells) if cell is not None]

    def occupancy(self) -> int:
        """Number of non-empty cells."""
        return sum(1 for cell in self._cells if cell is not None)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise AggregationError(
                f"index {index} out of range for register array "
                f"{self.name!r} of size {self.size}"
            )


@dataclass
class IndexStack:
    """Stack of occupied register indices.

    The paper keeps this stack "to store the indices of the used cells in the
    two arrays", so that the flush operation can walk only the used slots
    instead of scanning the full 16K-entry arrays.
    """

    capacity: int
    _items: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ResourceExhaustedError("index stack capacity must be positive")

    def __len__(self) -> int:
        return len(self._items)

    def push(self, index: int) -> None:
        """Record that ``index`` is now occupied."""
        if len(self._items) >= self.capacity:
            raise ResourceExhaustedError(
                f"index stack overflow (capacity {self.capacity})"
            )
        self._items.append(index)

    def pop(self) -> int:
        """Pop and return the most recently pushed index."""
        if not self._items:
            raise AggregationError("pop from an empty index stack")
        return self._items.pop()

    def drain(self) -> Iterator[int]:
        """Yield and remove every recorded index (used during flush)."""
        while self._items:
            yield self._items.pop()

    def peek_all(self) -> tuple[int, ...]:
        """Snapshot of the stack contents without modifying it."""
        return tuple(self._items)

    def clear(self) -> None:
        """Empty the stack."""
        self._items.clear()


@dataclass
class SpilloverBucket:
    """Queue of key-value pairs that collided in the hash-indexed registers.

    The bucket holds as many pairs as fit in one DAIET packet; when full, its
    contents must be flushed (sent to the next node in the aggregation tree).
    The paper sends spillover pairs *first* so the next hop can still aggregate
    them if it has spare memory.

    A key → slot dictionary rides alongside the FIFO pair list so that the
    merge check in :meth:`store` is O(1) instead of a scan over the whole
    bucket on every collision; flush order stays strictly FIFO.
    """

    capacity: int
    _pairs: list[tuple[Any, Any]] = field(default_factory=list, repr=False)
    #: key -> index into ``_pairs`` (rebuilt empty on every flush).
    _slots: dict[Any, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ResourceExhaustedError("spillover bucket capacity must be positive")

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def is_full(self) -> bool:
        """``True`` when the next :meth:`store` would exceed capacity."""
        return len(self._pairs) >= self.capacity

    @fastpath("spillover-slot-index", oracle="tests/dataplane/test_registers.py")
    def store(self, key: Any, value: Any, combine: Any = None) -> bool:
        """Buffer a colliding pair, aggregating repeats of the same key.

        When ``combine`` (a two-argument aggregation function) is given and
        the bucket already holds an entry for ``key``, the values are merged
        in place instead of appending a duplicate entry — repeated collisions
        of one key must not inflate spillover flushes. Returns ``True`` when a
        new entry was appended and ``False`` when the pair was merged.
        """
        try:
            slot = self._slots.get(key)
        except TypeError:
            # Unhashable key: preserve the original linear-scan behaviour.
            slot = next(
                (i for i, (stored, _v) in enumerate(self._pairs) if stored == key),
                None,
            )
            if combine is not None and slot is not None:
                stored_key, stored_value = self._pairs[slot]
                self._pairs[slot] = (stored_key, combine(stored_value, value))
                return False
            if len(self._pairs) >= self.capacity:
                raise ResourceExhaustedError(
                    f"spillover bucket overflow (capacity {self.capacity})"
                ) from None
            self._pairs.append((key, value))
            return True
        if combine is not None and slot is not None:
            stored_key, stored_value = self._pairs[slot]
            self._pairs[slot] = (stored_key, combine(stored_value, value))
            return False
        if len(self._pairs) >= self.capacity:
            raise ResourceExhaustedError(
                f"spillover bucket overflow (capacity {self.capacity})"
            )
        # ``setdefault`` keeps the *first* slot for a key stored repeatedly
        # without ``combine``, matching the old scan-from-the-front merge.
        self._slots.setdefault(key, len(self._pairs))
        self._pairs.append((key, value))
        return True

    def flush(self) -> list[tuple[Any, Any]]:
        """Remove and return all buffered pairs in FIFO order."""
        pairs, self._pairs = self._pairs, []
        self._slots = {}
        return pairs

    def peek(self) -> tuple[tuple[Any, Any], ...]:
        """Snapshot of the buffered pairs without flushing them."""
        return tuple(self._pairs)
