"""Match-action tables and flow rules.

A P4 program declares tables; the control plane populates them with entries at
run time ("the controller can configure a P4 data plane by pushing flow rules
to a set of tables", Section 5). This module models exact-match and ternary
tables with priorities and default actions, plus the :class:`FlowRule`
representation that the controller pushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.errors import TableError
from repro.dataplane.actions import Action, NoAction, PacketContext

#: Wildcard marker usable in ternary match keys.
WILDCARD = "*"


def _canonical_key(match: Mapping[str, Any]) -> tuple | None:
    """Hashable canonical form of an exact-match key (``None`` if unhashable).

    Items are ordered by field name so the form is independent of dict
    insertion order; field names are unique, so values never take part in the
    sort comparison.
    """
    try:
        key = tuple(sorted(match.items(), key=_item_field))
        hash(key)
    except TypeError:
        return None
    return key


def _item_field(item: tuple[str, Any]) -> str:
    return item[0]


@dataclass(frozen=True)
class FlowRule:
    """A single control-plane rule destined for one table on one switch.

    Parameters
    ----------
    table:
        Name of the table the rule belongs to.
    match:
        Mapping from match-field name to the value to match (or
        :data:`WILDCARD` for ternary tables).
    action_name:
        Name of the action to run, resolved against the table's registered
        action set.
    action_params:
        Parameters bound to the action when the rule is installed.
    priority:
        Higher priority wins when several ternary entries match.
    """

    table: str
    match: tuple[tuple[str, Any], ...]
    action_name: str
    action_params: tuple[tuple[str, Any], ...] = ()
    priority: int = 0

    @classmethod
    def create(
        cls,
        table: str,
        match: Mapping[str, Any],
        action_name: str,
        action_params: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> "FlowRule":
        """Build a rule from plain dictionaries (hashable canonical form)."""
        return cls(
            table=table,
            match=tuple(sorted(match.items())),
            action_name=action_name,
            action_params=tuple(sorted((action_params or {}).items())),
            priority=priority,
        )

    def match_dict(self) -> dict[str, Any]:
        """The match fields as a dictionary."""
        return dict(self.match)

    def params_dict(self) -> dict[str, Any]:
        """The action parameters as a dictionary."""
        return dict(self.action_params)


@dataclass
class TableEntry:
    """An installed table entry: match key, bound action, priority."""

    match: dict[str, Any]
    action: Action
    priority: int = 0


class MatchActionTable:
    """An exact-match or ternary match-action table.

    Parameters
    ----------
    name:
        Table name (used by :class:`FlowRule` routing).
    match_fields:
        Ordered names of the fields this table matches on. Lookup keys are
        built from packet metadata using these names.
    match_kind:
        ``"exact"`` or ``"ternary"``. Ternary tables honour :data:`WILDCARD`
        in entry match values and resolve overlaps by priority.
    max_entries:
        Capacity of the table (TCAM/SRAM entries are a scarce resource).
    """

    def __init__(
        self,
        name: str,
        match_fields: Iterable[str],
        match_kind: str = "exact",
        max_entries: int = 4096,
    ) -> None:
        if match_kind not in ("exact", "ternary"):
            raise TableError(f"unsupported match kind {match_kind!r}")
        self.name = name
        self.match_fields = tuple(match_fields)
        if not self.match_fields:
            raise TableError(f"table {name!r} must declare at least one match field")
        self.match_kind = match_kind
        self.max_entries = max_entries
        self.default_action: Action = NoAction()
        self._entries: list[TableEntry] = []
        self._actions: dict[str, type[Action] | Action] = {}
        self.hit_count = 0
        self.miss_count = 0
        # Exact-match acceleration: entries whose match values are hashable
        # live in a dict keyed by their canonical (sorted-by-field) item
        # tuple, so a lookup is O(1) instead of a scan over every installed
        # entry (the forwarding table holds one entry per reachable host, so
        # the scan was O(hosts) per packet at cluster scale). Entries with
        # unhashable match values fall back to the linear list.
        self._exact_index: dict[tuple, TableEntry] = {}
        self._unindexed: list[TableEntry] = []
        #: Bumped on every control-plane mutation; lets callers cache lookup
        #: results and revalidate with a single integer comparison.
        self.version = 0
        self._sorted_fields = tuple(sorted(self.match_fields))
        #: Single-field exact tables (the common case: ``dst`` forwarding,
        #: ``tree_id`` steering) skip the per-packet key-tuple genexpr.
        self._single_field = (
            self._sorted_fields[0] if len(self._sorted_fields) == 1 else None
        )

    def register_action(self, name: str, action: type[Action] | Action) -> None:
        """Make an action available to flow rules under ``name``."""
        self._actions[name] = action

    def set_default_action(self, action: Action) -> None:
        """Action executed on a table miss."""
        self.default_action = action
        self.version += 1

    def install(self, rule: FlowRule) -> TableEntry:
        """Install a control-plane rule, returning the created entry."""
        if rule.table != self.name:
            raise TableError(
                f"rule for table {rule.table!r} installed into table {self.name!r}"
            )
        if len(self._entries) >= self.max_entries:
            raise TableError(f"table {self.name!r} is full ({self.max_entries} entries)")
        missing = set(self.match_fields) - set(rule.match_dict())
        if missing:
            raise TableError(
                f"rule for table {self.name!r} missing match fields {sorted(missing)}"
            )
        action = self._resolve_action(rule)
        entry = TableEntry(match=rule.match_dict(), action=action, priority=rule.priority)
        if self.match_kind == "exact" and self._find_exact(entry.match) is not None:
            raise TableError(
                f"duplicate exact-match entry in table {self.name!r}: {entry.match}"
            )
        self._entries.append(entry)
        self.version += 1
        if self.match_kind == "exact":
            key = _canonical_key(entry.match)
            if key is None:
                self._unindexed.append(entry)
            else:
                self._exact_index[key] = entry
        if self.match_kind == "ternary":
            self._entries.sort(key=lambda e: -e.priority)
        return entry

    def remove(self, match: Mapping[str, Any]) -> bool:
        """Remove the entry with the given match key; returns ``True`` if found."""
        target = dict(match)
        for i, entry in enumerate(self._entries):
            if entry.match == target:
                del self._entries[i]
                self.version += 1
                key = _canonical_key(entry.match)
                if key is not None:
                    self._exact_index.pop(key, None)
                elif entry in self._unindexed:
                    self._unindexed.remove(entry)
                return True
        return False

    def clear(self) -> None:
        """Remove every installed entry."""
        self._entries.clear()
        self._exact_index.clear()
        self._unindexed.clear()
        self.version += 1

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> tuple[TableEntry, ...]:
        """Snapshot of the installed entries."""
        return tuple(self._entries)

    def lookup(self, key: Mapping[str, Any]) -> TableEntry | None:
        """Find the matching entry for a lookup key (no side effects)."""
        if self.match_kind == "exact":
            return self._find_exact(dict(key))
        for entry in self._entries:
            if self._ternary_matches(entry.match, key):
                return entry
        return None

    def apply(self, ctx: PacketContext) -> bool:
        """Run the table against a packet context.

        Builds the lookup key from ``ctx.metadata`` using the declared match
        fields, executes the matching entry's action (or the default action on
        a miss), and returns whether the lookup hit.
        """
        ctx.charge(1)
        metadata = ctx.metadata
        if self.match_kind == "exact":
            # Hot path: one dict probe against the canonical key; no
            # intermediate lookup dictionary is built.
            field = self._single_field
            try:
                if field is not None:
                    entry = self._exact_index.get(((field, metadata.get(field)),))
                else:
                    entry = self._exact_index.get(
                        tuple((f, metadata.get(f)) for f in self._sorted_fields)
                    )
            except TypeError:  # unhashable metadata value
                entry = None
            if entry is None and self._unindexed:
                entry = self._scan_exact({f: metadata.get(f) for f in self.match_fields})
        else:
            key = {f: metadata.get(f) for f in self.match_fields}
            entry = self.lookup(key)
        if entry is None:
            self.miss_count += 1
            self.default_action(ctx)
            return False
        self.hit_count += 1
        entry.action(ctx)
        return True

    def _resolve_action(self, rule: FlowRule) -> Action:
        spec = self._actions.get(rule.action_name)
        if spec is None:
            raise TableError(
                f"table {self.name!r} has no action named {rule.action_name!r}"
            )
        if isinstance(spec, Action):
            if rule.action_params:
                raise TableError(
                    f"action {rule.action_name!r} is a shared instance and does not "
                    "accept per-rule parameters"
                )
            return spec
        return spec(**rule.params_dict())

    def _find_exact(self, key: dict[str, Any]) -> TableEntry | None:
        canonical = _canonical_key(key)
        if canonical is not None:
            entry = self._exact_index.get(canonical)
            if entry is not None:
                return entry
            if not self._unindexed:
                return None
        return self._scan_exact(key)

    def _scan_exact(self, key: dict[str, Any]) -> TableEntry | None:
        for entry in self._entries:
            if entry.match == key:
                return entry
        return None

    @staticmethod
    def _ternary_matches(entry_match: Mapping[str, Any], key: Mapping[str, Any]) -> bool:
        for field_name, expected in entry_match.items():
            if expected == WILDCARD:
                continue
            if key.get(field_name) != expected:
                return False
        return True
