"""Multi-stage match-action pipeline.

The RMT architecture processes every packet through a fixed sequence of
match-action stages; each stage holds one or more tables and has a bounded
amount of work it can do. :class:`Pipeline` models that: stages are applied in
order, the total number of stages is limited by the target resources, and the
per-packet operation counter is threaded through every action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import PipelineError
from repro.dataplane.actions import PacketContext
from repro.dataplane.resources import PacketOpCounter, SwitchResources
from repro.dataplane.tables import MatchActionTable

#: A stage step is either a table or an extern callable applied to the context.
StageStep = MatchActionTable | Callable[[PacketContext], None]


def _charged_extern(step: Callable[[PacketContext], None]) -> Callable[[PacketContext], None]:
    """Bind an extern step with its one-op charge (pipeline compilation)."""

    def run(ctx: PacketContext) -> None:
        ctx.charge(1)
        step(ctx)

    return run


@dataclass
class PipelineStage:
    """One physical stage of the pipeline, holding an ordered list of steps."""

    name: str
    steps: list[StageStep] = field(default_factory=list)

    def add_table(self, table: MatchActionTable) -> MatchActionTable:
        """Place a match-action table in this stage."""
        self.steps.append(table)
        return table

    def add_extern(self, func: Callable[[PacketContext], None]) -> None:
        """Place an extern (stateful black box, e.g. the DAIET aggregator)."""
        self.steps.append(func)

    def apply(self, ctx: PacketContext) -> None:
        """Run every step of the stage unless the packet was dropped/consumed."""
        metadata = ctx.metadata
        for step in self.steps:
            if metadata.get("drop") or metadata.get("consumed"):
                return
            if isinstance(step, MatchActionTable):
                step.apply(ctx)
            else:
                ctx.charge(1)
                step(ctx)


class Pipeline:
    """An ordered list of stages bounded by the target's stage budget."""

    def __init__(self, resources: SwitchResources | None = None, name: str = "ingress") -> None:
        self.name = name
        self.resources = resources or SwitchResources()
        self._stages: list[PipelineStage] = []
        self.packets_processed = 0
        self.packets_dropped = 0
        #: Compiled per-step callables flattened across every stage, and the
        #: source steps they were compiled from. The source list is identity-
        #: compared on every packet, so appends, removals *and* in-place step
        #: replacements all invalidate the compilation. Processing checks
        #: drop/consumed before every step either way, so stage boundaries
        #: carry no extra semantics on the hot path.
        self._flat_ops: list[Callable[[PacketContext], None]] = []
        self._flat_src: list[StageStep] = []

    def add_stage(self, name: str | None = None) -> PipelineStage:
        """Append a new stage; fails when the target has no stage left."""
        if len(self._stages) >= self.resources.pipeline_stages:
            raise PipelineError(
                f"pipeline {self.name!r} exceeds the target's "
                f"{self.resources.pipeline_stages}-stage budget"
            )
        stage = PipelineStage(name=name or f"stage{len(self._stages)}")
        self._stages.append(stage)
        return stage

    @property
    def stages(self) -> tuple[PipelineStage, ...]:
        """Snapshot of the configured stages."""
        return tuple(self._stages)

    def tables(self) -> dict[str, MatchActionTable]:
        """All tables in the pipeline, keyed by table name."""
        found: dict[str, MatchActionTable] = {}
        for stage in self._stages:
            for step in stage.steps:
                if isinstance(step, MatchActionTable):
                    if step.name in found:
                        raise PipelineError(f"duplicate table name {step.name!r}")
                    found[step.name] = step
        return found

    def process(
        self, packet: Any, ingress_port: int, _ctx: PacketContext | None = None
    ) -> PacketContext:
        """Run one packet through every stage and return the final context.

        ``_ctx`` is a recycled context provided by a trusted caller (the
        switch fast path); its metadata dict and emitted list must already be
        fresh. External callers omit it and receive a brand-new context.
        """
        metadata = {"ingress_port": ingress_port, "drop": False, "consumed": False}
        if _ctx is None:
            ctx = PacketContext(
                packet=packet,
                metadata=metadata,
                ops=PacketOpCounter(limit=self.resources.max_ops_per_packet),
            )
        else:
            ctx = _ctx
            ctx.packet = packet
            ctx.metadata = metadata
        src = self._flat_src
        n_src = len(src)
        index = 0
        stale = False
        for stage in self._stages:
            for step in stage.steps:
                if index >= n_src or src[index] is not step:
                    stale = True
                    break
                index += 1
            if stale:
                break
        if stale or index != n_src:
            self._flat_src = [
                step for stage in self._stages for step in stage.steps
            ]
            self._flat_ops = [
                step.apply
                if isinstance(step, MatchActionTable)
                else _charged_extern(step)
                for step in self._flat_src
            ]
        for op in self._flat_ops:
            if metadata["drop"] or metadata["consumed"]:
                break
            op(ctx)
        self.packets_processed += 1
        if metadata["drop"]:
            self.packets_dropped += 1
        return ctx
