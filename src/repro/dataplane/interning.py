"""Global key interning for the vectorized register kernel.

The vectorized data plane (see ``dataplane/README.md``) operates on *key
ids* — small dense integers — instead of the key objects themselves, so a
whole burst of key-value pairs can be hashed, occupancy-checked and
scatter-added with numpy array operations. This module owns the process-wide
``key -> kid`` mapping and the per-key metadata the fast paths need:

* ``crc``      — ``zlib.crc32`` of the encoded key, so a register index is
  one modulo away (``crc % slots``) without re-encoding the key,
* ``enc_len``  — encoded byte length (packet sizing),
* ``ends_nul`` — whether the encoded key ends in a NUL byte (the condition
  that forces per-pair key-length bytes on the wire).

Interning is append-only and process-global: kids are stable for the
lifetime of the process, which is what lets immutable packets cache their
kid arrays and per-tree state memoize ``kid -> register slot``. Only exact
``str``/``bytes`` keys are interned — anything else makes a packet
ineligible for the vectorized path and it falls back, per pair, to the
bit-exact Algorithm 1 loop.
"""

from __future__ import annotations

import zlib
from typing import Any

#: key object -> kid (dense, append-only).
_key_to_kid: dict[Any, int] = {}
#: kid -> the interned key object (first object interned for that key).
_kid_key: list[Any] = []
#: kid -> crc32 of the encoded key.
_kid_crc: list[int] = []
#: kid -> encoded byte length of the key.
_kid_enc_len: list[int] = []
#: kid -> True when the encoded key ends in a NUL byte.
_kid_ends_nul: list[bool] = []


def intern_key(key: Any) -> int:
    """Return the stable kid of ``key``, interning it on first sight.

    Raises ``TypeError`` for keys that are not exact ``str``/``bytes`` —
    callers treat that as "not vectorizable" and fall back to the per-pair
    path, which supports anything the wire format supports.
    """
    kid = _key_to_kid.get(key)
    if kid is not None:
        return kid
    if type(key) is str:
        encoded = key.encode()
    elif type(key) is bytes:
        encoded = key
    else:
        raise TypeError(f"only str/bytes keys are interned, got {type(key).__name__}")
    kid = len(_kid_key)
    _key_to_kid[key] = kid
    _kid_key.append(key)
    _kid_crc.append(zlib.crc32(encoded))
    _kid_enc_len.append(len(encoded))
    _kid_ends_nul.append(encoded.endswith(b"\x00"))
    return kid


def key_of(kid: int) -> Any:
    """The key object a kid stands for."""
    return _kid_key[kid]


def crc_of(kid: int) -> int:
    """``zlib.crc32`` of a kid's encoded key (register index = crc % slots)."""
    return _kid_crc[kid]


def enc_len_of(kid: int) -> int:
    """Encoded byte length of a kid's key."""
    return _kid_enc_len[kid]


def ends_nul_of(kid: int) -> bool:
    """True when the kid's encoded key ends in a NUL byte."""
    return _kid_ends_nul[kid]


def pool_size() -> int:
    """Number of kids interned so far (exclusive upper bound of every kid)."""
    return len(_kid_key)
