"""A programmable switch: parser + pipeline + registers + ports.

:class:`ProgrammableSwitch` is the functional model of one Tofino/bmv2-class
device. It is deliberately independent of the network simulator: it consumes a
packet on an ingress port and returns the list of packets to transmit, so it
can be unit-tested in isolation and wrapped by
:class:`repro.netsim.devices.SwitchDevice` for end-to-end runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import PacketFormatError, PipelineError, TableError
from repro.dataplane.actions import PacketContext
from repro.dataplane.parser import HeaderParser, ParseResult
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.resources import PacketOpCounter, ResourceLedger, SwitchResources
from repro.dataplane.tables import FlowRule, MatchActionTable

#: Egress port value meaning "broadcast to every port except the ingress one".
BROADCAST_PORT = -1


@dataclass
class SwitchCounters:
    """Aggregate per-switch counters used by the evaluation harness."""

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    packets_generated: int = 0
    #: Packets whose on-the-wire size could not be determined; every such
    #: packet is a ledger warning, because the byte counters undercount it.
    unsized_packets: int = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "packets_generated": self.packets_generated,
            "unsized_packets": self.unsized_packets,
        }


class ProgrammableSwitch:
    """Functional model of a programmable match-action switch.

    Parameters
    ----------
    name:
        Device name (unique within a topology).
    num_ports:
        Number of front-panel ports.
    resources:
        The target resource budget; defaults to a Tofino-like profile.
    """

    def __init__(
        self,
        name: str,
        num_ports: int = 64,
        resources: SwitchResources | None = None,
    ) -> None:
        if num_ports <= 0:
            raise PipelineError("a switch needs at least one port")
        self.name = name
        self.num_ports = num_ports
        self.resources = resources or SwitchResources()
        self.ledger = ResourceLedger(budget=self.resources)
        self.parser = HeaderParser(self.resources)
        self.pipeline = Pipeline(self.resources, name=f"{name}.ingress")
        self.counters = SwitchCounters()
        self.externs: dict[str, Any] = {}
        #: Recycled per-packet context (one packet in flight per switch at a
        #: time in the discrete-event model); the metadata dict and emitted
        #: list are refreshed per packet, only the shells are reused.
        self._ctx = PacketContext(packet=None, ops=PacketOpCounter(limit=self.resources.max_ops_per_packet))

    # ------------------------------------------------------------------ #
    # Control-plane interface
    # ------------------------------------------------------------------ #
    def install_rule(self, rule: FlowRule) -> None:
        """Install a flow rule into the named table."""
        table = self._table(rule.table)
        table.install(rule)

    def install_rules(self, rules: list[FlowRule]) -> int:
        """Install a batch of rules; returns the number installed."""
        for rule in rules:
            self.install_rule(rule)
        return len(rules)

    def remove_rule(self, table_name: str, match: dict[str, Any]) -> bool:
        """Remove a rule from a table by its match key."""
        return self._table(table_name).remove(match)

    def register_extern(self, name: str, extern: Any) -> None:
        """Attach a stateful extern object (e.g. a DAIET aggregation engine)."""
        self.externs[name] = extern

    def get_extern(self, name: str) -> Any:
        """Return a previously registered extern."""
        if name not in self.externs:
            raise PipelineError(f"switch {self.name!r} has no extern named {name!r}")
        return self.externs[name]

    def _table(self, table_name: str) -> MatchActionTable:
        tables = self.pipeline.tables()
        if table_name not in tables:
            raise TableError(
                f"switch {self.name!r} has no table named {table_name!r}; "
                f"available: {sorted(tables)}"
            )
        return tables[table_name]

    # ------------------------------------------------------------------ #
    # Data-plane interface
    # ------------------------------------------------------------------ #
    def receive(
        self, packet: Any, ingress_port: int, nbytes: int | None = None
    ) -> list[tuple[int, Any]]:
        """Process one packet; return ``(egress_port, packet)`` transmissions.

        The returned list contains zero entries when the packet was dropped or
        fully absorbed by an extern, one entry for plain forwarding, and
        possibly several entries when the pipeline emitted switch-generated
        packets (e.g. DAIET flushes) or the packet was broadcast.

        ``nbytes`` is the packet's wire size when the caller (the simulator
        fast path) already knows it; sizing is re-derived otherwise.
        """
        if not 0 <= ingress_port < self.num_ports:
            raise PipelineError(
                f"ingress port {ingress_port} out of range for switch {self.name!r}"
            )
        counters = self.counters
        counters.packets_in += 1
        counters.bytes_in += (
            nbytes if nbytes is not None else _packet_bytes(packet, counters)
        )

        # Fast path: the parser only enforces the parse-depth budget here;
        # full header extraction (ParseResult) stays available via
        # :meth:`parse_only` for tests and diagnostics.
        parsed_bytes = self.parser.charge(packet)
        ctx = self._ctx
        ctx.ops.used = 0
        ctx.emitted = []
        ctx = self.pipeline.process(packet, ingress_port, _ctx=ctx)
        metadata = ctx.metadata
        metadata["parsed_bytes"] = parsed_bytes

        out: list[tuple[int, Any]] = []
        if not metadata.get("drop") and not metadata.get("consumed"):
            egress = metadata.get("egress_port")
            if egress is None:
                # No forwarding decision: drop, as real switches do on a miss.
                counters.packets_dropped += 1
            elif egress == BROADCAST_PORT:
                for port in range(self.num_ports):
                    if port != ingress_port:
                        out.append((port, packet))
            else:
                out.append((int(egress), packet))
        elif metadata.get("drop"):
            counters.packets_dropped += 1

        emitted = ctx.emitted
        if emitted:
            out.extend(emitted)
            counters.packets_generated += len(emitted)

        if out:
            counters.packets_out += len(out)
            if len(out) == 1 and out[0][1] is packet and nbytes is not None:
                counters.bytes_out += nbytes
            else:
                for _, pkt in out:
                    counters.bytes_out += _packet_bytes(pkt, counters)
        return out

    def parse_only(self, packet: Any) -> ParseResult:
        """Run only the parser (used by tests and diagnostics)."""
        return self.parser.parse(packet)


def _packet_bytes(packet: Any, counters: SwitchCounters | None = None) -> int:
    """Best-effort serialized size of a packet object.

    Prefers the packet's own ``wire_bytes()``/``length``; packets exposing
    only ``encode()`` are sized by serializing them. A packet with none of
    these would silently zero the ``bytes_in``/``bytes_out`` ledgers, so it is
    recorded as an ``unsized_packets`` warning instead of being ignored.
    """
    size_fn = getattr(packet, "wire_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    length = getattr(packet, "length", None)
    if isinstance(length, int):
        return length
    encode = getattr(packet, "encode", None)
    if callable(encode):
        # Only the errors a malformed packet's serializer actually raises:
        # anything else (assertion failures, sanitizer errors, attribute
        # bugs) must propagate rather than be silently absorbed as "unsized".
        try:
            return len(encode())
        except (TypeError, ValueError, PacketFormatError):
            pass
    if counters is not None:
        counters.unsized_packets += 1
    return 0
