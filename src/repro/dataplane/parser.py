"""Packet parser model with a bounded parse depth.

Hardware P4 parsers can only inspect the first few hundred bytes of a packet
("around 200-300 B", Section 5), which is why one DAIET packet carries at most
~10 key-value pairs. The :class:`HeaderParser` here enforces that limit: it
walks a stack of headers and stops (raising) if the program would need to look
deeper into the packet than the target allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.core.errors import PacketFormatError, ResourceExhaustedError
from repro.dataplane.resources import SwitchResources


class ParsableHeader(Protocol):
    """Anything exposing a serialized byte length can be parsed."""

    def byte_length(self) -> int:
        """Serialized length of the header in bytes."""
        ...


@dataclass
class ParseResult:
    """Outcome of parsing one packet.

    Attributes
    ----------
    headers:
        Mapping from header name to the extracted header object.
    parsed_bytes:
        Total bytes the parser had to look at.
    """

    headers: dict[str, Any]
    parsed_bytes: int

    def get(self, name: str) -> Any:
        """Return a parsed header by name, or ``None``."""
        return self.headers.get(name)


class HeaderParser:
    """Parser driven by the packets' own self-describing header stacks.

    Simulated packets (see :mod:`repro.core.packet` and
    :mod:`repro.transport`) expose a ``header_stack()`` method returning an
    ordered list of ``(name, header, nbytes)`` tuples. The parser extracts them
    in order while charging the parse-depth budget.
    """

    def __init__(self, resources: SwitchResources | None = None) -> None:
        self.resources = resources or SwitchResources()
        self.packets_parsed = 0
        self.bytes_parsed = 0

    def parse(self, packet: Any) -> ParseResult:
        """Parse ``packet`` and return the extracted headers.

        Raises
        ------
        PacketFormatError
            If the packet does not expose a ``header_stack()`` method.
        ResourceExhaustedError
            If extracting the headers would exceed the target's parse-depth
            budget (``max_parse_bytes``).
        """
        stack_fn = getattr(packet, "header_stack", None)
        if stack_fn is None:
            raise PacketFormatError(
                f"object of type {type(packet).__name__} is not a parsable packet"
            )
        headers: dict[str, Any] = {}
        parsed_bytes = 0
        for name, header, nbytes in stack_fn():
            if nbytes < 0:
                raise PacketFormatError(f"header {name!r} reports a negative length")
            parsed_bytes += nbytes
            if parsed_bytes > self.resources.max_parse_bytes:
                raise ResourceExhaustedError(
                    f"parse depth exceeded: header {name!r} ends at byte "
                    f"{parsed_bytes}, target limit is {self.resources.max_parse_bytes}"
                )
            headers[name] = header
        self.packets_parsed += 1
        self.bytes_parsed += parsed_bytes
        return ParseResult(headers=headers, parsed_bytes=parsed_bytes)

    def charge(self, packet: Any) -> int:
        """Enforce the parse-depth budget without extracting header objects.

        The data-plane fast path: per-hop processing only needs to know that
        the packet *would* parse within ``max_parse_bytes``, so packets that
        expose a cached ``header_sizes()`` profile (see
        :meth:`repro.core.packet.DaietPacket.header_sizes`) are charged from
        it directly — no per-header metadata dictionaries are built. Packets
        without the fast-path method fall through to a full :meth:`parse`.

        Raises the same errors as :meth:`parse` and updates the same
        ``packets_parsed``/``bytes_parsed`` counters; returns the parsed byte
        count.
        """
        total_fn = getattr(packet, "parse_depth_bytes", None)
        if total_fn is not None:
            # Happy path: one cached integer against the budget. Header
            # sizes are non-negative, so the total fits within the budget
            # exactly when every prefix does.
            parsed_bytes = total_fn()
            if parsed_bytes <= self.resources.max_parse_bytes:
                self.packets_parsed += 1
                self.bytes_parsed += parsed_bytes
                return parsed_bytes
        sizes_fn = getattr(packet, "header_sizes", None)
        if sizes_fn is None:
            return self.parse(packet).parsed_bytes
        parsed_bytes = 0
        limit = self.resources.max_parse_bytes
        for name, nbytes in sizes_fn():
            if nbytes < 0:
                raise PacketFormatError(f"header {name!r} reports a negative length")
            parsed_bytes += nbytes
            if parsed_bytes > limit:
                raise ResourceExhaustedError(
                    f"parse depth exceeded: header {name!r} ends at byte "
                    f"{parsed_bytes}, target limit is {limit}"
                )
        self.packets_parsed += 1
        self.bytes_parsed += parsed_bytes
        return parsed_bytes

    def max_pairs_per_packet(self, preamble_bytes: int, pair_bytes: int) -> int:
        """How many fixed-size pairs fit within the parse-depth budget.

        Helper used by configuration validation: with a 300 B parse budget,
        an 8 B preamble and 20 B pairs, at most 14 pairs could ever be parsed;
        the paper conservatively uses 10.
        """
        if pair_bytes <= 0:
            raise PacketFormatError("pair_bytes must be positive")
        available = self.resources.max_parse_bytes - preamble_bytes
        return max(0, available // pair_bytes)
