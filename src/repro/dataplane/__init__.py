"""Programmable data-plane substrate (RMT/P4-style switch model).

This subpackage models the "network machine architecture" the paper targets:
register arrays, index stacks and spillover buckets (:mod:`registers`), the
resource limits of the ASIC (:mod:`resources`), match-action tables and flow
rules (:mod:`tables`), the bounded-depth parser (:mod:`parser`), the
multi-stage pipeline (:mod:`pipeline`) and the full switch (:mod:`switch`).
"""

from repro.dataplane.actions import (
    Action,
    ActionSequence,
    CallableAction,
    DropAction,
    ForwardAction,
    NoAction,
    PacketContext,
    SetMetadataAction,
)
from repro.dataplane.parser import HeaderParser, ParseResult
from repro.dataplane.pipeline import Pipeline, PipelineStage
from repro.dataplane.registers import IndexStack, RegisterArray, SpilloverBucket
from repro.dataplane.resources import (
    PacketOpCounter,
    ResourceLedger,
    SwitchResources,
)
from repro.dataplane.switch import BROADCAST_PORT, ProgrammableSwitch, SwitchCounters
from repro.dataplane.tables import WILDCARD, FlowRule, MatchActionTable, TableEntry

__all__ = [
    "Action",
    "ActionSequence",
    "CallableAction",
    "DropAction",
    "ForwardAction",
    "NoAction",
    "PacketContext",
    "SetMetadataAction",
    "HeaderParser",
    "ParseResult",
    "Pipeline",
    "PipelineStage",
    "IndexStack",
    "RegisterArray",
    "SpilloverBucket",
    "PacketOpCounter",
    "ResourceLedger",
    "SwitchResources",
    "BROADCAST_PORT",
    "ProgrammableSwitch",
    "SwitchCounters",
    "WILDCARD",
    "FlowRule",
    "MatchActionTable",
    "TableEntry",
]
