"""DAIET network controller.

"Prior to starting a job, the master allocates the map and reduce jobs to the
workers. This allocation information is exchanged with the network controller.
Then, the controller defines the aggregation trees [...] The network controller
then configures the network devices, pushing a set of flow rules, to perform
the per-tree aggregation and forward the traffic according to the tree."
(Section 4.)

:class:`DaietController` implements that control plane against the simulated
topology: it builds one :class:`~repro.core.tree.AggregationTree` per reducer,
allocates switch SRAM for the per-tree registers, attaches the aggregation
extern to each on-tree switch and pushes the steering flow rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.aggregation import DaietAggregationEngine, TreeCounters
from repro.core.config import DaietConfig
from repro.core.errors import ControllerError
from repro.core.functions import AggregationFunction, get as get_function
from repro.core.tree import AggregationTree
from repro.dataplane.actions import CallableAction
from repro.dataplane.tables import FlowRule
from repro.netsim.devices import DAIET_TABLE, SwitchDevice
from repro.netsim.topology import Topology

#: Action name under which the aggregation extern is registered in the
#: ``daiet_steer`` table of every switch.
AGGREGATE_ACTION = "aggregate"


@dataclass
class JobAllocation:
    """The master-to-controller hand-off: which hosts run mappers and reducers."""

    mappers: tuple[str, ...]
    reducers: tuple[str, ...]
    function_name: str = "sum"

    def __post_init__(self) -> None:
        if not self.mappers:
            raise ControllerError("a job needs at least one mapper")
        if not self.reducers:
            raise ControllerError("a job needs at least one reducer")


@dataclass
class InstalledJob:
    """Controller bookkeeping for one installed job."""

    allocation: JobAllocation
    trees: dict[str, AggregationTree] = field(default_factory=dict)
    rules_installed: int = 0

    def tree_for_reducer(self, reducer: str) -> AggregationTree:
        """The aggregation tree rooted at ``reducer``."""
        try:
            return self.trees[reducer]
        except KeyError as exc:
            raise ControllerError(f"no tree installed for reducer {reducer!r}") from exc

    def tree_ids(self) -> dict[str, int]:
        """Mapping reducer host -> tree id."""
        return {reducer: tree.tree_id for reducer, tree in self.trees.items()}


class DaietController:
    """The SDN controller configuring DAIET state on the simulated fabric."""

    def __init__(self, topology: Topology, config: DaietConfig | None = None) -> None:
        self.topology = topology
        self.config = config or DaietConfig()
        self.engines: dict[str, DaietAggregationEngine] = {}
        self.jobs: list[InstalledJob] = []
        self._next_tree_id = 1

    # ------------------------------------------------------------------ #
    # Job installation
    # ------------------------------------------------------------------ #
    def install_job(
        self,
        mappers: Iterable[str],
        reducers: Iterable[str],
        function: str | AggregationFunction = "sum",
        policy: str | None = None,
    ) -> InstalledJob:
        """Build and install one aggregation tree per reducer.

        Mappers co-located with a reducer are excluded from that reducer's
        tree (their traffic never enters the network), matching how a local
        partition is exchanged through shared memory in the real deployment.

        ``policy`` overrides the config's ``reliability_policy`` for every
        tree of this job (per-class selective reliability); ``None``
        inherits the config's policy.
        """
        function_obj = function if isinstance(function, AggregationFunction) else get_function(function)
        allocation = JobAllocation(
            mappers=tuple(mappers),
            reducers=tuple(reducers),
            function_name=function_obj.name,
        )
        job = InstalledJob(allocation=allocation)
        for reducer in allocation.reducers:
            tree_mappers = [m for m in allocation.mappers if m != reducer]
            if not tree_mappers:
                raise ControllerError(
                    f"reducer {reducer!r} has no remote mappers to aggregate from"
                )
            tree = AggregationTree.build(
                self.topology,
                tree_id=self._next_tree_id,
                reducer=reducer,
                mappers=tree_mappers,
            )
            self._next_tree_id += 1
            job.rules_installed += self._install_tree(tree, function_obj, policy=policy)
            job.trees[reducer] = tree
        self.jobs.append(job)
        return job

    def _install_tree(
        self,
        tree: AggregationTree,
        function: AggregationFunction,
        policy: str | None = None,
    ) -> int:
        rules = 0
        for node in tree.switches():
            device = self.topology.get(node.name)
            if not isinstance(device, SwitchDevice):
                raise ControllerError(f"tree switch {node.name!r} is not a switch device")
            if node.parent is None:
                raise ControllerError(
                    f"switch {node.name!r} is the root of tree {tree.tree_id}; "
                    "trees must be rooted at the reducer host"
                )
            engine = self._engine_for(device)
            egress_port = self.topology.port_towards(node.name, node.parent)
            num_children = tree.children_count(node.name)
            children = tree.node(node.name).children
            child_ports = {
                child: self.topology.port_towards(node.name, child)
                for child in children
            }
            state = engine.configure_tree(
                tree_id=tree.tree_id,
                function=function,
                num_children=num_children,
                egress_port=egress_port,
                next_hop_dst=tree.reducer,
                config=self.config,
                child_ports=child_ports,
                switch_children=tuple(
                    child
                    for child in children
                    if isinstance(self.topology.get(child), SwitchDevice)
                ),
                policy=policy,
            )
            device.switch.ledger.allocate_sram(
                owner=f"tree{tree.tree_id}", nbytes=state.config.sram_bytes()
            )
            rule = FlowRule.create(
                table=DAIET_TABLE,
                match={"tree_id": tree.tree_id},
                action_name=AGGREGATE_ACTION,
            )
            device.switch.install_rule(rule)
            rules += 1
        return rules

    def _engine_for(self, device: SwitchDevice) -> DaietAggregationEngine:
        if device.name not in self.engines:
            engine = DaietAggregationEngine(device.name)
            self.engines[device.name] = engine
            device.switch.register_extern("daiet", engine)
            device.daiet_table.register_action(
                AGGREGATE_ACTION, CallableAction(func=engine.pipeline_action, name=AGGREGATE_ACTION)
            )
        return self.engines[device.name]

    # ------------------------------------------------------------------ #
    # Teardown, re-planning and introspection
    # ------------------------------------------------------------------ #
    def _teardown_tree(self, tree: AggregationTree) -> None:
        """Release everything one tree holds on its switches.

        Engine state, the steering entry, the SRAM allocation *and* the
        compiled-path steering memo are all dropped, so repeated
        install/teardown cycles (failover re-plans) leak nothing. Safe on
        crashed switches whose tables were already wiped: every removal is
        idempotent.
        """
        for node in tree.switches():
            device = self.topology.get(node.name)
            if not isinstance(device, SwitchDevice):
                continue
            engine = self.engines.get(node.name)
            if engine is not None:
                engine.remove_tree(tree.tree_id)
            device.daiet_table.remove({"tree_id": tree.tree_id})
            device.switch.ledger.release_sram(f"tree{tree.tree_id}")
            # The steering memo is keyed by tree id; version bumps already
            # invalidate stale entries, but dead ids would otherwise pile up
            # across re-plan cycles.
            device._fast_cache.pop(tree.tree_id, None)

    def remove_job(self, job: InstalledJob) -> None:
        """Remove a job's trees, rules and SRAM allocations."""
        for tree in job.trees.values():
            self._teardown_tree(tree)
        if job in self.jobs:
            self.jobs.remove(job)

    def replan_tree(
        self,
        job: InstalledJob,
        reducer: str,
        exclude: Iterable[str] = (),
        policy: str | None = None,
    ) -> AggregationTree:
        """Re-plan one reducer's tree around the devices in ``exclude``.

        The old tree is fully torn down (resources released on every
        surviving switch) and a replacement is built through the remaining
        fabric under a **fresh tree id** — a new epoch. The new id makes
        every stray packet of the dead epoch harmless: without a steering
        entry it is plain-forwarded, and receivers filter by tree id.

        Raises :class:`~repro.core.errors.RoutingError` when a mapper
        cannot reach the reducer without the excluded devices; the old
        tree's resources stay released in that case (the job is degraded,
        not half-installed).
        """
        old = job.tree_for_reducer(reducer)
        self._teardown_tree(old)
        tree = AggregationTree.build(
            self.topology,
            tree_id=self._next_tree_id,
            reducer=reducer,
            mappers=old.mappers,
            exclude=exclude,
        )
        self._next_tree_id += 1
        function_obj = get_function(job.allocation.function_name)
        job.rules_installed += self._install_tree(tree, function_obj, policy=policy)
        job.trees[reducer] = tree
        return tree

    def engine(self, switch_name: str) -> DaietAggregationEngine:
        """The aggregation engine installed on a switch."""
        try:
            return self.engines[switch_name]
        except KeyError as exc:
            raise ControllerError(
                f"switch {switch_name!r} has no DAIET engine installed"
            ) from exc

    def tree_counters(self) -> dict[tuple[str, int], TreeCounters]:
        """Counters of every (switch, tree) pair, for the evaluation harness."""
        counters: dict[tuple[str, int], TreeCounters] = {}
        for switch_name, engine in self.engines.items():
            for tree_id, tree_counters in engine.counters().items():
                counters[(switch_name, tree_id)] = tree_counters
        return counters
