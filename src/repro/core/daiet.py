"""High-level DAIET facade.

:class:`DaietSystem` wires together a topology, the network simulator, the
DAIET controller and the host-side helpers (:class:`DaietSender` on mappers,
:class:`DaietReceiver` on reducers), so that an application can offload its
aggregation with a handful of calls:

>>> system = DaietSystem.single_rack(num_hosts=4)
>>> job = system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
>>> system.send_pairs("h0", "h3", [("ant", 1), ("bee", 2)])
>>> system.send_pairs("h1", "h3", [("ant", 5)])
>>> system.send_pairs("h2", "h3", [("cat", 7)])
>>> system.run()
>>> system.receiver("h3").result()
{'ant': 6, 'bee': 2, 'cat': 7}
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.aggregation import DaietAggregationEngine
from repro.core.config import DaietConfig
from repro.core.controller import DaietController, InstalledJob
from repro.core.errors import ConfigurationError, ControllerError
from repro.core.functions import AggregationFunction, get as get_function
from repro.core.packet import DaietPacket, DaietPacketType, packetize_pairs
from repro.core.tree import AggregationTree
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology, single_rack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <-> transport)
    from repro.transport.reliability import HostReliabilityAgent

#: Sentinel distinguishing "key absent" from a stored ``None`` value.
_MISSING = object()


@dataclass(slots=True)
class ReceiverCounters:
    """Traffic observed by a reducer-side receiver at the application layer."""

    packets: int = 0
    data_packets: int = 0
    end_packets: int = 0
    pairs: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0


@dataclass
class DaietReceiver:
    """Application-level collector of aggregated pairs at a reducer host.

    The receiver applies the aggregation function one final time on arrival:
    intermediate switches may emit several partial values for the same key
    (spillover flushes, multiple switches on different branches), and the
    reducer merging them is exactly what preserves end-to-end correctness.
    """

    host: str
    tree_id: int
    function: AggregationFunction
    expected_ends: int
    counters: ReceiverCounters = field(default_factory=ReceiverCounters)
    _values: dict[str, Any] = field(default_factory=dict)
    _ends_seen: int = 0

    def receive(self, packet: Any) -> None:
        """Host receiver callback; ignores traffic for other trees."""
        if not isinstance(packet, DaietPacket) or packet.tree_id != self.tree_id:
            return
        counters = self.counters
        counters.packets += 1
        counters.wire_bytes += packet.wire_bytes()
        counters.payload_bytes += packet.payload_bytes()
        if packet.packet_type is DaietPacketType.END:
            counters.end_packets += 1
            self._ends_seen += 1
            return
        counters.data_packets += 1
        counters.pairs += len(packet.pairs)
        values = self._values
        combine = self.function.combine
        for key, value in packet.pairs:
            current = values.get(key, _MISSING)
            values[key] = value if current is _MISSING else combine(current, value)

    @property
    def done(self) -> bool:
        """True once every expected END packet has arrived."""
        return self._ends_seen >= self.expected_ends

    def result(self) -> dict[str, Any]:
        """The aggregated key-value map received so far."""
        return dict(self._values)

    def reset(self, tree_id: int, expected_ends: int) -> None:
        """Rebind the receiver to a replacement tree epoch (failover).

        Partial values from the dead epoch are discarded — the failover
        manager replays every mapper's full stream through the re-planned
        tree, so keeping them would double-count. ``tree_id`` filtering in
        :meth:`receive` then makes stray old-epoch packets harmless.
        """
        self.tree_id = tree_id
        self.expected_ends = expected_ends
        self._values.clear()
        self._ends_seen = 0


class DaietSystem:
    """Facade bundling topology, simulator, controller and host helpers."""

    def __init__(
        self,
        topology: Topology,
        config: DaietConfig | None = None,
        simulator_config: SimulatorConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or DaietConfig()
        self.simulator = NetworkSimulator(topology, simulator_config)
        self.controller = DaietController(topology, self.config)
        self._receivers: dict[str, DaietReceiver] = {}
        self._jobs: list[InstalledJob] = []
        self._agents: dict[str, "HostReliabilityAgent"] = {}
        # Per-tree reliability policy registry. Shared by *reference* with
        # the simulator so observers that only see the simulator (the
        # sanitizer's drop classifier, the error-bound tracker) can map a
        # dropped packet's tree id back to its policy. Old epochs are kept
        # after failover so stray old-epoch drops still classify correctly.
        self._tree_policies: dict[int, str] = {}
        self.simulator.tree_policies = self._tree_policies
        #: Optional :class:`~repro.analysis.error_bounds.ErrorBoundTracker`;
        #: when set, ``send_pairs`` reports injected mass to it.
        self.error_tracker: Any = None

    @classmethod
    def single_rack(
        cls,
        num_hosts: int,
        config: DaietConfig | None = None,
        simulator_config: SimulatorConfig | None = None,
    ) -> "DaietSystem":
        """Convenience constructor: ``num_hosts`` hosts behind one ToR switch."""
        return cls(single_rack(num_hosts), config=config, simulator_config=simulator_config)

    def _agent(self, host: str) -> "HostReliabilityAgent":
        """The reliability endpoint of ``host`` (created on first use).

        Imported lazily: :mod:`repro.transport` itself imports the simulator,
        so a module-level import here would close an import cycle.
        """
        from repro.transport.reliability import HostReliabilityAgent

        if host not in self._agents:
            self._agents[host] = HostReliabilityAgent.from_config(
                self.simulator, host, self.config
            )
        return self._agents[host]

    def agent(self, host: str) -> "HostReliabilityAgent":
        """Public accessor for a host's reliability endpoint.

        The failover manager uses this to reach sender histories and to
        re-attach receive state when a tree is re-planned.
        """
        return self._agent(host)

    def reliability_stats(self) -> dict[str, dict[str, int]]:
        """Per-host reliability counters (empty when reliability is off)."""
        return {host: agent.stats.snapshot() for host, agent in self._agents.items()}

    # ------------------------------------------------------------------ #
    # Job management
    # ------------------------------------------------------------------ #
    def install_job(
        self,
        mappers: Iterable[str],
        reducers: Iterable[str],
        function: str | AggregationFunction = "sum",
        policy: str | None = None,
    ) -> InstalledJob:
        """Install aggregation trees and attach receivers on every reducer.

        ``policy`` selects the reliability policy for every tree of this
        job (``"exact"``, ``"sampled"`` or ``"best_effort"``); ``None``
        inherits ``config.reliability_policy``. Non-exact policies require
        the reliability layer to be enabled.
        """
        if policy is None:
            policy = getattr(self.config, "reliability_policy", "exact")
        if policy not in ("exact", "sampled", "best_effort"):
            raise ConfigurationError(
                f"unknown reliability policy {policy!r}; "
                "expected 'exact', 'sampled' or 'best_effort'"
            )
        if policy != "exact" and not self.config.reliability:
            raise ConfigurationError(
                f"reliability policy {policy!r} requires reliability=True"
            )
        function_obj = function if isinstance(function, AggregationFunction) else get_function(function)
        job = self.controller.install_job(mappers, reducers, function_obj, policy=policy)
        for reducer, tree in job.trees.items():
            self._tree_policies[tree.tree_id] = policy
            receiver = DaietReceiver(
                host=reducer,
                tree_id=tree.tree_id,
                function=function_obj,
                expected_ends=tree.children_count(reducer),
            )
            self._receivers[reducer] = receiver
            if self.config.reliability:
                # The reliability agent owns the host NIC: it dedups sequenced
                # packets, acknowledges the tree's children and hands clean
                # packets to the application receiver. Best-effort trees ride
                # the same dispatch but their packets carry no sequence
                # numbers, so they pass straight through — no dedup, no ACKs,
                # and the pull timer is never armed.
                self._agent(reducer).attach_tree(
                    tree.tree_id,
                    children=tree.node(reducer).children,
                    inner=receiver.receive,
                    policy=policy,
                )
            else:
                self.simulator.host(reducer).set_receiver(receiver.receive)
        self._jobs.append(job)
        return job

    def tree_policy(self, tree_id: int) -> str:
        """The reliability policy a tree was installed under."""
        return self._tree_policies.get(tree_id, "exact")

    def register_tree_policy(self, tree_id: int, policy: str) -> None:
        """Record a (re-planned) tree's policy; old epochs are retained."""
        self._tree_policies[tree_id] = policy

    def receiver(self, reducer: str) -> DaietReceiver:
        """The receiver attached to a reducer host."""
        try:
            return self._receivers[reducer]
        except KeyError as exc:
            raise ControllerError(f"no DAIET receiver attached to host {reducer!r}") from exc

    def engine(self, switch_name: str) -> DaietAggregationEngine:
        """The aggregation engine installed on a switch."""
        return self.controller.engine(switch_name)

    def tree_for(self, reducer: str) -> AggregationTree:
        """The most recently installed tree rooted at ``reducer``."""
        for job in reversed(self._jobs):
            if reducer in job.trees:
                return job.trees[reducer]
        raise ControllerError(f"no aggregation tree rooted at {reducer!r}")

    # ------------------------------------------------------------------ #
    # Data plane helpers
    # ------------------------------------------------------------------ #
    def send_pairs(
        self,
        mapper: str,
        reducer: str,
        pairs: Iterable[tuple[str, int]],
        include_end: bool = True,
    ) -> int:
        """Packetize and send a mapper's partition towards a reducer.

        Returns the number of packets injected (including the END marker).
        """
        tree = self.tree_for(reducer)
        if mapper not in tree.mappers:
            raise ControllerError(
                f"host {mapper!r} is not a mapper of the tree rooted at {reducer!r}"
            )
        pairs = list(pairs)
        if self.error_tracker is not None:
            # Original application sends only — retransmissions re-inject the
            # same pairs and must not inflate the injected-mass ledger.
            self.error_tracker.record_injected(tree.tree_id, pairs)
        policy = self.tree_policy(tree.tree_id)
        if self.config.reliability and policy != "best_effort":
            channel = self._agent(mapper).sender(tree.tree_id, policy=policy)
            packets = [
                replace(packet, seq=channel.take_seq())
                for packet in packetize_pairs(
                    pairs,
                    tree_id=tree.tree_id,
                    src=mapper,
                    dst=reducer,
                    config=self.config,
                    include_end=include_end,
                )
            ]
            count = channel.send(packets)
            # The reducer starts pulling so even a fully-lost flush recovers.
            self._agent(reducer).arm(tree.tree_id)
            return count
        # Unreliable path — either the reliability layer is off, or the tree
        # runs best-effort: unsequenced packets, no retransmit buffer, no
        # ACK/pull machinery, guaranteed termination.
        packets = list(
            packetize_pairs(
                pairs,
                tree_id=tree.tree_id,
                src=mapper,
                dst=reducer,
                config=self.config,
                include_end=include_end,
            )
        )
        for packet in packets:
            if packet.pairs:
                # Warm the vectorized-kernel cache outside the timed run()
                # region; arrival-time computation would pay for it instead.
                packet.vector_pairs()
        return self.simulator.send_burst(mapper, packets)

    def run(self, until: float | None = None) -> int:
        """Run the simulation until all in-flight traffic is delivered."""
        return self.simulator.run(until=until)
