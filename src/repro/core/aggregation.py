"""In-switch aggregation engine (Algorithm 1 of the paper).

For each aggregation tree a switch keeps two register arrays (keys and values)
managed as a hash table with single-element buckets, an index stack of used
slots, and a spillover bucket for colliding pairs. Each received DATA packet
updates this state pair by pair; an END packet decrements the
remaining-children counter and, when it reaches zero, the aggregated state is
flushed towards the next node of the tree.

:class:`DaietAggregationEngine` hosts the per-tree state of one switch and is
plugged into the switch pipeline as an extern action by the controller.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.config import DaietConfig
from repro.core.errors import AggregationError
from repro.core.functions import AggregationFunction, get as get_function
from repro.core.packet import DaietPacket, DaietPacketType, end_packet, packetize_pairs
from repro.dataplane.actions import PacketContext
from repro.dataplane.registers import IndexStack, RegisterArray, SpilloverBucket


def hash_key(key: str | bytes, slots: int) -> int:
    """Deterministic hash of a key into a register index.

    CRC32 stands in for the hardware hash units of a programmable switch: it is
    cheap, stable across processes (unlike Python's randomized ``hash``), and
    spreads typical word keys evenly.
    """
    if slots <= 0:
        raise AggregationError("slots must be positive")
    data = key.encode() if isinstance(key, str) else bytes(key)
    return zlib.crc32(data) % slots


@dataclass
class TreeCounters:
    """Per-tree statistics exported to the evaluation harness."""

    packets_received: int = 0
    end_packets_received: int = 0
    pairs_received: int = 0
    pairs_aggregated: int = 0
    pairs_inserted: int = 0
    collisions: int = 0
    spillover_flushes: int = 0
    final_flushes: int = 0
    packets_emitted: int = 0
    pairs_emitted: int = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dictionary."""
        return dict(self.__dict__)


@dataclass
class TreeState:
    """Per-tree aggregation state held in switch SRAM."""

    tree_id: int
    function: AggregationFunction
    config: DaietConfig
    num_children: int
    egress_port: int
    next_hop_dst: str
    switch_name: str
    key_register: RegisterArray = field(init=False)
    value_register: RegisterArray = field(init=False)
    index_stack: IndexStack = field(init=False)
    spillover: SpilloverBucket = field(init=False)
    remaining_children: int = field(init=False)
    counters: TreeCounters = field(default_factory=TreeCounters)
    _end_sources_seen: set[str] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.num_children <= 0:
            raise AggregationError(
                f"tree {self.tree_id} on switch {self.switch_name!r} must have "
                "at least one child"
            )
        slots = self.config.register_slots
        self.key_register = RegisterArray(slots, name=f"tree{self.tree_id}.keys")
        self.value_register = RegisterArray(slots, name=f"tree{self.tree_id}.values")
        self.index_stack = IndexStack(capacity=slots)
        self.spillover = SpilloverBucket(capacity=self.config.effective_spillover_capacity)
        self.remaining_children = self.num_children

    def occupancy(self) -> int:
        """Number of register slots currently holding an aggregated pair."""
        return len(self.index_stack)

    def rearm(self) -> None:
        """Reset the tree state for the next aggregation round."""
        self.key_register.reset()
        self.value_register.reset()
        self.index_stack.clear()
        self.spillover.flush()
        self.remaining_children = self.num_children
        self._end_sources_seen.clear()


class DaietAggregationEngine:
    """The DAIET extern of one switch: per-tree state plus Algorithm 1."""

    def __init__(self, switch_name: str) -> None:
        self.switch_name = switch_name
        self._trees: dict[int, TreeState] = {}

    # ------------------------------------------------------------------ #
    # Control-plane configuration
    # ------------------------------------------------------------------ #
    def configure_tree(
        self,
        tree_id: int,
        function: AggregationFunction | str,
        num_children: int,
        egress_port: int,
        next_hop_dst: str,
        config: DaietConfig | None = None,
    ) -> TreeState:
        """Install (or replace) the state for one aggregation tree."""
        if isinstance(function, str):
            function = get_function(function)
        state = TreeState(
            tree_id=tree_id,
            function=function,
            config=config or DaietConfig(),
            num_children=num_children,
            egress_port=egress_port,
            next_hop_dst=next_hop_dst,
            switch_name=self.switch_name,
        )
        self._trees[tree_id] = state
        return state

    def remove_tree(self, tree_id: int) -> None:
        """Remove a tree's state (controller teardown)."""
        self._trees.pop(tree_id, None)

    def tree(self, tree_id: int) -> TreeState:
        """State of a configured tree."""
        try:
            return self._trees[tree_id]
        except KeyError as exc:
            raise AggregationError(
                f"switch {self.switch_name!r} has no state for tree {tree_id}"
            ) from exc

    def tree_ids(self) -> list[int]:
        """Identifiers of every configured tree."""
        return sorted(self._trees)

    def counters(self) -> dict[int, TreeCounters]:
        """Per-tree counters."""
        return {tree_id: state.counters for tree_id, state in self._trees.items()}

    # ------------------------------------------------------------------ #
    # Data-plane entry points
    # ------------------------------------------------------------------ #
    def pipeline_action(self, ctx: PacketContext) -> None:
        """Extern entry point used inside the switch pipeline.

        The incoming DAIET packet is consumed (it never continues to the
        forwarding stage); any packets produced by flushes are emitted on the
        tree's egress port.
        """
        packet = ctx.packet
        if not isinstance(packet, DaietPacket):
            raise AggregationError(
                f"DAIET extern on switch {self.switch_name!r} received a "
                f"{type(packet).__name__}"
            )
        ctx.metadata["consumed"] = True
        state = self.tree(packet.tree_id)
        # Charge one operation per pair, modelling the per-stage ALU work.
        ctx.charge(max(1, packet.num_pairs))
        for out_packet in self.process_packet(packet):
            ctx.emit(state.egress_port, out_packet)

    def process_packet(self, packet: DaietPacket) -> list[DaietPacket]:
        """Pure form of Algorithm 1: consume one packet, return emitted packets."""
        state = self.tree(packet.tree_id)
        state.counters.packets_received += 1
        if packet.packet_type is DaietPacketType.DATA:
            return self._process_data(state, packet)
        return self._process_end(state, packet)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def _process_data(self, state: TreeState, packet: DaietPacket) -> list[DaietPacket]:
        emitted: list[DaietPacket] = []
        for key, value in packet.pairs:
            state.counters.pairs_received += 1
            idx = hash_key(key, state.config.register_slots)
            if state.key_register.is_empty(idx):
                state.key_register.write(idx, key)
                state.value_register.write(idx, value)
                state.index_stack.push(idx)
                state.counters.pairs_inserted += 1
            elif state.key_register.read(idx) == key:
                current = state.value_register.read(idx)
                state.value_register.write(idx, state.function(current, value))
                state.counters.pairs_aggregated += 1
            else:
                state.counters.collisions += 1
                state.spillover.store(key, value)
                if state.spillover.is_full:
                    emitted.extend(self._flush_spillover(state))
        return emitted

    def _process_end(self, state: TreeState, packet: DaietPacket) -> list[DaietPacket]:
        state.counters.end_packets_received += 1
        if state.config.reliable_end:
            if packet.src in state._end_sources_seen:
                # Retransmitted END: idempotent, no double decrement.
                return []
            state._end_sources_seen.add(packet.src)
        if state.remaining_children <= 0:
            raise AggregationError(
                f"switch {self.switch_name!r} received an unexpected END packet "
                f"for tree {state.tree_id} (all children already ended)"
            )
        state.remaining_children -= 1
        if state.remaining_children > 0:
            return []
        emitted = self._flush_all(state)
        state.rearm()
        return emitted

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #
    def _flush_spillover(self, state: TreeState) -> list[DaietPacket]:
        pairs = state.spillover.flush()
        if not pairs:
            return []
        state.counters.spillover_flushes += 1
        return self._emit_pairs(state, pairs, include_end=False)

    def _flush_all(self, state: TreeState) -> list[DaietPacket]:
        """Flush spillover first, then the aggregated registers, then END."""
        state.counters.final_flushes += 1
        pairs: list[tuple[str, int]] = list(state.spillover.flush())
        for idx in state.index_stack.drain():
            key = state.key_register.read(idx)
            value = state.value_register.read(idx)
            if key is None:
                raise AggregationError(
                    f"index stack of tree {state.tree_id} pointed at an empty slot"
                )
            pairs.append((key, value))
            state.key_register.clear(idx)
            state.value_register.clear(idx)
        emitted = self._emit_pairs(state, pairs, include_end=True)
        return emitted

    def _emit_pairs(
        self,
        state: TreeState,
        pairs: Iterable[tuple[str, int]],
        include_end: bool,
    ) -> list[DaietPacket]:
        packets = list(
            packetize_pairs(
                pairs,
                tree_id=state.tree_id,
                src=self.switch_name,
                dst=state.next_hop_dst,
                config=state.config,
                include_end=False,
            )
        )
        if include_end:
            packets.append(
                end_packet(
                    tree_id=state.tree_id,
                    src=self.switch_name,
                    dst=state.next_hop_dst,
                    config=state.config,
                )
            )
        state.counters.packets_emitted += len(packets)
        state.counters.pairs_emitted += sum(p.num_pairs for p in packets)
        return packets
