"""In-switch aggregation engine (Algorithm 1 of the paper).

For each aggregation tree a switch keeps two register arrays (keys and values)
managed as a hash table with single-element buckets, an index stack of used
slots, and a spillover bucket for colliding pairs. Each received DATA packet
updates this state pair by pair; an END packet decrements the
remaining-children counter and, when it reaches zero, the aggregated state is
flushed towards the next node of the tree.

:class:`DaietAggregationEngine` hosts the per-tree state of one switch and is
plugged into the switch pipeline as an extern action by the controller.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.checks.registry import fastpath
from repro.core.config import DaietConfig
from repro.core.errors import AggregationError
from repro.core.functions import SUM, AggregationFunction, get as get_function

#: The sum combiner, identity-compared in the data-plane hot loop so the
#: dominant workload merges with an inline ``+`` instead of a lambda call.
_SUM_COMBINE = SUM.combine
from repro.core.packet import (
    DaietAck,
    DaietPacket,
    DaietPacketType,
    SeenWindow,
    end_packet,
    packetize_pairs,
)
from repro.dataplane.actions import PacketContext
from repro.dataplane.registers import IndexStack, RegisterArray, SpilloverBucket


def hash_key(key: str | bytes, slots: int) -> int:
    """Deterministic hash of a key into a register index.

    CRC32 stands in for the hardware hash units of a programmable switch: it is
    cheap, stable across processes (unlike Python's randomized ``hash``), and
    spreads typical word keys evenly.
    """
    if slots <= 0:
        raise AggregationError("slots must be positive")
    data = key.encode() if isinstance(key, str) else bytes(key)
    return zlib.crc32(data) % slots


@dataclass
class TreeCounters:
    """Per-tree statistics exported to the evaluation harness."""

    packets_received: int = 0
    end_packets_received: int = 0
    pairs_received: int = 0
    pairs_aggregated: int = 0
    pairs_inserted: int = 0
    collisions: int = 0
    spillover_flushes: int = 0
    spillover_merges: int = 0
    final_flushes: int = 0
    packets_emitted: int = 0
    pairs_emitted: int = 0
    duplicate_packets: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retransmitted_packets: int = 0
    ack_port_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dictionary."""
        return dict(self.__dict__)


@dataclass
class TreeState:
    """Per-tree aggregation state held in switch SRAM."""

    tree_id: int
    function: AggregationFunction
    config: DaietConfig
    num_children: int
    egress_port: int
    next_hop_dst: str
    switch_name: str
    #: Egress port towards each direct child (device name -> port), used to
    #: route reliability ACKs back down the tree.
    child_ports: dict[str, int] = field(default_factory=dict)
    #: Direct children that are switches, in sorted order. Pull ACKs are
    #: forwarded to these when this switch has nothing left to resend: a
    #: tail loss above this hop is invisible here (no SACK gap ever forms),
    #: so the pull must climb the tree until it reaches the buffer that
    #: still holds the lost flush.
    switch_children: tuple[str, ...] = ()
    #: Reliability policy of this tree (``"exact"`` | ``"sampled"`` |
    #: ``"best_effort"``): ``sampled`` strides the switch's ACK cadence,
    #: ``best_effort`` emits plain unsequenced flushes with no buffering.
    policy: str = "exact"
    key_register: RegisterArray = field(init=False)
    value_register: RegisterArray = field(init=False)
    index_stack: IndexStack = field(init=False)
    spillover: SpilloverBucket = field(init=False)
    remaining_children: int = field(init=False)
    counters: TreeCounters = field(default_factory=TreeCounters)
    #: Children whose END was accepted in the current round (idempotence).
    _ended_sources: set[str] = field(default_factory=set, repr=False)
    #: Per-child duplicate filter over sequence numbers (reliability layer).
    _seen: dict[str, SeenWindow] = field(default_factory=dict, repr=False)
    #: In-order packets received per child since the last ACK was emitted.
    _since_ack: dict[str, int] = field(default_factory=dict, repr=False)
    #: Fresh packets per child that arrived ECN-marked since the last ACK;
    #: echoed (and reset) by ``_ack_child`` so host senders see the mark rate
    #: of the congested hop below this switch.
    _ecn_since_ack: dict[str, int] = field(default_factory=dict, repr=False)
    #: Flush packets emitted towards the parent and not yet acknowledged.
    _unacked: dict[int, DaietPacket] = field(default_factory=dict, repr=False)
    #: Next sequence number for the switch's own emissions towards the parent.
    _next_seq: int = field(default=0, repr=False)
    #: Sequence numbers already retransmitted since the last ACK progress,
    #: so duplicate ACKs do not trigger a retransmission storm.
    _retransmitted: set[int] = field(default_factory=set, repr=False)
    #: Children whose current gap episode was already announced with an
    #: immediate SACK (sampled policy only).
    _gapped: set[str] = field(default_factory=set, repr=False)
    #: Steady in-order ACK cadence (ack_window, strided under ``sampled``).
    _ack_every: int = field(default=0, repr=False)
    #: Whether emissions towards the parent are sequenced and buffered.
    _reliable_emit: bool = field(default=False, repr=False)
    #: Memo of ``hash_key(key, register_slots)`` — the hash is deterministic
    #: and ``register_slots`` is fixed per tree, so repeated keys (the whole
    #: point of aggregation) skip the encode+CRC32 on every later packet.
    _hash_cache: dict[Any, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_children <= 0:
            raise AggregationError(
                f"tree {self.tree_id} on switch {self.switch_name!r} must have "
                "at least one child"
            )
        slots = self.config.register_slots
        self.key_register = RegisterArray(slots, name=f"tree{self.tree_id}.keys")
        self.value_register = RegisterArray(slots, name=f"tree{self.tree_id}.values")
        self.index_stack = IndexStack(capacity=slots)
        self.spillover = SpilloverBucket(capacity=self.config.effective_spillover_capacity)
        self.remaining_children = self.num_children
        self._apply_policy()

    def set_policy(self, policy: str) -> None:
        """Change the tree's reliability policy (per-tree overrides, failover)."""
        self.policy = policy
        self._apply_policy()

    def _apply_policy(self) -> None:
        stride = (
            getattr(self.config, "sampled_ack_stride", 4)
            if self.policy == "sampled"
            else 1
        )
        self._ack_every = self.config.ack_window * stride
        self._reliable_emit = (
            getattr(self.config, "reliability", False)
            and self.policy != "best_effort"
        )

    def occupancy(self) -> int:
        """Number of register slots currently holding an aggregated pair."""
        return len(self.index_stack)

    def window(self, src: str) -> SeenWindow:
        """The sequence-number window tracking one child's stream."""
        if src not in self._seen:
            self._seen[src] = SeenWindow()
        return self._seen[src]

    def rearm(self) -> None:
        """Reset the tree state for the next aggregation round.

        Slot reuse: only the cells still recorded in the index stack are
        cleared, instead of reallocating the two full register arrays. After
        a final flush the stack is already empty, so the common rearm is
        O(1) — with the paper's 16K-slot registers the old full reset
        dominated multi-round (e.g. ML training) runs.

        Sequence windows and the unacknowledged-flush buffer deliberately
        survive rearming: sequence numbers are monotonic across rounds, and
        flush packets from the finished round may still need retransmitting.
        """
        for idx in self.index_stack.drain():
            self.key_register.clear(idx)
            self.value_register.clear(idx)
        self.spillover.flush()
        self.remaining_children = self.num_children
        self._ended_sources.clear()


class DaietAggregationEngine:
    """The DAIET extern of one switch: per-tree state plus Algorithm 1."""

    def __init__(self, switch_name: str) -> None:
        self.switch_name = switch_name
        self._trees: dict[int, TreeState] = {}

    # ------------------------------------------------------------------ #
    # Control-plane configuration
    # ------------------------------------------------------------------ #
    def configure_tree(
        self,
        tree_id: int,
        function: AggregationFunction | str,
        num_children: int,
        egress_port: int,
        next_hop_dst: str,
        config: DaietConfig | None = None,
        child_ports: dict[str, int] | None = None,
        switch_children: tuple[str, ...] = (),
        policy: str | None = None,
    ) -> TreeState:
        """Install (or replace) the state for one aggregation tree.

        ``policy`` overrides the config's ``reliability_policy`` for this
        tree (per-tree selective reliability); ``None`` inherits it.
        """
        if isinstance(function, str):
            function = get_function(function)
        cfg = config or DaietConfig()
        state = TreeState(
            tree_id=tree_id,
            function=function,
            config=cfg,
            num_children=num_children,
            egress_port=egress_port,
            next_hop_dst=next_hop_dst,
            switch_name=self.switch_name,
            child_ports=dict(child_ports or {}),
            switch_children=tuple(sorted(switch_children)),
            policy=policy
            if policy is not None
            else getattr(cfg, "reliability_policy", "exact"),
        )
        self._trees[tree_id] = state
        return state

    def remove_tree(self, tree_id: int) -> None:
        """Remove a tree's state (controller teardown)."""
        self._trees.pop(tree_id, None)

    def tree(self, tree_id: int) -> TreeState:
        """State of a configured tree."""
        try:
            return self._trees[tree_id]
        except KeyError as exc:
            raise AggregationError(
                f"switch {self.switch_name!r} has no state for tree {tree_id}"
            ) from exc

    def tree_ids(self) -> list[int]:
        """Identifiers of every configured tree."""
        return sorted(self._trees)

    def counters(self) -> dict[int, TreeCounters]:
        """Per-tree counters."""
        return {tree_id: state.counters for tree_id, state in self._trees.items()}

    # ------------------------------------------------------------------ #
    # Data-plane entry points
    # ------------------------------------------------------------------ #
    def pipeline_action(self, ctx: PacketContext) -> None:
        """Extern entry point used inside the switch pipeline.

        The incoming DAIET packet (or ACK) is consumed — it never continues
        to the forwarding stage. Flushed aggregates go out on the tree's
        egress port; reliability ACKs go out on the originating child's port.

        This is :meth:`handle_packet` inlined (shared hot path): the tree
        lookup and DATA/END dispatch happen directly on the context.
        """
        packet = ctx.packet
        if type(packet) is DaietPacket:
            ctx.metadata["consumed"] = True
            # Charge one operation per pair, modelling the per-stage ALU work.
            npairs = len(packet.pairs)
            ctx.charge(npairs if npairs > 1 else 1)
            state = self.tree(packet.tree_id)
            state.counters.packets_received += 1
            if packet.packet_type is DaietPacketType.DATA:
                out = self._process_data(state, packet)
            else:
                out = self._process_end(state, packet)
            if out:
                ctx.emitted.extend(out)
            return
        if isinstance(packet, DaietAck):
            ctx.metadata["consumed"] = True
            ctx.charge(1)
            for port, out_packet in self.handle_ack(packet):
                ctx.emit(port, out_packet)
            return
        if not isinstance(packet, DaietPacket):
            raise AggregationError(
                f"DAIET extern on switch {self.switch_name!r} received a "
                f"{type(packet).__name__}"
            )
        ctx.metadata["consumed"] = True
        ctx.charge(max(1, packet.num_pairs))
        for port, out_packet in self.handle_packet(packet):
            ctx.emit(port, out_packet)

    def handle_packet(self, packet: DaietPacket) -> list[tuple[int, Any]]:
        """Consume one packet; return ``(egress_port, packet)`` emissions.

        This is the full data-plane behaviour: parent-bound flushes plus any
        child-bound reliability ACKs.
        """
        state = self.tree(packet.tree_id)
        state.counters.packets_received += 1
        if packet.packet_type is DaietPacketType.DATA:
            return self._process_data(state, packet)
        return self._process_end(state, packet)

    def process_packet(self, packet: DaietPacket) -> list[DaietPacket]:
        """Pure form of Algorithm 1: the packets flushed towards the parent."""
        return [
            out for _port, out in self.handle_packet(packet)
            if isinstance(out, DaietPacket)
        ]

    def handle_ack(self, ack: DaietAck) -> list[tuple[int, Any]]:
        """Process a reliability ACK arriving at this switch.

        ACKs addressed to this switch release buffered flush packets and
        trigger retransmissions (gap-filling on selective ACKs, a full resend
        on ``pull`` ACKs). ACKs addressed elsewhere are forwarded towards the
        child when a port is known, or silently dropped otherwise.
        """
        state = self._trees.get(ack.tree_id)
        if state is None:
            return []
        if ack.dst != self.switch_name:
            port = state.child_ports.get(ack.dst)
            return [(port, ack)] if port is not None else []
        state.counters.acks_received += 1
        sacked = set(ack.sack)
        acked = [s for s in state._unacked if s < ack.cumulative or s in sacked]
        for seq in acked:
            del state._unacked[seq]
        if acked:
            # Progress: previously retransmitted packets may be resent again
            # if a later ACK still reports them missing.
            state._retransmitted.clear()
        if ack.pull:
            missing = sorted(state._unacked)
        else:
            # Gap-fill: everything the receiver provably overtook is resent
            # (at most once per ACK progress, so duplicate ACKs cannot cause
            # a storm); tail losses are recovered by the receiver's pull.
            horizon = max(sacked) if sacked else -1
            missing = sorted(
                s
                for s in state._unacked
                if s < horizon and s not in state._retransmitted
            )
        out: list[tuple[int, Any]] = []
        for seq in missing:
            state._retransmitted.add(seq)
            state.counters.retransmitted_packets += 1
            out.append((state.egress_port, state._unacked[seq]))
        if ack.pull and not state._unacked:
            # Nothing buffered here, yet the receiver is still missing data:
            # the hole is above this switch (e.g. a whole flush burst lost on
            # a downed trunk link, which leaves no SACK gap anywhere below
            # it). Recurse the pull towards the switch children so whichever
            # ancestor still buffers the flush resends it. Host children are
            # skipped — their sender channels run their own retransmit
            # timers.
            for child in state.switch_children:
                port = state.child_ports.get(child)
                if port is not None:
                    state.counters.acks_sent += 1
                    out.append(
                        (
                            port,
                            DaietAck(
                                tree_id=ack.tree_id,
                                src=self.switch_name,
                                dst=child,
                                pull=True,
                            ),
                        )
                    )
        return out

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    @fastpath("sum-register-loop", oracle="tests/core/test_aggregation_properties.py")
    def _process_data(self, state: TreeState, packet: DaietPacket) -> list[tuple[int, Any]]:
        emitted: list[tuple[int, Any]] = []
        if packet.seq is not None:
            window = state.window(packet.src)
            if not window.observe(packet.seq):
                # Retransmission of something already aggregated: idempotent.
                state.counters.duplicate_packets += 1
                return self._ack_child(state, packet.src)
        # Hot loop of Algorithm 1. Register cells are accessed directly (the
        # hash already guarantees a valid index), the per-key CRC32 is
        # memoized on the tree, and ``combine`` skips the AggregationFunction
        # __call__ indirection — this loop runs once per pair per hop.
        counters = state.counters
        key_cells = state.key_register._cells
        value_cells = state.value_register._cells
        slots = state.config.register_slots
        hash_cache = state._hash_cache
        combine = state.function.combine
        index_stack = state.index_stack
        spillover = state.spillover
        pairs = packet.pairs
        inserted = 0
        aggregated = 0
        if combine is _SUM_COMBINE:
            # The sum function (WordCount, gradient aggregation — the
            # dominant workloads) gets its own loop: the merge happens
            # inline and key->slot resolution is a plain subscript (the
            # KeyError path only runs on a key's first appearance).
            for key, value in pairs:
                try:
                    idx = hash_cache[key]
                except KeyError:
                    idx = hash_cache[key] = hash_key(key, slots)
                cell_key = key_cells[idx]
                if cell_key == key:
                    value_cells[idx] = value_cells[idx] + value
                    aggregated += 1
                elif cell_key is None:
                    key_cells[idx] = key
                    value_cells[idx] = value
                    index_stack.push(idx)
                    inserted += 1
                else:
                    counters.collisions += 1
                    if spillover.store(key, value, state.function):
                        if spillover.is_full:
                            emitted.extend(self._flush_spillover(state))
                    else:
                        counters.spillover_merges += 1
        else:
            for key, value in pairs:
                try:
                    idx = hash_cache[key]
                except KeyError:
                    idx = hash_cache[key] = hash_key(key, slots)
                cell_key = key_cells[idx]
                if cell_key is None:
                    key_cells[idx] = key
                    value_cells[idx] = value
                    index_stack.push(idx)
                    inserted += 1
                elif cell_key == key:
                    value_cells[idx] = combine(value_cells[idx], value)
                    aggregated += 1
                else:
                    counters.collisions += 1
                    if spillover.store(key, value, state.function):
                        if spillover.is_full:
                            emitted.extend(self._flush_spillover(state))
                    else:
                        counters.spillover_merges += 1
        counters.pairs_received += len(pairs)
        counters.pairs_inserted += inserted
        counters.pairs_aggregated += aggregated
        if packet.seq is not None:
            src = packet.src
            window = state.window(src)
            if packet.ecn:
                state._ecn_since_ack[src] = state._ecn_since_ack.get(src, 0) + 1
            state._since_ack[src] = state._since_ack.get(src, 0) + 1
            ack_now = state._since_ack[src] >= state._ack_every
            if not ack_now and state.policy == "sampled":
                # A fresh hole is still announced immediately (one early
                # SACK per gap episode) so the sender's gap-fill beats its
                # retransmission timer despite the strided cadence.
                if window.has_gaps:
                    ack_now = src not in state._gapped
                    state._gapped.add(src)
                else:
                    state._gapped.discard(src)
            if ack_now:
                emitted.extend(self._ack_child(state, src))
            if window.complete and src not in state._ended_sources:
                # A retransmitted DATA packet filled the last gap before a
                # previously stashed END: the child's stream is now complete.
                emitted.extend(self._accept_end(state, src))
        return emitted

    def _process_end(self, state: TreeState, packet: DaietPacket) -> list[tuple[int, Any]]:
        state.counters.end_packets_received += 1
        if packet.seq is not None:
            window = state.window(packet.src)
            fresh = window.observe(packet.seq)
            if fresh:
                window.end_seq = packet.seq
                if packet.ecn:
                    state._ecn_since_ack[packet.src] = (
                        state._ecn_since_ack.get(packet.src, 0) + 1
                    )
            else:
                state.counters.duplicate_packets += 1
            emitted = self._ack_child(state, packet.src)
            if window.complete and packet.src not in state._ended_sources:
                emitted.extend(self._accept_end(state, packet.src))
            # An incomplete stream stashes the END: the decrement happens
            # when retransmissions fill the gaps (see _process_data).
            return emitted
        if state.config.reliable_end:
            if packet.src in state._ended_sources:
                # Retransmitted END: idempotent, no double decrement.
                return []
            return self._accept_end(state, packet.src)
        return self._count_end(state)

    def _accept_end(self, state: TreeState, src: str) -> list[tuple[int, Any]]:
        """Count one child's END exactly once; flush when it was the last."""
        if src in state._ended_sources:
            return []
        state._ended_sources.add(src)
        window = state._seen.get(src)
        if window is not None:
            # The END marker is consumed; the window keeps counting across
            # rounds, so late duplicates are still filtered.
            window.end_seq = None
        return self._count_end(state)

    def _count_end(self, state: TreeState) -> list[tuple[int, Any]]:
        """Decrement the remaining-children counter; flush on the last END."""
        if state.remaining_children <= 0:
            raise AggregationError(
                f"switch {self.switch_name!r} received an unexpected END packet "
                f"for tree {state.tree_id} (all children already ended)"
            )
        state.remaining_children -= 1
        if state.remaining_children > 0:
            return []
        emitted = self._flush_all(state)
        state.rearm()
        return emitted

    def _ack_child(self, state: TreeState, src: str) -> list[tuple[int, Any]]:
        """Build the cumulative+selective ACK for one child's stream."""
        window = state._seen.get(src)
        if window is None:
            return []
        state._since_ack[src] = 0
        port = state.child_ports.get(src)
        if port is None:
            # No known port towards the child (e.g. a tree configured without
            # child ports): the sender's own timeout still recovers losses.
            state.counters.ack_port_misses += 1
            return []
        cumulative, sack = window.ack_state()
        state.counters.acks_sent += 1
        echo = state._ecn_since_ack.get(src, 0)
        if echo:
            state._ecn_since_ack[src] = 0
        ack = DaietAck(
            tree_id=state.tree_id,
            src=self.switch_name,
            dst=src,
            cumulative=cumulative,
            sack=sack,
            ecn_echo=echo,
        )
        return [(port, ack)]

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #
    def _flush_spillover(self, state: TreeState) -> list[tuple[int, Any]]:
        pairs = state.spillover.flush()
        if not pairs:
            return []
        state.counters.spillover_flushes += 1
        return self._emit_pairs(state, pairs, include_end=False)

    def _flush_all(self, state: TreeState) -> list[tuple[int, Any]]:
        """Flush spillover first, then the aggregated registers, then END."""
        state.counters.final_flushes += 1
        pairs: list[tuple[str, int]] = list(state.spillover.flush())
        key_cells = state.key_register._cells
        value_cells = state.value_register._cells
        for idx in state.index_stack.drain():
            key = key_cells[idx]
            if key is None:
                raise AggregationError(
                    f"index stack of tree {state.tree_id} pointed at an empty slot"
                )
            pairs.append((key, value_cells[idx]))
            key_cells[idx] = None
            value_cells[idx] = None
        emitted = self._emit_pairs(state, pairs, include_end=True)
        return emitted

    def _emit_pairs(
        self,
        state: TreeState,
        pairs: Iterable[tuple[str, int]],
        include_end: bool,
    ) -> list[tuple[int, Any]]:
        packets = list(
            packetize_pairs(
                pairs,
                tree_id=state.tree_id,
                src=self.switch_name,
                dst=state.next_hop_dst,
                config=state.config,
                include_end=False,
            )
        )
        if include_end:
            packets.append(
                end_packet(
                    tree_id=state.tree_id,
                    src=self.switch_name,
                    dst=state.next_hop_dst,
                    config=state.config,
                )
            )
        if state._reliable_emit:
            # The switch is itself a reliable sender towards its parent: its
            # emissions carry sequence numbers and stay buffered until the
            # parent acknowledges them (retransmission is ACK/pull-driven
            # because switches have no timers). Best-effort trees skip this
            # entirely: plain unsequenced flushes, nothing buffered.
            sequenced = []
            for packet in packets:
                packet = replace(packet, seq=state._next_seq)
                state._next_seq += 1
                state._unacked[packet.seq] = packet
                sequenced.append(packet)
            packets = sequenced
        state.counters.packets_emitted += len(packets)
        state.counters.pairs_emitted += sum(p.num_pairs for p in packets)
        return [(state.egress_port, packet) for packet in packets]
