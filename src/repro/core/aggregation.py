"""In-switch aggregation engine (Algorithm 1 of the paper).

For each aggregation tree a switch keeps two register arrays (keys and values)
managed as a hash table with single-element buckets, an index stack of used
slots, and a spillover bucket for colliding pairs. Each received DATA packet
updates this state pair by pair; an END packet decrements the
remaining-children counter and, when it reaches zero, the aggregated state is
flushed towards the next node of the tree.

:class:`DaietAggregationEngine` hosts the per-tree state of one switch and is
plugged into the switch pipeline as an extern action by the controller.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from itertools import chain as _chain
from typing import Any, Iterable

from repro.checks.registry import fastpath
from repro.core.config import DaietConfig
from repro.core.errors import AggregationError
from repro.core.functions import SUM, AggregationFunction, get as get_function

#: The sum combiner, identity-compared in the data-plane hot loop so the
#: dominant workload merges with an inline ``+`` instead of a lambda call.
_SUM_COMBINE = SUM.combine
from repro.core.packet import (
    DaietAck,
    DaietPacket,
    DaietPacketType,
    SeenWindow,
    end_packet,
    fast_data_packets,
    packetize_pairs,
)
from repro.dataplane import interning as _interning
from repro.dataplane.actions import PacketContext
from repro.dataplane.registers import IndexStack, RegisterArray, SpilloverBucket

try:  # The vectorized register kernel needs numpy; Algorithm 1 does not.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

#: Overflow guard for the vectorized kernel's int64 delta array: once the
#: accumulated absolute mass of applied values reaches this bound the deltas
#: are folded into the (unbounded Python int) register cells, and a single
#: burst this massive is rejected outright so the per-pair path handles it.
_VEC_MASS_LIMIT = 1 << 62

#: ``_vec_kid_slot`` sentinel: key id not yet resolved for the current round.
_KID_UNKNOWN = -3
#: ``_vec_kid_slot`` sentinel: key id collides with a resident key this round.
_KID_COLLIDING = -1


def hash_key(key: str | bytes, slots: int) -> int:
    """Deterministic hash of a key into a register index.

    CRC32 stands in for the hardware hash units of a programmable switch: it is
    cheap, stable across processes (unlike Python's randomized ``hash``), and
    spreads typical word keys evenly.
    """
    if slots <= 0:
        raise AggregationError("slots must be positive")
    data = key.encode() if isinstance(key, str) else bytes(key)
    return zlib.crc32(data) % slots


@dataclass
class TreeCounters:
    """Per-tree statistics exported to the evaluation harness."""

    packets_received: int = 0
    end_packets_received: int = 0
    pairs_received: int = 0
    pairs_aggregated: int = 0
    pairs_inserted: int = 0
    collisions: int = 0
    spillover_flushes: int = 0
    spillover_merges: int = 0
    final_flushes: int = 0
    packets_emitted: int = 0
    pairs_emitted: int = 0
    duplicate_packets: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retransmitted_packets: int = 0
    ack_port_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dictionary."""
        return dict(self.__dict__)


@dataclass
class TreeState:
    """Per-tree aggregation state held in switch SRAM."""

    tree_id: int
    function: AggregationFunction
    config: DaietConfig
    num_children: int
    egress_port: int
    next_hop_dst: str
    switch_name: str
    #: Egress port towards each direct child (device name -> port), used to
    #: route reliability ACKs back down the tree.
    child_ports: dict[str, int] = field(default_factory=dict)
    #: Direct children that are switches, in sorted order. Pull ACKs are
    #: forwarded to these when this switch has nothing left to resend: a
    #: tail loss above this hop is invisible here (no SACK gap ever forms),
    #: so the pull must climb the tree until it reaches the buffer that
    #: still holds the lost flush.
    switch_children: tuple[str, ...] = ()
    #: Reliability policy of this tree (``"exact"`` | ``"sampled"`` |
    #: ``"best_effort"``): ``sampled`` strides the switch's ACK cadence,
    #: ``best_effort`` emits plain unsequenced flushes with no buffering.
    policy: str = "exact"
    key_register: RegisterArray = field(init=False)
    value_register: RegisterArray = field(init=False)
    index_stack: IndexStack = field(init=False)
    spillover: SpilloverBucket = field(init=False)
    remaining_children: int = field(init=False)
    counters: TreeCounters = field(default_factory=TreeCounters)
    #: Children whose END was accepted in the current round (idempotence).
    _ended_sources: set[str] = field(default_factory=set, repr=False)
    #: Per-child duplicate filter over sequence numbers (reliability layer).
    _seen: dict[str, SeenWindow] = field(default_factory=dict, repr=False)
    #: In-order packets received per child since the last ACK was emitted.
    _since_ack: dict[str, int] = field(default_factory=dict, repr=False)
    #: Fresh packets per child that arrived ECN-marked since the last ACK;
    #: echoed (and reset) by ``_ack_child`` so host senders see the mark rate
    #: of the congested hop below this switch.
    _ecn_since_ack: dict[str, int] = field(default_factory=dict, repr=False)
    #: Flush packets emitted towards the parent and not yet acknowledged.
    _unacked: dict[int, DaietPacket] = field(default_factory=dict, repr=False)
    #: Next sequence number for the switch's own emissions towards the parent.
    _next_seq: int = field(default=0, repr=False)
    #: Sequence numbers already retransmitted since the last ACK progress,
    #: so duplicate ACKs do not trigger a retransmission storm.
    _retransmitted: set[int] = field(default_factory=set, repr=False)
    #: Children whose current gap episode was already announced with an
    #: immediate SACK (sampled policy only).
    _gapped: set[str] = field(default_factory=set, repr=False)
    #: Steady in-order ACK cadence (ack_window, strided under ``sampled``).
    _ack_every: int = field(default=0, repr=False)
    #: Whether emissions towards the parent are sequenced and buffered.
    _reliable_emit: bool = field(default=False, repr=False)
    #: Memo of ``hash_key(key, register_slots)`` — the hash is deterministic
    #: and ``register_slots`` is fixed per tree, so repeated keys (the whole
    #: point of aggregation) skip the encode+CRC32 on every later packet.
    _hash_cache: dict[Any, int] = field(default_factory=dict, repr=False)
    #: True when this tree accepts the vectorized batch kernel (SUM function
    #: and numpy available). The per-pair path stays valid either way.
    _vec: bool = field(default=False, repr=False)
    #: int64 per-slot value deltas pending materialization into the cells.
    _vec_delta: Any = field(default=None, repr=False)
    #: kid -> register slot memo for the current round (``_KID_UNKNOWN`` /
    #: ``_KID_COLLIDING`` sentinels); reset by :meth:`rearm`.
    _vec_kid_slot: Any = field(default=None, repr=False)
    #: Sum of absolute values scatter-added since the last materialization
    #: (int64 overflow guard; doubles as the "deltas pending" dirty flag).
    _vec_mass: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_children <= 0:
            raise AggregationError(
                f"tree {self.tree_id} on switch {self.switch_name!r} must have "
                "at least one child"
            )
        slots = self.config.register_slots
        self.key_register = RegisterArray(slots, name=f"tree{self.tree_id}.keys")
        self.value_register = RegisterArray(slots, name=f"tree{self.tree_id}.values")
        self.index_stack = IndexStack(capacity=slots)
        self.spillover = SpilloverBucket(capacity=self.config.effective_spillover_capacity)
        self.remaining_children = self.num_children
        self._apply_policy()
        if _np is not None and self.function.combine is _SUM_COMBINE:
            self._vec = True
            self._vec_delta = _np.zeros(slots, dtype=_np.int64)
            self._vec_kid_slot = _np.full(
                max(64, _interning.pool_size()), _KID_UNKNOWN, dtype=_np.int64
            )

    def set_policy(self, policy: str) -> None:
        """Change the tree's reliability policy (per-tree overrides, failover)."""
        self.policy = policy
        self._apply_policy()

    def _apply_policy(self) -> None:
        stride = (
            getattr(self.config, "sampled_ack_stride", 4)
            if self.policy == "sampled"
            else 1
        )
        self._ack_every = self.config.ack_window * stride
        self._reliable_emit = (
            getattr(self.config, "reliability", False)
            and self.policy != "best_effort"
        )

    def occupancy(self) -> int:
        """Number of register slots currently holding an aggregated pair."""
        return len(self.index_stack)

    def window(self, src: str) -> SeenWindow:
        """The sequence-number window tracking one child's stream."""
        if src not in self._seen:
            self._seen[src] = SeenWindow()
        return self._seen[src]

    def materialize(self) -> None:
        """Fold pending vectorized value deltas into the register cells.

        The batch kernel scatter-adds into :attr:`_vec_delta` instead of the
        per-slot cells, so any reader of cell *values* — the final flush, the
        error tracker, the sanitizer-era direct readers, tests — must fold
        first. No-op when nothing is pending; the per-pair path never dirties
        the delta array, so mixed traffic stays exact (integer addition is
        associative, and only SUM trees are vectorized).
        """
        if self._vec_mass == 0:
            return
        delta = self._vec_delta
        cells = self.value_register._cells
        touched = _np.flatnonzero(delta).tolist()
        for idx, pending in zip(touched, delta[touched].tolist()):
            cells[idx] = cells[idx] + pending
        delta.fill(0)
        self._vec_mass = 0

    def rearm(self) -> None:
        """Reset the tree state for the next aggregation round.

        Slot reuse: only the cells still recorded in the index stack are
        cleared, instead of reallocating the two full register arrays. After
        a final flush the stack is already empty, so the common rearm is
        O(1) — with the paper's 16K-slot registers the old full reset
        dominated multi-round (e.g. ML training) runs.

        Sequence windows and the unacknowledged-flush buffer deliberately
        survive rearming: sequence numbers are monotonic across rounds, and
        flush packets from the finished round may still need retransmitting.
        """
        for idx in self.index_stack.drain():
            self.key_register.clear(idx)
            self.value_register.clear(idx)
        self.spillover.flush()
        self.remaining_children = self.num_children
        self._ended_sources.clear()
        if self._vec:
            # Cells were just released, so every kid -> slot memo is stale;
            # discarded deltas (a rearm outside the flush path) die with them.
            if self._vec_mass:
                self._vec_delta.fill(0)
                self._vec_mass = 0
            self._vec_kid_slot.fill(_KID_UNKNOWN)


class DaietAggregationEngine:
    """The DAIET extern of one switch: per-tree state plus Algorithm 1."""

    def __init__(self, switch_name: str) -> None:
        self.switch_name = switch_name
        self._trees: dict[int, TreeState] = {}

    # ------------------------------------------------------------------ #
    # Control-plane configuration
    # ------------------------------------------------------------------ #
    def configure_tree(
        self,
        tree_id: int,
        function: AggregationFunction | str,
        num_children: int,
        egress_port: int,
        next_hop_dst: str,
        config: DaietConfig | None = None,
        child_ports: dict[str, int] | None = None,
        switch_children: tuple[str, ...] = (),
        policy: str | None = None,
    ) -> TreeState:
        """Install (or replace) the state for one aggregation tree.

        ``policy`` overrides the config's ``reliability_policy`` for this
        tree (per-tree selective reliability); ``None`` inherits it.
        """
        if isinstance(function, str):
            function = get_function(function)
        cfg = config or DaietConfig()
        state = TreeState(
            tree_id=tree_id,
            function=function,
            config=cfg,
            num_children=num_children,
            egress_port=egress_port,
            next_hop_dst=next_hop_dst,
            switch_name=self.switch_name,
            child_ports=dict(child_ports or {}),
            switch_children=tuple(sorted(switch_children)),
            policy=policy
            if policy is not None
            else getattr(cfg, "reliability_policy", "exact"),
        )
        self._trees[tree_id] = state
        return state

    def remove_tree(self, tree_id: int) -> None:
        """Remove a tree's state (controller teardown)."""
        self._trees.pop(tree_id, None)

    def tree(self, tree_id: int) -> TreeState:
        """State of a configured tree."""
        try:
            return self._trees[tree_id]
        except KeyError as exc:
            raise AggregationError(
                f"switch {self.switch_name!r} has no state for tree {tree_id}"
            ) from exc

    def tree_ids(self) -> list[int]:
        """Identifiers of every configured tree."""
        return sorted(self._trees)

    def counters(self) -> dict[int, TreeCounters]:
        """Per-tree counters."""
        return {tree_id: state.counters for tree_id, state in self._trees.items()}

    # ------------------------------------------------------------------ #
    # Data-plane entry points
    # ------------------------------------------------------------------ #
    def pipeline_action(self, ctx: PacketContext) -> None:
        """Extern entry point used inside the switch pipeline.

        The incoming DAIET packet (or ACK) is consumed — it never continues
        to the forwarding stage. Flushed aggregates go out on the tree's
        egress port; reliability ACKs go out on the originating child's port.

        This is :meth:`handle_packet` inlined (shared hot path): the tree
        lookup and DATA/END dispatch happen directly on the context.
        """
        packet = ctx.packet
        if type(packet) is DaietPacket:
            ctx.metadata["consumed"] = True
            # Charge one operation per pair, modelling the per-stage ALU work.
            npairs = len(packet.pairs)
            ctx.charge(npairs if npairs > 1 else 1)
            state = self.tree(packet.tree_id)
            state.counters.packets_received += 1
            if packet.packet_type is DaietPacketType.DATA:
                out = self._process_data(state, packet)
            else:
                out = self._process_end(state, packet)
            if out:
                ctx.emitted.extend(out)
            return
        if isinstance(packet, DaietAck):
            ctx.metadata["consumed"] = True
            ctx.charge(1)
            for port, out_packet in self.handle_ack(packet):
                ctx.emit(port, out_packet)
            return
        if not isinstance(packet, DaietPacket):
            raise AggregationError(
                f"DAIET extern on switch {self.switch_name!r} received a "
                f"{type(packet).__name__}"
            )
        ctx.metadata["consumed"] = True
        ctx.charge(max(1, packet.num_pairs))
        for port, out_packet in self.handle_packet(packet):
            ctx.emit(port, out_packet)

    def handle_packet(self, packet: DaietPacket) -> list[tuple[int, Any]]:
        """Consume one packet; return ``(egress_port, packet)`` emissions.

        This is the full data-plane behaviour: parent-bound flushes plus any
        child-bound reliability ACKs.
        """
        state = self.tree(packet.tree_id)
        state.counters.packets_received += 1
        if packet.packet_type is DaietPacketType.DATA:
            return self._process_data(state, packet)
        return self._process_end(state, packet)

    def process_packet(self, packet: DaietPacket) -> list[DaietPacket]:
        """Pure form of Algorithm 1: the packets flushed towards the parent."""
        return [
            out for _port, out in self.handle_packet(packet)
            if isinstance(out, DaietPacket)
        ]

    def handle_ack(self, ack: DaietAck) -> list[tuple[int, Any]]:
        """Process a reliability ACK arriving at this switch.

        ACKs addressed to this switch release buffered flush packets and
        trigger retransmissions (gap-filling on selective ACKs, a full resend
        on ``pull`` ACKs). ACKs addressed elsewhere are forwarded towards the
        child when a port is known, or silently dropped otherwise.
        """
        state = self._trees.get(ack.tree_id)
        if state is None:
            return []
        if ack.dst != self.switch_name:
            port = state.child_ports.get(ack.dst)
            return [(port, ack)] if port is not None else []
        state.counters.acks_received += 1
        sacked = set(ack.sack)
        acked = [s for s in state._unacked if s < ack.cumulative or s in sacked]
        for seq in acked:
            del state._unacked[seq]
        if acked:
            # Progress: previously retransmitted packets may be resent again
            # if a later ACK still reports them missing.
            state._retransmitted.clear()
        if ack.pull:
            missing = sorted(state._unacked)
        else:
            # Gap-fill: everything the receiver provably overtook is resent
            # (at most once per ACK progress, so duplicate ACKs cannot cause
            # a storm); tail losses are recovered by the receiver's pull.
            horizon = max(sacked) if sacked else -1
            missing = sorted(
                s
                for s in state._unacked
                if s < horizon and s not in state._retransmitted
            )
        out: list[tuple[int, Any]] = []
        for seq in missing:
            state._retransmitted.add(seq)
            state.counters.retransmitted_packets += 1
            out.append((state.egress_port, state._unacked[seq]))
        if ack.pull and not state._unacked:
            # Nothing buffered here, yet the receiver is still missing data:
            # the hole is above this switch (e.g. a whole flush burst lost on
            # a downed trunk link, which leaves no SACK gap anywhere below
            # it). Recurse the pull towards the switch children so whichever
            # ancestor still buffers the flush resends it. Host children are
            # skipped — their sender channels run their own retransmit
            # timers.
            for child in state.switch_children:
                port = state.child_ports.get(child)
                if port is not None:
                    state.counters.acks_sent += 1
                    out.append(
                        (
                            port,
                            DaietAck(
                                tree_id=ack.tree_id,
                                src=self.switch_name,
                                dst=child,
                                pull=True,
                            ),
                        )
                    )
        return out

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    @fastpath("sum-register-loop", oracle="tests/core/test_aggregation_properties.py")
    def _process_data(self, state: TreeState, packet: DaietPacket) -> list[tuple[int, Any]]:
        emitted: list[tuple[int, Any]] = []
        if packet.seq is not None:
            window = state.window(packet.src)
            if not window.observe(packet.seq):
                # Retransmission of something already aggregated: idempotent.
                state.counters.duplicate_packets += 1
                return self._ack_child(state, packet.src)
        # Hot loop of Algorithm 1. Register cells are accessed directly (the
        # hash already guarantees a valid index), the per-key CRC32 is
        # memoized on the tree, and ``combine`` skips the AggregationFunction
        # __call__ indirection — this loop runs once per pair per hop.
        counters = state.counters
        key_cells = state.key_register._cells
        value_cells = state.value_register._cells
        slots = state.config.register_slots
        hash_cache = state._hash_cache
        combine = state.function.combine
        index_stack = state.index_stack
        spillover = state.spillover
        pairs = packet.pairs
        inserted = 0
        aggregated = 0
        if combine is _SUM_COMBINE:
            # The sum function (WordCount, gradient aggregation — the
            # dominant workloads) gets its own loop: the merge happens
            # inline and key->slot resolution is a plain subscript (the
            # KeyError path only runs on a key's first appearance).
            for key, value in pairs:
                try:
                    idx = hash_cache[key]
                except KeyError:
                    idx = hash_cache[key] = hash_key(key, slots)
                cell_key = key_cells[idx]
                if cell_key == key:
                    value_cells[idx] = value_cells[idx] + value
                    aggregated += 1
                elif cell_key is None:
                    key_cells[idx] = key
                    value_cells[idx] = value
                    index_stack.push(idx)
                    inserted += 1
                else:
                    counters.collisions += 1
                    if spillover.store(key, value, state.function):
                        if spillover.is_full:
                            emitted.extend(self._flush_spillover(state))
                    else:
                        counters.spillover_merges += 1
        else:
            for key, value in pairs:
                try:
                    idx = hash_cache[key]
                except KeyError:
                    idx = hash_cache[key] = hash_key(key, slots)
                cell_key = key_cells[idx]
                if cell_key is None:
                    key_cells[idx] = key
                    value_cells[idx] = value
                    index_stack.push(idx)
                    inserted += 1
                elif cell_key == key:
                    value_cells[idx] = combine(value_cells[idx], value)
                    aggregated += 1
                else:
                    counters.collisions += 1
                    if spillover.store(key, value, state.function):
                        if spillover.is_full:
                            emitted.extend(self._flush_spillover(state))
                    else:
                        counters.spillover_merges += 1
        counters.pairs_received += len(pairs)
        counters.pairs_inserted += inserted
        counters.pairs_aggregated += aggregated
        if packet.seq is not None:
            src = packet.src
            window = state.window(src)
            if packet.ecn:
                state._ecn_since_ack[src] = state._ecn_since_ack.get(src, 0) + 1
            state._since_ack[src] = state._since_ack.get(src, 0) + 1
            # DCTCP cadence: a CE-marked fresh packet is acknowledged
            # immediately, and each ACK echoes at most one mark (see
            # _ack_child) — the sender's alpha estimator needs the per-ACK
            # mark *rate*, which batching several CE marks into one delayed
            # ACK under-reports.
            ack_now = packet.ecn or state._since_ack[src] >= state._ack_every
            if not ack_now and state.policy == "sampled":
                # A fresh hole is still announced immediately (one early
                # SACK per gap episode) so the sender's gap-fill beats its
                # retransmission timer despite the strided cadence.
                if window.has_gaps:
                    ack_now = src not in state._gapped
                    state._gapped.add(src)
                else:
                    state._gapped.discard(src)
            if ack_now:
                emitted.extend(self._ack_child(state, src))
            if window.complete and src not in state._ended_sources:
                # A retransmitted DATA packet filled the last gap before a
                # previously stashed END: the child's stream is now complete.
                emitted.extend(self._accept_end(state, src))
        return emitted

    @fastpath(
        "vector-register-kernel",
        oracle="tests/core/test_vector_kernel_equivalence.py",
    )
    def _process_data_batch(
        self, state: TreeState, packets: list[DaietPacket]
    ) -> list[tuple[int, int, Any]] | None:
        """Apply a burst of unsequenced DATA packets as one vectorized op.

        The caller (the simulator's batch delivery handler) guarantees every
        packet is an unsequenced DATA packet with a non-``None``
        ``vector_pairs()`` cache, targeting this ``_vec`` tree. The burst is
        concatenated into one kid/value array pair; resident keys resolve to
        register slots through the ``_vec_kid_slot`` memo and are
        scatter-added into ``_vec_delta`` in one ``np.add.at``. Unresolved or
        colliding occurrences take an ordered Python walk that replicates the
        per-pair loop exactly — same insertion winners, same collision
        counters, same ``SpilloverBucket`` store/flush order.

        Returns emissions as ``(packet_index, egress_port, packet)`` so the
        caller can restore each spillover flush to its packet's delivery
        time, or ``None`` when the burst's value mass alone could overflow
        the int64 delta array — the caller then replays the burst through the
        per-pair oracle path.
        """
        n = len(packets)
        if n == 1:
            kid_list, val_list, mass = packets[0].vector_pairs()
            total = len(kid_list)
            kids = _np.array(kid_list, dtype=_np.int64)
            vals = _np.array(val_list, dtype=_np.int64)
            bounds = _np.array([total], dtype=_np.int64)
        else:
            caches = [p._vec_cache for p in packets]
            bounds_list = []
            mass = 0
            total = 0
            for c in caches:
                total += len(c[0])
                mass += c[2]
                bounds_list.append(total)
            chain = _chain.from_iterable
            kids = _np.fromiter(
                chain(c[0] for c in caches), dtype=_np.int64, count=total
            )
            vals = _np.fromiter(
                chain(c[1] for c in caches), dtype=_np.int64, count=total
            )
            bounds = _np.array(bounds_list, dtype=_np.int64)
        return self._vector_apply(state, kids, vals, mass, n, bounds)

    def _vector_apply(
        self,
        state: TreeState,
        kids: Any,
        vals: Any,
        mass: int,
        n: int,
        bounds: Any,
    ) -> list[tuple[int, int, Any]] | None:
        """Array core of the vectorized kernel.

        ``kids``/``vals`` are the burst's interned key ids and values as
        int64 arrays in packet order, ``bounds`` the cumulative per-packet
        pair counts (so emissions can be tagged with the packet index they
        followed), ``mass`` the exact sum of absolute values. Called by
        :meth:`_process_data_batch` and directly by the simulator's burst
        delivery handler, which assembles the arrays from send-time
        precomputed burst plans without touching packet objects.
        """
        if state._vec_mass + mass >= _VEC_MASS_LIMIT:
            state.materialize()
            if mass >= _VEC_MASS_LIMIT:
                return None
        kid_slot = state._vec_kid_slot
        size = kid_slot.shape[0]
        top = int(kids.max())
        if top >= size:
            while size <= top:
                size *= 2
            grown = _np.full(size, _KID_UNKNOWN, dtype=_np.int64)
            grown[: kid_slot.shape[0]] = kid_slot
            state._vec_kid_slot = kid_slot = grown
        st = kid_slot[kids]
        counters = state.counters
        emissions: list[tuple[int, int, Any]] = []
        inserted = 0
        spilled = 0
        neg_pos = _np.flatnonzero(st < 0)
        if len(neg_pos):
            key_cells = state.key_register._cells
            value_cells = state.value_register._cells
            slots = state.config.register_slots
            index_stack = state.index_stack
            crc_of = _interning.crc_of
            key_of = _interning.key_of
            # Phase A: resolve each distinct unknown kid exactly once, in
            # first-occurrence order. That order is what the per-pair loop
            # uses to pick insertion winners, and a kid's verdict (claimed
            # slot vs colliding) cannot change mid-round: cells are only
            # freed by rearm(), which also resets the memo. First-occurrence
            # positions come from a min-scatter (cheaper than a sort-based
            # np.unique at this size, and ufunc.at is well-defined under
            # duplicate indices).
            neg_kids = kids[neg_pos]
            nneg = len(neg_pos)
            first_at = _np.full(size, nneg, dtype=_np.int64)
            _np.minimum.at(first_at, neg_kids, _np.arange(nneg, dtype=_np.int64))
            uniq = _np.flatnonzero(first_at < nneg)
            for kid in uniq[_np.argsort(first_at[uniq])].tolist():
                if kid_slot[kid] != _KID_UNKNOWN:
                    continue
                idx = crc_of(kid) % slots
                cell_key = key_cells[idx]
                if cell_key is None:
                    key_cells[idx] = key_of(kid)
                    value_cells[idx] = 0
                    index_stack.push(idx)
                    kid_slot[kid] = idx
                    inserted += 1
                elif cell_key == key_of(kid):
                    kid_slot[kid] = idx
                else:
                    kid_slot[kid] = _KID_COLLIDING
            # Phase B: re-gather — every formerly unknown occurrence now
            # maps to its slot or to _KID_COLLIDING.
            st_neg = kid_slot[neg_kids]
            st[neg_pos] = st_neg
            # Phase C: walk only the true collisions, in original pair
            # order, replicating SpilloverBucket.store for interned
            # (always hashable) keys and a SUM combine. The resident
            # scatter-add and this stream are independent: claims never
            # read the spillover, collisions never touch the cells.
            coll_rel = _np.flatnonzero(st_neg == _KID_COLLIDING)
            spilled = len(coll_rel)
            if spilled:
                coll_pos = neg_pos[coll_rel]
                coll_kids = neg_kids[coll_rel].tolist()
                coll_vals = vals[coll_pos].tolist()
                if n == 1:
                    coll_pkt = [0] * spilled
                else:
                    coll_pkt = _np.searchsorted(
                        bounds, coll_pos, side="right"
                    ).tolist()
                spillover = state.spillover
                capacity = spillover.capacity
                spairs = spillover._pairs
                sslots = spillover._slots
                merges = 0
                for j in range(spilled):
                    key = key_of(coll_kids[j])
                    held = sslots.get(key)
                    if held is not None:
                        stored_key, stored_value = spairs[held]
                        spairs[held] = (stored_key, stored_value + coll_vals[j])
                        merges += 1
                        continue
                    sslots[key] = len(spairs)
                    spairs.append((key, coll_vals[j]))
                    if len(spairs) >= capacity:
                        pkt_i = coll_pkt[j]
                        for port, out in self._flush_spillover(state):
                            emissions.append((pkt_i, port, out))
                        spairs = spillover._pairs
                        sslots = spillover._slots
                counters.collisions += spilled
                counters.spillover_merges += merges
            resident = st >= 0
            _np.add.at(state._vec_delta, st[resident], vals[resident])
        else:
            _np.add.at(state._vec_delta, st, vals)
        state._vec_mass += mass
        total = int(bounds[-1])
        counters.packets_received += n
        counters.pairs_received += total
        counters.pairs_inserted += inserted
        counters.pairs_aggregated += total - spilled - inserted
        return emissions

    def _process_end(self, state: TreeState, packet: DaietPacket) -> list[tuple[int, Any]]:
        state.counters.end_packets_received += 1
        if packet.seq is not None:
            window = state.window(packet.src)
            fresh = window.observe(packet.seq)
            if fresh:
                window.end_seq = packet.seq
                if packet.ecn:
                    state._ecn_since_ack[packet.src] = (
                        state._ecn_since_ack.get(packet.src, 0) + 1
                    )
            else:
                state.counters.duplicate_packets += 1
            emitted = self._ack_child(state, packet.src)
            if window.complete and packet.src not in state._ended_sources:
                emitted.extend(self._accept_end(state, packet.src))
            # An incomplete stream stashes the END: the decrement happens
            # when retransmissions fill the gaps (see _process_data).
            return emitted
        if state.config.reliable_end:
            if packet.src in state._ended_sources:
                # Retransmitted END: idempotent, no double decrement.
                return []
            return self._accept_end(state, packet.src)
        return self._count_end(state)

    def _accept_end(self, state: TreeState, src: str) -> list[tuple[int, Any]]:
        """Count one child's END exactly once; flush when it was the last."""
        if src in state._ended_sources:
            return []
        state._ended_sources.add(src)
        window = state._seen.get(src)
        if window is not None:
            # The END marker is consumed; the window keeps counting across
            # rounds, so late duplicates are still filtered.
            window.end_seq = None
        return self._count_end(state)

    def _count_end(self, state: TreeState) -> list[tuple[int, Any]]:
        """Decrement the remaining-children counter; flush on the last END."""
        if state.remaining_children <= 0:
            raise AggregationError(
                f"switch {self.switch_name!r} received an unexpected END packet "
                f"for tree {state.tree_id} (all children already ended)"
            )
        state.remaining_children -= 1
        if state.remaining_children > 0:
            return []
        emitted = self._flush_all(state)
        state.rearm()
        return emitted

    def _ack_child(self, state: TreeState, src: str) -> list[tuple[int, Any]]:
        """Build the cumulative+selective ACK for one child's stream."""
        window = state._seen.get(src)
        if window is None:
            return []
        state._since_ack[src] = 0
        port = state.child_ports.get(src)
        if port is None:
            # No known port towards the child (e.g. a tree configured without
            # child ports): the sender's own timeout still recovers losses.
            state.counters.ack_port_misses += 1
            return []
        cumulative, sack = window.ack_state()
        state.counters.acks_sent += 1
        # One mark per ACK, per the DCTCP spec: leftover marks (e.g. several
        # CE-marked packets racing one delayed ACK) drain on subsequent ACKs
        # instead of being batched into a single echo count.
        pending = state._ecn_since_ack.get(src, 0)
        echo = 0
        if pending:
            echo = 1
            state._ecn_since_ack[src] = pending - 1
        ack = DaietAck(
            tree_id=state.tree_id,
            src=self.switch_name,
            dst=src,
            cumulative=cumulative,
            sack=sack,
            ecn_echo=echo,
        )
        return [(port, ack)]

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #
    def _flush_spillover(self, state: TreeState) -> list[tuple[int, Any]]:
        pairs = state.spillover.flush()
        if not pairs:
            return []
        state.counters.spillover_flushes += 1
        return self._emit_pairs(state, pairs, include_end=False)

    def _flush_all(self, state: TreeState) -> list[tuple[int, Any]]:
        """Flush spillover first, then the aggregated registers, then END."""
        state.counters.final_flushes += 1
        state.materialize()
        pairs: list[tuple[str, int]] = list(state.spillover.flush())
        key_cells = state.key_register._cells
        value_cells = state.value_register._cells
        for idx in state.index_stack.drain():
            key = key_cells[idx]
            if key is None:
                raise AggregationError(
                    f"index stack of tree {state.tree_id} pointed at an empty slot"
                )
            pairs.append((key, value_cells[idx]))
            key_cells[idx] = None
            value_cells[idx] = None
        emitted = self._emit_pairs(state, pairs, include_end=True)
        return emitted

    def _emit_pairs(
        self,
        state: TreeState,
        pairs: Iterable[tuple[str, int]],
        include_end: bool,
    ) -> list[tuple[int, Any]]:
        pair_list = pairs if type(pairs) is list else list(pairs)
        packets = fast_data_packets(
            pair_list,
            tree_id=state.tree_id,
            src=self.switch_name,
            dst=state.next_hop_dst,
            config=state.config,
        )
        if packets is None:
            # Keys outside the intern pool's domain (or oversized fixed-width
            # keys, which must raise): packetize with full validation.
            packets = list(
                packetize_pairs(
                    pair_list,
                    tree_id=state.tree_id,
                    src=self.switch_name,
                    dst=state.next_hop_dst,
                    config=state.config,
                    include_end=False,
                )
            )
        if include_end:
            packets.append(
                end_packet(
                    tree_id=state.tree_id,
                    src=self.switch_name,
                    dst=state.next_hop_dst,
                    config=state.config,
                )
            )
        if state._reliable_emit:
            # The switch is itself a reliable sender towards its parent: its
            # emissions carry sequence numbers and stay buffered until the
            # parent acknowledges them (retransmission is ACK/pull-driven
            # because switches have no timers). Best-effort trees skip this
            # entirely: plain unsequenced flushes, nothing buffered.
            sequenced = []
            for packet in packets:
                packet = replace(packet, seq=state._next_seq)
                state._next_seq += 1
                state._unacked[packet.seq] = packet
                sequenced.append(packet)
            packets = sequenced
        state.counters.packets_emitted += len(packets)
        state.counters.pairs_emitted += sum(p.num_pairs for p in packets)
        return [(state.egress_port, packet) for packet in packets]
