"""Exception hierarchy for the DAIET reproduction.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so that
callers can catch the whole family with a single ``except`` clause while still
being able to distinguish configuration problems from runtime data-plane
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class ResourceExhaustedError(ReproError):
    """A data-plane resource budget (SRAM, stages, parse depth) was exceeded."""


class PacketFormatError(ReproError):
    """A packet could not be parsed or serialized."""


class PipelineError(ReproError):
    """A match-action pipeline was misconfigured or violated a constraint."""


class TableError(PipelineError):
    """A match-action table operation failed (duplicate entry, missing rule...)."""


class RoutingError(ReproError):
    """No route exists between two nodes, or a routing table is inconsistent."""


class TopologyError(ReproError):
    """A topology was malformed (disconnected, duplicate node names, ...)."""


class TreeError(ReproError):
    """An aggregation tree could not be constructed or is inconsistent."""


class ControllerError(ReproError):
    """The network controller could not install the requested state."""


class AggregationError(ReproError):
    """The in-switch aggregation logic detected an inconsistent state."""


class TransportError(ReproError):
    """A transport-layer framing or delivery error."""


class JobError(ReproError):
    """A MapReduce job failed or was misconfigured."""


class TrainingError(ReproError):
    """A distributed-training run failed or was misconfigured."""


class GraphError(ReproError):
    """A graph-processing run failed or was misconfigured."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SanitizerError(SimulationError):
    """The runtime sanitizer (``REPRO_SANITIZE=1``) detected an invariant
    violation: broken packet conservation, a non-monotone or structurally
    corrupt event queue, or leaked aggregation register state."""
