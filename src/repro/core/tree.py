"""Aggregation trees.

"An aggregation tree is a spanning tree covering all the paths from all the
mappers to a reducer. There is one tree rooted at each reducer." (Section 4,
Figure 2.) The tree tells every switch which port leads towards the reducer
and how many children (mappers or downstream switches) it will receive traffic
from, so that it knows when all partial results have arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import TreeError
from repro.netsim.devices import Host, SwitchDevice
from repro.netsim.routing import paths_towards
from repro.netsim.topology import Topology


@dataclass
class TreeNode:
    """One node of an aggregation tree."""

    name: str
    parent: str | None
    children: list[str] = field(default_factory=list)
    is_switch: bool = False

    @property
    def is_leaf(self) -> bool:
        """Leaves are the mapper hosts feeding the tree."""
        return not self.children


@dataclass
class AggregationTree:
    """A spanning tree over the paths from every mapper to one reducer."""

    tree_id: int
    reducer: str
    mappers: tuple[str, ...]
    nodes: dict[str, TreeNode] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        topology: Topology,
        tree_id: int,
        reducer: str,
        mappers: Iterable[str],
        exclude: Iterable[str] | None = None,
    ) -> "AggregationTree":
        """Build the tree from the topology's shortest paths.

        Every node's parent is the next hop on *its own* shortest path towards
        the reducer, which guarantees the union of parent pointers is a tree
        even when different mappers' paths overlap.

        ``exclude`` removes devices (crashed or overloaded switches) from
        the path computation, so the controller can re-plan a tree around
        a failure; an unreachable mapper raises
        :class:`~repro.core.errors.RoutingError`.
        """
        mapper_list = tuple(mappers)
        if not mapper_list:
            raise TreeError("an aggregation tree needs at least one mapper")
        if len(set(mapper_list)) != len(mapper_list):
            raise TreeError("duplicate mappers in aggregation tree")
        reducer_device = topology.get(reducer)
        if not isinstance(reducer_device, Host):
            raise TreeError(f"reducer {reducer!r} is not a host")
        for mapper in mapper_list:
            if mapper == reducer:
                raise TreeError(
                    f"mapper {mapper!r} cannot also be the reducer of the same tree"
                )
            if not isinstance(topology.get(mapper), Host):
                raise TreeError(f"mapper {mapper!r} is not a host")

        tree = cls(tree_id=tree_id, reducer=reducer, mappers=mapper_list)
        tree.nodes[reducer] = TreeNode(name=reducer, parent=None, is_switch=False)

        # One BFS towards the reducer serves every mapper's path (the paths
        # are identical to per-mapper shortest_path calls, including the
        # deterministic ECMP choice).
        paths = paths_towards(topology, reducer, mapper_list, exclude=exclude)
        for mapper in mapper_list:
            path = paths[mapper]
            # Walk the path from the mapper towards the reducer, adding each
            # hop with its next hop as parent, stopping as soon as we reach a
            # node that is already part of the tree.
            for position, name in enumerate(path[:-1]):
                parent = path[position + 1]
                if name in tree.nodes:
                    break
                device = topology.get(name)
                tree.nodes[name] = TreeNode(
                    name=name,
                    parent=parent,
                    is_switch=isinstance(device, SwitchDevice),
                )

        # Derive children lists from parent pointers.
        for node in tree.nodes.values():
            if node.parent is not None:
                if node.parent not in tree.nodes:
                    raise TreeError(
                        f"node {node.name!r} has parent {node.parent!r} outside the tree"
                    )
                tree.nodes[node.parent].children.append(node.name)
        for node in tree.nodes.values():
            node.children.sort()
        tree.validate()
        return tree

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def node(self, name: str) -> TreeNode:
        """Return a tree node by device name."""
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise TreeError(f"device {name!r} is not part of tree {self.tree_id}") from exc

    def switches(self) -> list[TreeNode]:
        """Switch nodes of the tree (the devices that aggregate)."""
        return [n for n in self.nodes.values() if n.is_switch]

    def parent(self, name: str) -> str | None:
        """Parent device of ``name`` (``None`` for the reducer root)."""
        return self.node(name).parent

    def children_count(self, name: str) -> int:
        """Number of children feeding traffic into ``name``."""
        return len(self.node(name).children)

    def first_hop_switch(self, mapper: str) -> str | None:
        """The first switch a mapper's traffic reaches, or ``None`` if direct."""
        parent = self.node(mapper).parent
        if parent is None:
            return None
        return parent if self.node(parent).is_switch else None

    def depth(self) -> int:
        """Longest mapper-to-reducer hop count in the tree."""
        longest = 0
        for mapper in self.mappers:
            hops = 0
            current: str | None = mapper
            while current is not None and current != self.reducer:
                current = self.node(current).parent
                hops += 1
            longest = max(longest, hops)
        return longest

    def path_to_root(self, name: str) -> list[str]:
        """Devices visited from ``name`` up to (and including) the reducer."""
        path = [name]
        current = self.node(name)
        seen = {name}
        while current.parent is not None:
            parent = current.parent
            if parent in seen:
                raise TreeError(f"cycle detected in tree {self.tree_id} at {parent!r}")
            path.append(parent)
            seen.add(parent)
            current = self.node(parent)
        return path

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the tree invariants: rooted, acyclic, mappers are leaves."""
        if self.reducer not in self.nodes:
            raise TreeError("tree does not contain its reducer")
        if self.nodes[self.reducer].parent is not None:
            raise TreeError("the reducer must be the root of the tree")
        roots = [n.name for n in self.nodes.values() if n.parent is None]
        if roots != [self.reducer]:
            raise TreeError(f"tree has unexpected roots {roots}")
        for mapper in self.mappers:
            if mapper not in self.nodes:
                raise TreeError(f"mapper {mapper!r} missing from the tree")
            path = self.path_to_root(mapper)
            if path[-1] != self.reducer:
                raise TreeError(f"mapper {mapper!r} does not reach the reducer")
        # Parent/children consistency.
        for node in self.nodes.values():
            for child in node.children:
                if self.nodes[child].parent != node.name:
                    raise TreeError(
                        f"child {child!r} of {node.name!r} disagrees about its parent"
                    )
