"""DAIET core: the paper's primary contribution.

The subpackage contains the DAIET wire format (:mod:`packet`), the registry of
commutative/associative aggregation functions (:mod:`functions`), the in-switch
aggregation engine implementing Algorithm 1 (:mod:`aggregation`), aggregation
trees (:mod:`tree`), the network controller (:mod:`controller`) and the
:class:`~repro.core.daiet.DaietSystem` facade (:mod:`daiet`).
"""

from repro.core.aggregation import DaietAggregationEngine, TreeCounters, TreeState, hash_key
from repro.core.config import DaietConfig, ExperimentConfig
from repro.core.controller import (
    AGGREGATE_ACTION,
    DaietController,
    InstalledJob,
    JobAllocation,
)
from repro.core.daiet import DaietReceiver, DaietSystem, ReceiverCounters
from repro.core.errors import (
    AggregationError,
    ConfigurationError,
    ControllerError,
    PacketFormatError,
    ReproError,
    TreeError,
)
from repro.core.functions import (
    MAX,
    MIN,
    SUM,
    VECTOR_SUM,
    AggregationFunction,
    aggregate_pairs,
    available,
    get,
    register,
)
from repro.core.packet import (
    DAIET_UDP_PORT,
    DaietPacket,
    DaietPacketType,
    end_packet,
    packetize_pairs,
)
from repro.core.tree import AggregationTree, TreeNode

__all__ = [
    "DaietAggregationEngine",
    "TreeCounters",
    "TreeState",
    "hash_key",
    "DaietConfig",
    "ExperimentConfig",
    "AGGREGATE_ACTION",
    "DaietController",
    "InstalledJob",
    "JobAllocation",
    "DaietReceiver",
    "DaietSystem",
    "ReceiverCounters",
    "AggregationError",
    "ConfigurationError",
    "ControllerError",
    "PacketFormatError",
    "ReproError",
    "TreeError",
    "MAX",
    "MIN",
    "SUM",
    "VECTOR_SUM",
    "AggregationFunction",
    "aggregate_pairs",
    "available",
    "get",
    "register",
    "DAIET_UDP_PORT",
    "DaietPacket",
    "DaietPacketType",
    "end_packet",
    "packetize_pairs",
    "AggregationTree",
    "TreeNode",
]
