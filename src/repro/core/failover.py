"""Controller failover: crash detection, tree re-planning and replay.

The paper's controller installs aggregation trees once and assumes the
fabric stays healthy. This module adds the recovery half: a
:class:`FailoverManager` runs a heartbeat on the simulation clock, detects
crashed aggregation switches (via the fault injector's authoritative
up/down state — the simulated stand-in for a missed-heartbeat timeout),
releases every resource the dead switch held, re-plans the affected trees
through the surviving fabric (:meth:`DaietController.replan_tree`) and
re-drives the data through the PR 1 reliability layer.

Recovery semantics are epoch-based. A re-planned tree gets a **fresh tree
id**; the reducer's receiver is reset to the new epoch and every mapper's
retained send history (``DaietConfig.retain_for_replay``) is re-stamped
and replayed through a fresh sender channel. Stray packets of the dead
epoch — late switch flushes, in-flight ACKs — are harmless by
construction: their steering entries are gone, so they are plain-forwarded
and then ignored by the tree-id filter at the receiver. With
``reliability`` and ``retain_for_replay`` on, the post-recovery aggregate
is therefore bit-identical to a fault-free run. Without them the manager
*degrades gracefully*: it still releases the dead switch's resources and
logs the event, and the run completes with a bounded, reported aggregate
error instead of hanging or crashing.

The same teardown/re-plan/replay machinery also serves *rebalancing*:
:meth:`FailoverManager.move_tree` re-plans a healthy tree around an
overloaded switch flagged by the hotspot detector
(:mod:`repro.analysis.hotspots`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.core.controller import InstalledJob
from repro.core.errors import ControllerError, RoutingError
from repro.netsim.routing import compute_routes, install_forwarding_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.daiet import DaietSystem
    from repro.core.tree import AggregationTree
    from repro.netsim.faults import FaultInjector


@dataclass(frozen=True)
class FailoverConfig:
    """Tunables of the failover manager."""

    #: Heartbeat period in simulated seconds. Detection latency is at most
    #: one period, so this must sit well below the reliability layer's
    #: give-up horizon (``max_retransmits`` pull intervals) for replay to
    #: win the race against sender give-up.
    heartbeat_interval: float = 2.5e-4
    #: Hard cap on heartbeat ticks, bounding simulation length when the
    #: system can never converge (e.g. reliability off and ENDs lost).
    max_ticks: int = 400


class FailoverManager:
    """Heartbeat-driven crash detection and tree recovery for one system."""

    def __init__(
        self,
        system: "DaietSystem",
        injector: "FaultInjector",
        config: FailoverConfig | None = None,
    ) -> None:
        self.system = system
        self.injector = injector
        self.config = config or FailoverConfig()
        #: (sim time, description) log of every control-plane action taken,
        #: in deterministic order (reports embed it verbatim).
        self.log: list[tuple[float, str]] = []
        self._handled_crashes: set[str] = set()
        self._ticks = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Heartbeat
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Arm the heartbeat on the simulation scheduler."""
        if self._started:
            return
        self._started = True
        self.system.simulator.scheduler.schedule(
            self.config.heartbeat_interval, self._tick
        )

    def _tick(self) -> None:
        self._ticks += 1
        down = set(self.injector.down_switch_names())
        for name in sorted(down - self._handled_crashes):
            self._handled_crashes.add(name)
            self.handle_switch_crash(name)
        for name in sorted(self._handled_crashes - down):
            self._handled_crashes.discard(name)
            self._handle_switch_restart(name)
        if self._ticks >= self.config.max_ticks or self._quiescent():
            return
        self.system.simulator.scheduler.schedule(
            self.config.heartbeat_interval, self._tick
        )

    def _quiescent(self) -> bool:
        """True once every receiver completed and every channel drained."""
        system = self.system
        for job in system.controller.jobs:
            for reducer in job.trees:
                try:
                    if not system.receiver(reducer).done:
                        return False
                except ControllerError:
                    return False
        for agent in system._agents.values():
            for channel in agent.sender_channels().values():
                if not channel.done:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # Crash handling
    # ------------------------------------------------------------------ #
    def handle_switch_crash(self, switch: str) -> None:
        """Recover every tree traversing ``switch`` and reroute around it."""
        now = self.system.simulator.now
        self.log.append((now, f"detected crash of {switch}"))
        down = self.injector.down_switch_names()
        self._reinstall_routes(exclude=down)
        for job in list(self.system.controller.jobs):
            for reducer in sorted(job.trees):
                if switch in job.trees[reducer].nodes:
                    # Exclude *every* currently-down switch, not just the one
                    # that triggered this recovery: under overlapping crashes
                    # the replacement tree must avoid them all.
                    self.move_tree(job, reducer, exclude=down)

    def _handle_switch_restart(self, switch: str) -> None:
        """Repopulate a restarted (blank) switch's forwarding table."""
        now = self.system.simulator.now
        self.log.append((now, f"detected restart of {switch}"))
        self._reinstall_routes(exclude=self.injector.down_switch_names())

    def _reinstall_routes(self, exclude: Iterable[str]) -> None:
        """Recompute forwarding around ``exclude`` and reinstall everywhere up."""
        system = self.system
        excluded = sorted(set(exclude))
        try:
            routes = compute_routes(system.topology, exclude=excluded)
        except RoutingError as exc:
            self.log.append(
                (system.simulator.now, f"rerouting impossible: {exc}")
            )
            return
        installed = install_forwarding_rules(
            system.topology, routes, skip=excluded, clear_first=True
        )
        system.simulator.routes = routes
        self.log.append(
            (
                system.simulator.now,
                f"reinstalled {installed} routes (excluding "
                f"{','.join(excluded) if excluded else 'nothing'})",
            )
        )

    # ------------------------------------------------------------------ #
    # Re-planning and replay (shared by failover and rebalancing)
    # ------------------------------------------------------------------ #
    def move_tree(
        self, job: InstalledJob, reducer: str, exclude: Iterable[str]
    ) -> "AggregationTree | None":
        """Re-plan one reducer's tree around ``exclude`` and replay into it.

        Returns the replacement tree, or ``None`` when the system cannot
        recover exactly (no route, or replay disabled) — in which case the
        degradation is logged and the old resources stay released.
        """
        system = self.system
        now = system.simulator.now
        old_tree = job.tree_for_reducer(reducer)
        old_id = old_tree.tree_id
        policy = system.tree_policy(old_id)
        excluded = sorted(set(exclude))
        try:
            tree = system.controller.replan_tree(
                job, reducer, exclude=excluded, policy=policy
            )
        except RoutingError as exc:
            self.log.append(
                (now, f"tree {old_id} ({reducer}): replan failed, degraded: {exc}")
            )
            return None
        system.register_tree_policy(tree.tree_id, policy)
        tracker = getattr(system, "error_tracker", None)
        if tracker is not None:
            # The logical aggregate spans the whole epoch lineage: carry the
            # dead epoch's loss ledger over to the replacement tree id.
            tracker.merge_epoch(old_id, tree.tree_id)
        self.log.append(
            (
                now,
                f"tree {old_id} ({reducer}) re-planned as tree {tree.tree_id} "
                f"avoiding {','.join(excluded)}",
            )
        )
        # Rebind the reducer to the new epoch: fresh dedup windows and a
        # receiver that only counts the replacement tree's packets. This
        # happens even in degraded mode — the old epoch is dead either way,
        # and future traffic must land in the replacement tree.
        config = system.config
        receiver = system.receiver(reducer)
        if config.reliability:
            reducer_agent = system.agent(reducer)
            reducer_agent.detach_tree(old_id)
        receiver.reset(tree.tree_id, tree.children_count(reducer))
        if config.reliability:
            reducer_agent.attach_tree(
                tree.tree_id,
                children=tree.node(reducer).children,
                inner=receiver.receive,
                policy=policy,
            )
        if policy == "best_effort":
            # A best-effort tree chose to tolerate loss: recovery re-plans
            # the topology but never replays — no replay storms, the run
            # terminates with its deficit reported by the error ledger.
            self.log.append(
                (
                    now,
                    f"tree {tree.tree_id} ({reducer}): no replay "
                    "(policy best_effort), deficit reported",
                )
            )
            return tree
        if not (config.reliability and config.retain_for_replay):
            self.log.append(
                (
                    now,
                    f"tree {tree.tree_id} ({reducer}): no replay "
                    "(reliability/retain_for_replay off), aggregate degraded",
                )
            )
            return tree

        # Replay every mapper's retained history through a fresh channel,
        # re-stamped for the new epoch. The old channel is closed first so
        # no timer of the dead epoch ever fires again.
        replayed = 0
        for mapper in tree.mappers:
            mapper_agent = system.agent(mapper)
            old_channel = mapper_agent.drop_sender(old_id)
            history = old_channel.sent_packets() if old_channel is not None else []
            if not history:
                continue
            channel = mapper_agent.sender(tree.tree_id, policy=policy)
            channel.send(
                [
                    replace(packet, tree_id=tree.tree_id, seq=channel.take_seq())
                    for packet in history
                ]
            )
            replayed += len(history)
        if replayed:
            reducer_agent.arm(tree.tree_id)
        self.log.append(
            (now, f"tree {tree.tree_id} ({reducer}): replayed {replayed} packets")
        )
        return tree
