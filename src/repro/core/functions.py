"""Aggregation functions.

The paper restricts in-network computation to aggregation functions that are
*commutative and associative*, so they "can be applied separately on different
portions of the input data, disregarding the order, without affecting the
correctness of the final result". This module provides the registry of such
functions used by the switch aggregation engine, the MapReduce combiners, the
parameter server and the Pregel combiners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.errors import AggregationError


@dataclass(frozen=True)
class AggregationFunction:
    """A named commutative/associative binary aggregation function.

    Attributes
    ----------
    name:
        Registry name, also used in controller flow rules.
    combine:
        Binary function merging two values.
    identity:
        Optional identity element (used when folding an empty sequence).
    """

    name: str
    combine: Callable[[Any, Any], Any]
    identity: Any = None

    def __call__(self, left: Any, right: Any) -> Any:
        return self.combine(left, right)

    def reduce(self, values: Iterable[Any]) -> Any:
        """Fold an iterable of values with this function."""
        iterator = iter(values)
        try:
            accumulator = next(iterator)
        except StopIteration:
            if self.identity is None:
                raise AggregationError(
                    f"cannot reduce an empty sequence with {self.name!r} "
                    "(no identity element)"
                ) from None
            return self.identity
        for value in iterator:
            accumulator = self.combine(accumulator, value)
        return accumulator


def _vector_sum(left: Any, right: Any) -> Any:
    """Element-wise addition of two equal-length sequences (or numpy arrays)."""
    if hasattr(left, "__add__") and not isinstance(left, (list, tuple)):
        return left + right
    if len(left) != len(right):
        raise AggregationError(
            f"vector_sum requires equal lengths, got {len(left)} and {len(right)}"
        )
    return type(left)(a + b for a, b in zip(left, right))


SUM = AggregationFunction(name="sum", combine=lambda a, b: a + b, identity=0)
COUNT = AggregationFunction(name="count", combine=lambda a, b: a + b, identity=0)
MIN = AggregationFunction(name="min", combine=min)
MAX = AggregationFunction(name="max", combine=max)
BITWISE_OR = AggregationFunction(name="or", combine=lambda a, b: a | b, identity=0)
BITWISE_AND = AggregationFunction(name="and", combine=lambda a, b: a & b)
VECTOR_SUM = AggregationFunction(name="vector_sum", combine=_vector_sum)

_REGISTRY: dict[str, AggregationFunction] = {
    func.name: func
    for func in (SUM, COUNT, MIN, MAX, BITWISE_OR, BITWISE_AND, VECTOR_SUM)
}


def register(func: AggregationFunction) -> AggregationFunction:
    """Add a custom aggregation function to the registry."""
    if func.name in _REGISTRY:
        raise AggregationError(f"aggregation function {func.name!r} already registered")
    _REGISTRY[func.name] = func
    return func


def get(name: str) -> AggregationFunction:
    """Look up an aggregation function by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise AggregationError(
            f"unknown aggregation function {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available() -> list[str]:
    """Names of every registered aggregation function."""
    return sorted(_REGISTRY)


def aggregate_pairs(
    pairs: Iterable[tuple[Any, Any]],
    function: AggregationFunction,
) -> dict[Any, Any]:
    """Aggregate a stream of key-value pairs into a per-key dictionary.

    This is the reference ("ideal") aggregation used to validate in-network
    results: the final value for each key must be identical whether
    aggregation happened at hosts, in switches, or here.
    """
    result: dict[Any, Any] = {}
    for key, value in pairs:
        if key in result:
            result[key] = function(result[key], value)
        else:
            result[key] = value
    return result
