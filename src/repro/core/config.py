"""Configuration objects for the DAIET system.

The values and their defaults follow Section 5 of the paper: 16K key/value
register slots per tree, 16-byte fixed-size keys, 4-byte integer values, and at
most 10 key-value pairs per packet (the parseable-bytes limit of current P4
hardware, roughly 200-300 B per packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

#: Default number of key/value register slots per aggregation tree (paper: 16K).
DEFAULT_REGISTER_SLOTS = 16 * 1024

#: Default fixed key width in bytes (paper: words of maximum 16 characters).
DEFAULT_KEY_WIDTH = 16

#: Default value width in bytes (paper: 4 B integer value).
DEFAULT_VALUE_WIDTH = 4

#: Default maximum number of key-value pairs carried by one DAIET packet
#: (paper: "one DAIET packet can contain at most 10 key-value pairs").
DEFAULT_PAIRS_PER_PACKET = 10

#: Size in bytes of the DAIET preamble (tree id, packet type, number of pairs).
DAIET_PREAMBLE_BYTES = 8

#: Per-packet overhead of the simulated UDP/IP/Ethernet encapsulation.
UDP_HEADER_BYTES = 8
IP_HEADER_BYTES = 20
ETHERNET_HEADER_BYTES = 14

#: Per-segment overhead of the simulated TCP/IP/Ethernet encapsulation.
TCP_HEADER_BYTES = 20

#: Default TCP maximum segment size used by the TCP baseline (standard 1500 B
#: MTU minus IP and TCP headers).
DEFAULT_TCP_MSS = 1460


@dataclass(frozen=True)
class DaietConfig:
    """Static configuration of a DAIET deployment.

    Parameters
    ----------
    register_slots:
        Number of single-element hash buckets in the per-tree key and value
        register arrays.
    key_width:
        Fixed serialized width of a key in bytes. Keys longer than this are
        rejected; shorter keys are padded (the paper notes this padding as an
        overhead to be removed in future work).
    value_width:
        Serialized width of a value in bytes.
    pairs_per_packet:
        Maximum number of key-value pairs per DAIET data packet.
    spillover_capacity:
        Number of pairs held in the spillover bucket before it is flushed to
        the next node. The paper sizes it as "as many entries as the number of
        pairs that can fit in one packet"; ``None`` keeps that behaviour.
    variable_length_keys:
        Extension flag (paper future work): serialize keys with a one-byte
        length prefix instead of fixed-size padding.
    reliable_end:
        Idempotent END-packet handling: retransmitted or duplicated END
        packets from a child never double-decrement the remaining-children
        counter. The paper leaves loss handling as future work; the
        reproduction promotes idempotent ENDs to the default path (disable
        only to demonstrate the historical failure mode).
    reliability:
        Enable the full end-host reliability layer: per-(tree, sender)
        sequence numbers on every DATA/END packet, cumulative+selective ACKs,
        timeout-driven retransmission at the hosts and reactive
        retransmission of buffered flush packets at the switches. Makes
        aggregation results exact under non-zero ``Link.loss_rate``.
    retransmit_timeout:
        Base retransmission timeout in (simulated) seconds for host senders;
        also paces the receiver-side pull timer. Doubles per consecutive
        timeout up to a small cap.
    ack_window:
        A receiver acknowledges every ``ack_window``-th in-order packet
        (duplicates and END markers are acknowledged immediately), so ACK
        overhead is ~1/ack_window of the data packet count.
    max_retransmits:
        Per-channel cap on consecutive unacknowledged retransmission rounds
        before the sender gives up and raises, bounding simulation time on
        pathological loss rates.
    retain_for_replay:
        Keep every sent packet (not just unacknowledged ones) in the host
        sender channels so the failover manager can replay a mapper's whole
        stream through a re-planned aggregation tree after a switch crash.
        The map-output buffer doubles as the recovery log; requires
        ``reliability`` to be effective.
    adaptive_rto:
        Estimate the retransmission timeout from SRTT/RTTVAR samples (RFC
        6298, Karn's rule on retransmitted packets) instead of using
        ``retransmit_timeout`` as a fixed RTO. Off by default — the fixed
        RTO is the historical, byte-identical behaviour.
    rto_floor:
        Lower clamp on the retransmission timeout in seconds. In fixed-RTO
        mode a floor above ``retransmit_timeout`` simply raises the fixed
        RTO; in adaptive mode it bounds how aggressively the estimator may
        retransmit. ``None`` leaves the timeout unclamped.
    rto_ceiling:
        Upper clamp on the (adaptive, backed-off) retransmission timeout.
    congestion_control:
        Sender window policy: ``"none"`` (unlimited in-flight window, the
        historical behaviour), ``"aimd"`` (slow start + additive increase,
        multiplicative decrease on loss) or ``"dctcp"`` (AIMD whose decrease
        scales with the EWMA fraction of ECN-marked acknowledgements).
    initial_cwnd:
        Initial congestion window in packets (ignored for ``"none"``).
    min_cwnd:
        Smallest window the congestion controller may shrink to.
    dctcp_gain:
        EWMA gain ``g`` of the DCTCP mark-fraction estimate.
    reliability_policy:
        Per-tree reliability class (SAP-inspired selective reliability):
        ``"exact"`` keeps the full PR 1 protocol (the default, byte-identical
        behaviour); ``"sampled"`` keeps sequence numbers, dedup and
        retransmission but acknowledges only every
        ``sampled_ack_stride``-th ack window (duplicates, ENDs and freshly
        detected gaps are still acknowledged immediately) and degrades
        instead of raising when a sender exhausts its retries;
        ``"best_effort"`` disables the reliability protocol for the tree
        entirely — no sequence numbers, no ACKs, no retransmission — so
        losses surface as a measured, bounded aggregate deficit
        (see :mod:`repro.analysis.error_bounds`). Non-exact policies
        require ``reliability=True``: the policy selects *how much* of the
        reliability machinery a tree uses, and jobs can override it
        per tree via ``DaietSystem.install_job(policy=...)``.
    sampled_ack_stride:
        Under the ``"sampled"`` policy, acknowledge every k-th ack window
        instead of every one (and stretch the receiver pull timer by the
        same factor), cutting steady-state ACK traffic to ~1/k.
    initial_inflight_cap:
        First-RTT pacing cap on every windowed sender: at most this many
        packets may be in flight before the first ACK (or first timeout)
        is observed, after which the configured congestion window governs.
        Protects shallow switch buffers from the connection-setup burst at
        high fan-in. ``None`` (default) keeps the historical unpaced burst.
    """

    register_slots: int = DEFAULT_REGISTER_SLOTS
    key_width: int = DEFAULT_KEY_WIDTH
    value_width: int = DEFAULT_VALUE_WIDTH
    pairs_per_packet: int = DEFAULT_PAIRS_PER_PACKET
    spillover_capacity: int | None = None
    variable_length_keys: bool = False
    reliable_end: bool = True
    reliability: bool = False
    retransmit_timeout: float = 1e-4
    ack_window: int = 8
    max_retransmits: int = 30
    retain_for_replay: bool = False
    adaptive_rto: bool = False
    rto_floor: float | None = None
    rto_ceiling: float = 0.25
    congestion_control: str = "none"
    initial_cwnd: int = 10
    min_cwnd: int = 2
    dctcp_gain: float = 0.0625
    reliability_policy: str = "exact"
    sampled_ack_stride: int = 4
    initial_inflight_cap: int | None = None

    def __post_init__(self) -> None:
        if self.register_slots <= 0:
            raise ConfigurationError("register_slots must be positive")
        if self.key_width <= 0:
            raise ConfigurationError("key_width must be positive")
        if self.value_width <= 0:
            raise ConfigurationError("value_width must be positive")
        if self.pairs_per_packet <= 0:
            raise ConfigurationError("pairs_per_packet must be positive")
        if self.spillover_capacity is not None and self.spillover_capacity <= 0:
            raise ConfigurationError("spillover_capacity must be positive when set")
        if self.retransmit_timeout <= 0:
            raise ConfigurationError("retransmit_timeout must be positive")
        if self.ack_window <= 0:
            raise ConfigurationError("ack_window must be positive")
        if self.max_retransmits <= 0:
            raise ConfigurationError("max_retransmits must be positive")
        if self.congestion_control not in ("none", "aimd", "dctcp"):
            raise ConfigurationError(
                f"unknown congestion_control {self.congestion_control!r}; "
                "expected 'none', 'aimd' or 'dctcp'"
            )
        if self.rto_floor is not None and self.rto_floor <= 0:
            raise ConfigurationError("rto_floor must be positive when set")
        if self.rto_ceiling <= 0:
            raise ConfigurationError("rto_ceiling must be positive")
        if self.initial_cwnd <= 0:
            raise ConfigurationError("initial_cwnd must be positive")
        if self.min_cwnd <= 0:
            raise ConfigurationError("min_cwnd must be positive")
        if not 0.0 < self.dctcp_gain <= 1.0:
            raise ConfigurationError("dctcp_gain must lie in (0, 1]")
        if self.reliability_policy not in ("exact", "sampled", "best_effort"):
            raise ConfigurationError(
                f"unknown reliability_policy {self.reliability_policy!r}; "
                "expected 'exact', 'sampled' or 'best_effort'"
            )
        if self.reliability_policy != "exact" and not self.reliability:
            raise ConfigurationError(
                f"reliability_policy {self.reliability_policy!r} requires "
                "reliability=True (the policy selects how much of the "
                "reliability machinery a tree uses)"
            )
        if self.sampled_ack_stride <= 0:
            raise ConfigurationError("sampled_ack_stride must be positive")
        if self.initial_inflight_cap is not None and self.initial_inflight_cap <= 0:
            raise ConfigurationError(
                "initial_inflight_cap must be positive when set"
            )

    @property
    def effective_spillover_capacity(self) -> int:
        """Spillover bucket capacity in pairs (defaults to one packet's worth)."""
        if self.spillover_capacity is not None:
            return self.spillover_capacity
        return self.pairs_per_packet

    @property
    def pair_bytes(self) -> int:
        """Serialized size of a single fixed-size key-value pair."""
        return self.key_width + self.value_width

    @property
    def max_payload_bytes(self) -> int:
        """Largest DAIET payload (preamble plus a full complement of pairs)."""
        return DAIET_PREAMBLE_BYTES + self.pairs_per_packet * self.pair_bytes

    def sram_bytes(self) -> int:
        """Estimate the switch SRAM needed for one aggregation tree.

        The paper estimates ~10 MB for 16K pairs with 16 B keys and 4 B values
        across the full register/index-stack layout; we account for the two
        register arrays plus the index stack (4 B per slot).
        """
        per_slot = self.key_width + self.value_width + 4
        return self.register_slots * per_slot


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the benchmark harness.

    These mirror the paper's testbed scale and can be scaled down for quick
    runs: 24 mappers, 12 reducers, 500 MB of random words, one bmv2 switch.
    """

    num_mappers: int = 24
    num_reducers: int = 12
    corpus_bytes: int = 5_000_000
    seed: int = 2017
    daiet: DaietConfig = field(default_factory=DaietConfig)

    def __post_init__(self) -> None:
        if self.num_mappers <= 0:
            raise ConfigurationError("num_mappers must be positive")
        if self.num_reducers <= 0:
            raise ConfigurationError("num_reducers must be positive")
        if self.corpus_bytes <= 0:
            raise ConfigurationError("corpus_bytes must be positive")
