"""DAIET wire format.

Section 4 of the paper: intermediate map output "partitions are sent to the
reducer using UDP packets containing a small preamble and a sequence of
key-value pairs"; the preamble specifies the number of pairs and the tree id;
pairs use a fixed-size representation (16-byte keys, 4-byte integer values in
the prototype) so that packetization never needs to deserialize the data; the
end of a partition is marked by a special END packet.

:class:`DaietPacket` models one such UDP packet. It exposes

* ``wire_bytes()`` — full frame size including Ethernet/IP/UDP encapsulation,
* ``header_stack()`` — the headers visible to the bounded-depth switch parser
  (preamble plus one header per pair, which is exactly why the pair count per
  packet is limited on real hardware),
* ``encode()`` / ``decode()`` — an actual byte-level serialization used by the
  round-trip property tests.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.core.config import (
    DAIET_PREAMBLE_BYTES,
    ETHERNET_HEADER_BYTES,
    IP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    DaietConfig,
)
from repro.core.errors import PacketFormatError
from repro.dataplane import interning as _interning

try:  # The vectorized kernel needs numpy; everything else works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

#: Sentinel marking a packet whose vector cache has not been computed yet.
_VEC_UNSET = object()

#: Values outside this open interval make a packet ineligible for the
#: vectorized kernel: the per-tree delta array accumulates in int64, and the
#: kernel's overflow guard (see ``TreeState._vec_mass``) needs per-value
#: magnitudes comfortably below 2**63.
_VEC_VALUE_LIMIT = 1 << 62

#: UDP destination port reserved for DAIET traffic in the simulation.
DAIET_UDP_PORT = 5555

#: Preamble flag: a 32-bit per-tree sequence number follows the preamble.
FLAG_SEQ = 0x01

#: Preamble flag: one key-length byte per pair follows the (optional) sequence
#: number. Only emitted for fixed-width packets whose keys end in NUL bytes,
#: which padding-stripping alone cannot round-trip.
FLAG_KEYLEN = 0x02

#: Serialized size of the optional per-tree sequence number.
SEQ_BYTES = 4

#: Serialized size of a DAIET ACK payload before its SACK list (preamble-sized
#: header plus 32-bit cumulative ACK, 16-bit SACK count and an 8-bit pull flag).
DAIET_ACK_BASE_BYTES = DAIET_PREAMBLE_BYTES + 7

#: Serialized size of one SACK entry in a DAIET ACK.
DAIET_ACK_SACK_BYTES = 4

#: Serialized size of the optional ECN-echo counter in a DAIET ACK (16-bit,
#: only present when the echoed count is non-zero — see ``DaietAck.ecn_echo``).
DAIET_ACK_ECN_BYTES = 2

#: Maximum SACK entries one ACK may carry: the ACK must stay within the
#: switch parser's bounded parse depth (~300 B), exactly like DATA packets
#: are limited to ~10 pairs. Receivers report the lowest out-of-order
#: sequence numbers first; anything beyond the cap is recovered by later
#: ACKs or the pull path.
DAIET_ACK_MAX_SACK = 32


class DaietPacketType(enum.Enum):
    """The two packet kinds of the DAIET protocol."""

    DATA = 1
    END = 2


@dataclass(frozen=True, slots=True)
class DaietPacket:
    """One DAIET protocol packet (DATA with key-value pairs, or END marker).

    Instances are immutable, so every derived quantity that the hot paths
    need repeatedly — payload/wire sizes, the key-length flag, the parser's
    size profile — is computed once in ``__post_init__`` (or lazily, for the
    parser profile) and cached in slots. ``wire_bytes()`` in particular is
    read on every hop, every stats record and every retransmission.
    """

    tree_id: int
    src: str
    dst: str
    packet_type: DaietPacketType = DaietPacketType.DATA
    pairs: tuple[tuple[str, int], ...] = ()
    config: DaietConfig = field(default_factory=DaietConfig)
    #: Optional per-(tree, sender) sequence number used by the reliability
    #: layer; ``None`` keeps the original, unreliable wire format byte-for-byte.
    seq: int | None = None
    #: ECN congestion-experienced bit. The packet is otherwise immutable, but
    #: a congested switch egress queue sets this in flight (the simulator uses
    #: ``object.__setattr__``, mirroring a real CE re-mark) — it is excluded
    #: from equality so a marked packet still deduplicates against its
    #: unmarked retransmission. The bit rides in the IP header, so it never
    #: changes any wire size.
    ecn: bool = field(default=False, compare=False)
    #: Cached: True when fixed-width keys need explicit length bytes on the wire.
    _keylen_needed: bool = field(init=False, repr=False, compare=False)
    #: Cached DAIET payload size (preamble + pairs).
    _payload_bytes: int = field(init=False, repr=False, compare=False)
    #: Cached lazily on first ``header_sizes()`` call (see that method).
    _header_sizes: tuple[tuple[str, int], ...] | None = field(
        init=False, repr=False, compare=False
    )
    #: Cached lazily on first ``vector_pairs()`` call (see that method).
    _vec_cache: Any = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.tree_id < 0:
            raise PacketFormatError("tree_id must be non-negative")
        if self.seq is not None and not 0 <= self.seq < 2**32:
            raise PacketFormatError("seq must fit an unsigned 32-bit field")
        if self.packet_type is DaietPacketType.END and self.pairs:
            raise PacketFormatError("END packets must not carry key-value pairs")
        config = self.config
        if len(self.pairs) > config.pairs_per_packet:
            raise PacketFormatError(
                f"packet carries {len(self.pairs)} pairs but the configuration "
                f"allows at most {config.pairs_per_packet}"
            )
        # One pass over the pairs computes everything the old code derived in
        # three separate loops (width validation, the key-length flag and the
        # serialized pair bytes). ASCII ``str`` keys — the overwhelmingly
        # common case — never touch ``str.encode``.
        variable = config.variable_length_keys
        key_width = config.key_width
        keylen_needed = False
        var_key_bytes = 0
        for key, _value in self.pairs:
            if type(key) is str and key.isascii():
                encoded_len = len(key)
                ends_nul = encoded_len > 0 and key[-1] == "\x00"
            else:
                encoded = key.encode() if isinstance(key, str) else bytes(key)
                encoded_len = len(encoded)
                ends_nul = encoded.endswith(b"\x00")
            if variable:
                var_key_bytes += encoded_len
            else:
                if encoded_len > key_width:
                    raise PacketFormatError(
                        f"key {key!r} is {encoded_len} B, exceeding the fixed key "
                        f"width of {key_width} B"
                    )
                if ends_nul:
                    keylen_needed = True
        num_pairs = len(self.pairs)
        if variable:
            pair_bytes = num_pairs * (1 + config.value_width) + var_key_bytes
        else:
            pair_bytes = num_pairs * config.pair_bytes
            if keylen_needed:
                pair_bytes += num_pairs
        extra = SEQ_BYTES if self.seq is not None else 0
        object.__setattr__(self, "_keylen_needed", keylen_needed)
        object.__setattr__(
            self, "_payload_bytes", DAIET_PREAMBLE_BYTES + extra + pair_bytes
        )
        object.__setattr__(self, "_header_sizes", None)
        object.__setattr__(self, "_vec_cache", _VEC_UNSET)

    # ------------------------------------------------------------------ #
    # Vectorized-kernel view
    # ------------------------------------------------------------------ #
    def vector_pairs(self):
        """The packet's pairs as ``(kid_list, value_list, mass)``, or ``None``.

        The vectorized register kernel consumes bursts of packets as interned
        key-id / value lists (see :mod:`repro.dataplane.interning`); the
        burst is concatenated and converted to int64 arrays in one go, which
        is far cheaper than carrying a tiny ndarray per packet. ``mass`` is
        the sum of absolute values, precomputed so the kernel's
        int64-overflow guard costs one comparison per burst. Returns ``None``
        — permanently, per packet — when any pair is ineligible: a key the
        intern pool rejects (not exact ``str``/``bytes``) or a value that is
        not a plain ``int`` within ±2**62 (bools and floats must keep their
        exact types through the per-pair oracle path). The result is cached;
        packets are immutable.
        """
        cache = self._vec_cache
        if cache is not _VEC_UNSET:
            return cache
        result = None
        pairs = self.pairs
        if _np is not None and pairs:
            intern = _interning.intern_key
            limit = _VEC_VALUE_LIMIT
            kids: list[int] = []
            vals: list[int] = []
            mass = 0
            try:
                for key, value in pairs:
                    if type(value) is not int or not -limit < value < limit:
                        break
                    kids.append(intern(key))
                    vals.append(value)
                    mass += value if value >= 0 else -value
                else:
                    result = (kids, vals, mass)
            except TypeError:
                result = None
        object.__setattr__(self, "_vec_cache", result)
        return result

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def num_pairs(self) -> int:
        """Number of key-value pairs carried by the packet."""
        return len(self.pairs)

    def _needs_keylens(self) -> bool:
        """True when fixed-width keys require explicit length bytes.

        ``ljust`` pads short keys with NUL bytes; a key that *legitimately*
        ends in NULs is indistinguishable from padding unless the true length
        travels with the packet, so such packets carry one length byte per
        pair (see :data:`FLAG_KEYLEN`).
        """
        return self._keylen_needed

    def payload_bytes(self) -> int:
        """DAIET payload size: preamble plus the serialized pairs (cached)."""
        return self._payload_bytes

    def wire_bytes(self) -> int:
        """Full frame size (Ethernet + IPv4 + UDP + DAIET payload)."""
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + UDP_HEADER_BYTES
            + self._payload_bytes
        )

    # ------------------------------------------------------------------ #
    # Parser view
    # ------------------------------------------------------------------ #
    def header_stack(self) -> list[tuple[str, Any, int]]:
        """Headers the switch parser must extract, in order.

        Unlike plain UDP traffic, a DAIET switch must parse the preamble *and
        every key-value pair header*, which is what makes the per-packet pair
        count a hard constraint on real hardware (~200-300 parseable bytes).
        """
        stack: list[tuple[str, Any, int]] = [
            ("ethernet", {"src": self.src, "dst": self.dst}, ETHERNET_HEADER_BYTES),
            ("ipv4", {"src": self.src, "dst": self.dst}, IP_HEADER_BYTES),
            ("udp", {"dport": DAIET_UDP_PORT}, UDP_HEADER_BYTES),
            (
                "daiet",
                {
                    "tree_id": self.tree_id,
                    "type": self.packet_type.name,
                    "num_entries": self.num_pairs,
                    "seq": self.seq,
                },
                DAIET_PREAMBLE_BYTES
                + (SEQ_BYTES if self.seq is not None else 0)
                + (self.num_pairs if self._needs_keylens() else 0),
            ),
        ]
        for i, (key, value) in enumerate(self.pairs):
            if self.config.variable_length_keys:
                nbytes = 1 + _key_bytes_len(key, self.config) + self.config.value_width
            else:
                nbytes = self.config.pair_bytes
            stack.append((f"kv_{i}", {"key": key, "value": value}, nbytes))
        return stack

    def header_sizes(self) -> tuple[tuple[str, int], ...]:
        """The ``(name, nbytes)`` profile of :meth:`header_stack`.

        Used by the parser to attribute a parse-depth overflow to the first
        offending header without building the per-pair metadata dictionaries
        of :meth:`header_stack`. The profile is cached — a packet may be
        re-parsed on every switch hop and every retransmission.
        """
        cached = self._header_sizes
        if cached is not None:
            return cached
        sizes = tuple((name, nbytes) for name, _header, nbytes in self.header_stack())
        object.__setattr__(self, "_header_sizes", sizes)
        return sizes

    def parse_depth_bytes(self) -> int:
        """Total bytes a switch parser must inspect for this packet.

        Every header of a DAIET packet — encapsulation, preamble *and* all
        pair headers — is parseable, so the parse depth equals the frame
        size. This single cached integer is the parser's happy-path check
        (see ``HeaderParser.charge``); the per-header walk only happens when
        the budget is actually exceeded.
        """
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + UDP_HEADER_BYTES
            + self._payload_bytes
        )

    # ------------------------------------------------------------------ #
    # Byte-level serialization
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Serialize the DAIET payload (preamble + pairs) to bytes."""
        needs_keylens = self._needs_keylens()
        flags = (FLAG_SEQ if self.seq is not None else 0) | (
            FLAG_KEYLEN if needs_keylens else 0
        )
        preamble = struct.pack(
            "!IHBB", self.tree_id, self.num_pairs, self.packet_type.value, flags
        )
        chunks = [preamble]
        if self.seq is not None:
            chunks.append(struct.pack("!I", self.seq))
        if needs_keylens:
            chunks.append(
                bytes(_key_bytes_len(key, self.config) for key, _ in self.pairs)
            )
        for key, value in self.pairs:
            key_bytes = key.encode() if isinstance(key, str) else bytes(key)
            if self.config.variable_length_keys:
                if len(key_bytes) > 255:
                    raise PacketFormatError("variable-length keys are limited to 255 B")
                chunks.append(struct.pack("!B", len(key_bytes)))
                chunks.append(key_bytes)
            else:
                chunks.append(key_bytes.ljust(self.config.key_width, b"\x00"))
            chunks.append(_encode_value(value, self.config.value_width))
        return b"".join(chunks)

    @classmethod
    def decode(cls, data: bytes, src: str, dst: str, config: DaietConfig | None = None) -> "DaietPacket":
        """Reconstruct a packet from bytes produced by :meth:`encode`."""
        config = config or DaietConfig()
        if len(data) < DAIET_PREAMBLE_BYTES:
            raise PacketFormatError("payload shorter than the DAIET preamble")
        tree_id, num_pairs, type_value, flags = struct.unpack(
            "!IHBB", data[:DAIET_PREAMBLE_BYTES]
        )
        try:
            packet_type = DaietPacketType(type_value)
        except ValueError as exc:
            raise PacketFormatError(f"unknown DAIET packet type {type_value}") from exc
        offset = DAIET_PREAMBLE_BYTES
        seq: int | None = None
        if flags & FLAG_SEQ:
            if len(data) < offset + SEQ_BYTES:
                raise PacketFormatError("truncated sequence number")
            (seq,) = struct.unpack("!I", data[offset : offset + SEQ_BYTES])
            offset += SEQ_BYTES
        key_lens: bytes | None = None
        if flags & FLAG_KEYLEN:
            key_lens = data[offset : offset + num_pairs]
            if len(key_lens) != num_pairs:
                raise PacketFormatError("truncated key-length table")
            offset += num_pairs
        pairs: list[tuple[str, int]] = []
        for i in range(num_pairs):
            if config.variable_length_keys:
                if offset >= len(data):
                    raise PacketFormatError("truncated variable-length key")
                key_len = data[offset]
                offset += 1
                key_bytes = data[offset : offset + key_len]
                if len(key_bytes) != key_len:
                    raise PacketFormatError("truncated variable-length key body")
                offset += key_len
            else:
                key_bytes = data[offset : offset + config.key_width]
                if len(key_bytes) != config.key_width:
                    raise PacketFormatError("truncated fixed-size key")
                offset += config.key_width
                if key_lens is not None:
                    # The exact key length travelled with the packet: strip
                    # only the padding bytes appended by ``ljust``, preserving
                    # keys that legitimately end in NUL bytes.
                    if key_lens[i] > config.key_width:
                        raise PacketFormatError("key length exceeds the key width")
                    key_bytes = key_bytes[: key_lens[i]]
                else:
                    key_bytes = key_bytes.rstrip(b"\x00")
            value_bytes = data[offset : offset + config.value_width]
            if len(value_bytes) != config.value_width:
                raise PacketFormatError("truncated value")
            offset += config.value_width
            pairs.append((key_bytes.decode(), _decode_value(value_bytes)))
        return cls(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=packet_type,
            pairs=tuple(pairs),
            config=config,
            seq=seq,
        )


def _key_bytes_len(key: str | bytes, config: DaietConfig) -> int:
    encoded = key.encode() if isinstance(key, str) else bytes(key)
    return len(encoded)


def _encode_value(value: int, width: int) -> bytes:
    if not isinstance(value, int):
        raise PacketFormatError(
            f"fixed-width serialization supports integer values only, got {type(value).__name__}"
        )
    try:
        return value.to_bytes(width, "big", signed=True)
    except OverflowError as exc:
        raise PacketFormatError(f"value {value} does not fit in {width} bytes") from exc


def _decode_value(data: bytes) -> int:
    return int.from_bytes(data, "big", signed=True)


# ---------------------------------------------------------------------- #
# Packetization helpers
# ---------------------------------------------------------------------- #
def packetize_pairs(
    pairs: Sequence[tuple[str, int]] | Iterable[tuple[str, int]],
    tree_id: int,
    src: str,
    dst: str,
    config: DaietConfig | None = None,
    include_end: bool = True,
    seq_start: int | None = None,
) -> Iterator[DaietPacket]:
    """Split a stream of key-value pairs into DAIET DATA packets (plus END).

    This is the mapper-side packetization described in the paper: the map
    output is written so that packets always carry complete pairs; the final
    END packet marks the end of the partition. When ``seq_start`` is given,
    the packets (END included) carry consecutive sequence numbers starting
    there, as required by the reliability layer.
    """
    config = config or DaietConfig()
    seq = seq_start
    batch: list[tuple[str, int]] = []
    for pair in pairs:
        batch.append(pair)
        if len(batch) == config.pairs_per_packet:
            yield DaietPacket(
                tree_id=tree_id,
                src=src,
                dst=dst,
                packet_type=DaietPacketType.DATA,
                pairs=tuple(batch),
                config=config,
                seq=seq,
            )
            if seq is not None:
                seq += 1
            batch = []
    if batch:
        yield DaietPacket(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=DaietPacketType.DATA,
            pairs=tuple(batch),
            config=config,
            seq=seq,
        )
        if seq is not None:
            seq += 1
    if include_end:
        yield DaietPacket(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=DaietPacketType.END,
            pairs=(),
            config=config,
            seq=seq,
        )


def fast_data_packets(
    pairs: Sequence[tuple[str, int]],
    tree_id: int,
    src: str,
    dst: str,
    config: DaietConfig,
) -> list[DaietPacket] | None:
    """Packetize ``pairs`` into unsequenced DATA packets via interned metadata.

    The switch flush path builds thousands of emission packets whose keys
    have all travelled through the intern pool already, so re-validating and
    re-measuring every key in ``DaietPacket.__post_init__`` is pure overhead.
    This builder chunks exactly like :func:`packetize_pairs` (without the END
    packet) but takes key lengths and NUL-suffix flags from the intern pool
    and assembles each packet with ``object.__new__``. Returns ``None`` — and
    interns nothing observable — when any key is outside the pool's domain or
    exceeds the fixed key width, in which case the caller must fall back to
    :func:`packetize_pairs`, whose error behaviour is the contract.
    """
    if tree_id < 0:
        return None
    intern = _interning.intern_key
    enc_len_of = _interning.enc_len_of
    ends_nul_of = _interning.ends_nul_of
    variable = config.variable_length_keys
    key_width = config.key_width
    fixed_pair_bytes = config.pair_bytes
    value_width = config.value_width
    per_packet = config.pairs_per_packet
    data_type = DaietPacketType.DATA
    set_attr = object.__setattr__
    new = object.__new__
    packets: list[DaietPacket] = []
    for start in range(0, len(pairs), per_packet):
        chunk = tuple(pairs[start : start + per_packet])
        num = len(chunk)
        keylen_needed = False
        try:
            if variable:
                pair_bytes = num * (1 + value_width)
                for key, _value in chunk:
                    pair_bytes += enc_len_of(intern(key))
            else:
                for key, _value in chunk:
                    kid = intern(key)
                    if enc_len_of(kid) > key_width:
                        return None
                    if ends_nul_of(kid):
                        keylen_needed = True
                pair_bytes = num * fixed_pair_bytes + (num if keylen_needed else 0)
        except TypeError:
            return None
        packet = new(DaietPacket)
        set_attr(packet, "tree_id", tree_id)
        set_attr(packet, "src", src)
        set_attr(packet, "dst", dst)
        set_attr(packet, "packet_type", data_type)
        set_attr(packet, "pairs", chunk)
        set_attr(packet, "config", config)
        set_attr(packet, "seq", None)
        set_attr(packet, "ecn", False)
        set_attr(packet, "_keylen_needed", keylen_needed)
        set_attr(packet, "_payload_bytes", DAIET_PREAMBLE_BYTES + pair_bytes)
        set_attr(packet, "_header_sizes", None)
        set_attr(packet, "_vec_cache", _VEC_UNSET)
        packets.append(packet)
    return packets


def end_packet(
    tree_id: int,
    src: str,
    dst: str,
    config: DaietConfig | None = None,
    seq: int | None = None,
) -> DaietPacket:
    """Build an END packet for the given tree."""
    return DaietPacket(
        tree_id=tree_id,
        src=src,
        dst=dst,
        packet_type=DaietPacketType.END,
        pairs=(),
        config=config or DaietConfig(),
        seq=seq,
    )


# ---------------------------------------------------------------------- #
# Reliability primitives (sequence tracking and ACK packets)
# ---------------------------------------------------------------------- #
class SeenWindow:
    """Receiver-side view of one (tree, sender) sequence-number stream.

    Tracks the cumulative ACK point (every sequence number below
    ``cumulative`` has been received) plus the set of out-of-order sequence
    numbers above it, which is what the selective-ACK field of
    :class:`DaietAck` reports back to the sender. The window also remembers
    the END packet's sequence number so END handling can be deferred until
    the stream has no gaps — the property that makes aggregation
    loss-survivable rather than merely loss-tolerant.
    """

    __slots__ = ("cumulative", "out_of_order", "end_seq")

    def __init__(self) -> None:
        self.cumulative = 0
        self.out_of_order: set[int] = set()
        self.end_seq: int | None = None

    def observe(self, seq: int) -> bool:
        """Record one received sequence number; ``False`` for duplicates."""
        if seq < 0:
            raise PacketFormatError("sequence numbers must be non-negative")
        if seq < self.cumulative or seq in self.out_of_order:
            return False
        self.out_of_order.add(seq)
        while self.cumulative in self.out_of_order:
            self.out_of_order.discard(self.cumulative)
            self.cumulative += 1
        return True

    @property
    def has_gaps(self) -> bool:
        """True while out-of-order packets are waiting on a retransmission."""
        return bool(self.out_of_order)

    @property
    def complete(self) -> bool:
        """True once the END marker and every packet before it have arrived."""
        return self.end_seq is not None and self.cumulative > self.end_seq

    def ack_state(self, max_sack: int = DAIET_ACK_MAX_SACK) -> tuple[int, tuple[int, ...]]:
        """The ``(cumulative, sack)`` pair an ACK for this stream carries.

        The SACK list is truncated to ``max_sack`` entries (lowest first) so
        the ACK always fits the switch parser's parse-depth budget.
        """
        return self.cumulative, tuple(sorted(self.out_of_order)[:max_sack])


@dataclass(frozen=True, slots=True)
class DaietAck:
    """Reliability control packet flowing parent-to-child along a tree.

    ACKs are addressed to the device (host or switch) named ``dst``; on-tree
    switches consume ACKs destined to them and forward any other. ``pull``
    marks timeout-driven ACKs sent by a receiver that is still missing data —
    the addressee responds by retransmitting everything unacknowledged, which
    is how tail losses are recovered without switch-side timers.
    """

    tree_id: int
    src: str
    dst: str
    cumulative: int = 0
    sack: tuple[int, ...] = ()
    pull: bool = False
    #: Number of ECN-marked packets the receiver saw since its previous ACK
    #: for this stream (DCTCP-style echo). Zero — the only value ever
    #: produced without ECN marking enabled — keeps the historical wire
    #: format byte-for-byte; a non-zero echo adds a 16-bit counter field.
    ecn_echo: int = 0

    def __post_init__(self) -> None:
        if self.tree_id < 0:
            raise PacketFormatError("tree_id must be non-negative")
        if self.cumulative < 0:
            raise PacketFormatError("cumulative ACK must be non-negative")
        if self.ecn_echo < 0:
            raise PacketFormatError("ECN echo count must be non-negative")

    def payload_bytes(self) -> int:
        """Serialized ACK payload size."""
        base = DAIET_ACK_BASE_BYTES + DAIET_ACK_SACK_BYTES * len(self.sack)
        if self.ecn_echo:
            base += DAIET_ACK_ECN_BYTES
        return base

    def wire_bytes(self) -> int:
        """Full frame size (Ethernet + IPv4 + UDP + ACK payload)."""
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + UDP_HEADER_BYTES
            + self.payload_bytes()
        )

    def header_stack(self) -> list[tuple[str, Any, int]]:
        """Headers visible to the switch parser."""
        return [
            ("ethernet", {"src": self.src, "dst": self.dst}, ETHERNET_HEADER_BYTES),
            ("ipv4", {"src": self.src, "dst": self.dst}, IP_HEADER_BYTES),
            ("udp", {"dport": DAIET_UDP_PORT}, UDP_HEADER_BYTES),
            (
                "daiet_ack",
                {
                    "tree_id": self.tree_id,
                    "cumulative": self.cumulative,
                    "sack": self.sack,
                    "pull": self.pull,
                    "ecn_echo": self.ecn_echo,
                },
                self.payload_bytes(),
            ),
        ]

    def header_sizes(self) -> tuple[tuple[str, int], ...]:
        """The ``(name, nbytes)`` parse profile (parser fast path)."""
        return (
            ("ethernet", ETHERNET_HEADER_BYTES),
            ("ipv4", IP_HEADER_BYTES),
            ("udp", UDP_HEADER_BYTES),
            ("daiet_ack", self.payload_bytes()),
        )

    def parse_depth_bytes(self) -> int:
        """Total parseable bytes (every ACK header is parseable)."""
        return self.wire_bytes()
