"""DAIET wire format.

Section 4 of the paper: intermediate map output "partitions are sent to the
reducer using UDP packets containing a small preamble and a sequence of
key-value pairs"; the preamble specifies the number of pairs and the tree id;
pairs use a fixed-size representation (16-byte keys, 4-byte integer values in
the prototype) so that packetization never needs to deserialize the data; the
end of a partition is marked by a special END packet.

:class:`DaietPacket` models one such UDP packet. It exposes

* ``wire_bytes()`` — full frame size including Ethernet/IP/UDP encapsulation,
* ``header_stack()`` — the headers visible to the bounded-depth switch parser
  (preamble plus one header per pair, which is exactly why the pair count per
  packet is limited on real hardware),
* ``encode()`` / ``decode()`` — an actual byte-level serialization used by the
  round-trip property tests.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.core.config import (
    DAIET_PREAMBLE_BYTES,
    ETHERNET_HEADER_BYTES,
    IP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    DaietConfig,
)
from repro.core.errors import PacketFormatError

#: UDP destination port reserved for DAIET traffic in the simulation.
DAIET_UDP_PORT = 5555


class DaietPacketType(enum.Enum):
    """The two packet kinds of the DAIET protocol."""

    DATA = 1
    END = 2


@dataclass(frozen=True)
class DaietPacket:
    """One DAIET protocol packet (DATA with key-value pairs, or END marker)."""

    tree_id: int
    src: str
    dst: str
    packet_type: DaietPacketType = DaietPacketType.DATA
    pairs: tuple[tuple[str, int], ...] = ()
    config: DaietConfig = field(default_factory=DaietConfig)

    def __post_init__(self) -> None:
        if self.tree_id < 0:
            raise PacketFormatError("tree_id must be non-negative")
        if self.packet_type is DaietPacketType.END and self.pairs:
            raise PacketFormatError("END packets must not carry key-value pairs")
        if len(self.pairs) > self.config.pairs_per_packet:
            raise PacketFormatError(
                f"packet carries {len(self.pairs)} pairs but the configuration "
                f"allows at most {self.config.pairs_per_packet}"
            )
        for key, _value in self.pairs:
            encoded = key.encode() if isinstance(key, str) else bytes(key)
            if not self.config.variable_length_keys and len(encoded) > self.config.key_width:
                raise PacketFormatError(
                    f"key {key!r} is {len(encoded)} B, exceeding the fixed key "
                    f"width of {self.config.key_width} B"
                )

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def num_pairs(self) -> int:
        """Number of key-value pairs carried by the packet."""
        return len(self.pairs)

    def payload_bytes(self) -> int:
        """DAIET payload size: preamble plus the serialized pairs."""
        if self.config.variable_length_keys:
            pair_bytes = sum(
                1 + _key_bytes_len(key, self.config) + self.config.value_width
                for key, _ in self.pairs
            )
        else:
            pair_bytes = self.num_pairs * self.config.pair_bytes
        return DAIET_PREAMBLE_BYTES + pair_bytes

    def wire_bytes(self) -> int:
        """Full frame size (Ethernet + IPv4 + UDP + DAIET payload)."""
        return (
            ETHERNET_HEADER_BYTES
            + IP_HEADER_BYTES
            + UDP_HEADER_BYTES
            + self.payload_bytes()
        )

    # ------------------------------------------------------------------ #
    # Parser view
    # ------------------------------------------------------------------ #
    def header_stack(self) -> list[tuple[str, Any, int]]:
        """Headers the switch parser must extract, in order.

        Unlike plain UDP traffic, a DAIET switch must parse the preamble *and
        every key-value pair header*, which is what makes the per-packet pair
        count a hard constraint on real hardware (~200-300 parseable bytes).
        """
        stack: list[tuple[str, Any, int]] = [
            ("ethernet", {"src": self.src, "dst": self.dst}, ETHERNET_HEADER_BYTES),
            ("ipv4", {"src": self.src, "dst": self.dst}, IP_HEADER_BYTES),
            ("udp", {"dport": DAIET_UDP_PORT}, UDP_HEADER_BYTES),
            (
                "daiet",
                {
                    "tree_id": self.tree_id,
                    "type": self.packet_type.name,
                    "num_entries": self.num_pairs,
                },
                DAIET_PREAMBLE_BYTES,
            ),
        ]
        for i, (key, value) in enumerate(self.pairs):
            if self.config.variable_length_keys:
                nbytes = 1 + _key_bytes_len(key, self.config) + self.config.value_width
            else:
                nbytes = self.config.pair_bytes
            stack.append((f"kv_{i}", {"key": key, "value": value}, nbytes))
        return stack

    # ------------------------------------------------------------------ #
    # Byte-level serialization
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Serialize the DAIET payload (preamble + pairs) to bytes."""
        preamble = struct.pack(
            "!IHBB", self.tree_id, self.num_pairs, self.packet_type.value, 0
        )
        chunks = [preamble]
        for key, value in self.pairs:
            key_bytes = key.encode() if isinstance(key, str) else bytes(key)
            if self.config.variable_length_keys:
                if len(key_bytes) > 255:
                    raise PacketFormatError("variable-length keys are limited to 255 B")
                chunks.append(struct.pack("!B", len(key_bytes)))
                chunks.append(key_bytes)
            else:
                chunks.append(key_bytes.ljust(self.config.key_width, b"\x00"))
            chunks.append(_encode_value(value, self.config.value_width))
        return b"".join(chunks)

    @classmethod
    def decode(cls, data: bytes, src: str, dst: str, config: DaietConfig | None = None) -> "DaietPacket":
        """Reconstruct a packet from bytes produced by :meth:`encode`."""
        config = config or DaietConfig()
        if len(data) < DAIET_PREAMBLE_BYTES:
            raise PacketFormatError("payload shorter than the DAIET preamble")
        tree_id, num_pairs, type_value, _reserved = struct.unpack(
            "!IHBB", data[:DAIET_PREAMBLE_BYTES]
        )
        try:
            packet_type = DaietPacketType(type_value)
        except ValueError as exc:
            raise PacketFormatError(f"unknown DAIET packet type {type_value}") from exc
        offset = DAIET_PREAMBLE_BYTES
        pairs: list[tuple[str, int]] = []
        for _ in range(num_pairs):
            if config.variable_length_keys:
                if offset >= len(data):
                    raise PacketFormatError("truncated variable-length key")
                key_len = data[offset]
                offset += 1
                key_bytes = data[offset : offset + key_len]
                if len(key_bytes) != key_len:
                    raise PacketFormatError("truncated variable-length key body")
                offset += key_len
            else:
                key_bytes = data[offset : offset + config.key_width]
                if len(key_bytes) != config.key_width:
                    raise PacketFormatError("truncated fixed-size key")
                offset += config.key_width
                key_bytes = key_bytes.rstrip(b"\x00")
            value_bytes = data[offset : offset + config.value_width]
            if len(value_bytes) != config.value_width:
                raise PacketFormatError("truncated value")
            offset += config.value_width
            pairs.append((key_bytes.decode(), _decode_value(value_bytes)))
        return cls(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=packet_type,
            pairs=tuple(pairs),
            config=config,
        )


def _key_bytes_len(key: str | bytes, config: DaietConfig) -> int:
    encoded = key.encode() if isinstance(key, str) else bytes(key)
    return len(encoded)


def _encode_value(value: int, width: int) -> bytes:
    if not isinstance(value, int):
        raise PacketFormatError(
            f"fixed-width serialization supports integer values only, got {type(value).__name__}"
        )
    try:
        return value.to_bytes(width, "big", signed=True)
    except OverflowError as exc:
        raise PacketFormatError(f"value {value} does not fit in {width} bytes") from exc


def _decode_value(data: bytes) -> int:
    return int.from_bytes(data, "big", signed=True)


# ---------------------------------------------------------------------- #
# Packetization helpers
# ---------------------------------------------------------------------- #
def packetize_pairs(
    pairs: Sequence[tuple[str, int]] | Iterable[tuple[str, int]],
    tree_id: int,
    src: str,
    dst: str,
    config: DaietConfig | None = None,
    include_end: bool = True,
) -> Iterator[DaietPacket]:
    """Split a stream of key-value pairs into DAIET DATA packets (plus END).

    This is the mapper-side packetization described in the paper: the map
    output is written so that packets always carry complete pairs; the final
    END packet marks the end of the partition.
    """
    config = config or DaietConfig()
    batch: list[tuple[str, int]] = []
    for pair in pairs:
        batch.append(pair)
        if len(batch) == config.pairs_per_packet:
            yield DaietPacket(
                tree_id=tree_id,
                src=src,
                dst=dst,
                packet_type=DaietPacketType.DATA,
                pairs=tuple(batch),
                config=config,
            )
            batch = []
    if batch:
        yield DaietPacket(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=DaietPacketType.DATA,
            pairs=tuple(batch),
            config=config,
        )
    if include_end:
        yield DaietPacket(
            tree_id=tree_id,
            src=src,
            dst=dst,
            packet_type=DaietPacketType.END,
            pairs=(),
            config=config,
        )


def end_packet(tree_id: int, src: str, dst: str, config: DaietConfig | None = None) -> DaietPacket:
    """Build an END packet for the given tree."""
    return DaietPacket(
        tree_id=tree_id,
        src=src,
        dst=dst,
        packet_type=DaietPacketType.END,
        pairs=(),
        config=config or DaietConfig(),
    )
