"""Pregel-style graph analytics substrate (Figure 1c experiments)."""

from repro.graph.algorithms import (
    PageRankProgram,
    SsspProgram,
    WccProgram,
    pagerank,
    sssp,
    wcc,
)
from repro.graph.combiners import MIN_COMBINER, SUM_COMBINER, Combiner
from repro.graph.generators import (
    LIVEJOURNAL_AVERAGE_DEGREE,
    livejournal_like,
    preferential_attachment_graph,
    random_graph,
    ring_graph,
)
from repro.graph.graph import Graph, GraphPartition
from repro.graph.pregel import (
    PregelEngine,
    PregelResult,
    VertexContext,
    VertexProgram,
    run_with_combiner_check,
)
from repro.graph.traffic import SuperstepTraffic, TrafficTrace

__all__ = [
    "PageRankProgram",
    "SsspProgram",
    "WccProgram",
    "pagerank",
    "sssp",
    "wcc",
    "MIN_COMBINER",
    "SUM_COMBINER",
    "Combiner",
    "LIVEJOURNAL_AVERAGE_DEGREE",
    "livejournal_like",
    "preferential_attachment_graph",
    "random_graph",
    "ring_graph",
    "Graph",
    "GraphPartition",
    "PregelEngine",
    "PregelResult",
    "VertexContext",
    "VertexProgram",
    "run_with_combiner_check",
    "SuperstepTraffic",
    "TrafficTrace",
]
