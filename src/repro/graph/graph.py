"""Graph data structure and worker partitioning for the Pregel substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import GraphError


@dataclass
class Graph:
    """An undirected graph stored as adjacency lists.

    Vertices are integer ids. The Figure 1(c) experiment treats each
    undirected edge as a pair of directed message channels (a vertex sends to
    every neighbour), which matches how GPS/Pregel runs PageRank, SSSP and WCC
    over the (largely symmetric) LiveJournal friendship graph.
    """

    adjacency: dict[int, list[int]] = field(default_factory=dict)
    name: str = "graph"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: int) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        self.adjacency.setdefault(vertex, [])

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (parallel edges and self-loops are rejected)."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self.adjacency[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self.adjacency[u].append(v)
        self.adjacency[v].append(u)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], name: str = "graph") -> "Graph":
        """Build a graph from an edge list, ignoring duplicates and self-loops."""
        graph = cls(name=name)
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def vertices(self) -> list[int]:
        """All vertex ids."""
        return list(self.adjacency)

    def neighbors(self, vertex: int) -> list[int]:
        """Neighbours of a vertex."""
        try:
            return self.adjacency[vertex]
        except KeyError as exc:
            raise GraphError(f"unknown vertex {vertex}") from exc

    def degree(self, vertex: int) -> int:
        """Degree of a vertex."""
        return len(self.neighbors(vertex))

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self.adjacency.values()) // 2

    def average_degree(self) -> float:
        """Average vertex degree."""
        if not self.adjacency:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges once each (u < v)."""
        for u, neighbors in self.adjacency.items():
            for v in neighbors:
                if u < v:
                    yield (u, v)


@dataclass
class GraphPartition:
    """Assignment of vertices to workers (hash partitioning, as in GPS)."""

    num_workers: int
    assignment: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise GraphError("num_workers must be positive")

    @classmethod
    def hash_partition(cls, graph: Graph, num_workers: int) -> "GraphPartition":
        """Assign each vertex to ``vertex_id % num_workers`` (GPS's default)."""
        partition = cls(num_workers=num_workers)
        partition.assignment = {v: v % num_workers for v in graph.vertices()}
        return partition

    def worker_of(self, vertex: int) -> int:
        """Worker owning a vertex."""
        try:
            return self.assignment[vertex]
        except KeyError as exc:
            raise GraphError(f"vertex {vertex} is not assigned to any worker") from exc

    def vertices_of(self, worker: int) -> list[int]:
        """Vertices owned by a worker."""
        if not 0 <= worker < self.num_workers:
            raise GraphError(f"worker {worker} out of range")
        return [v for v, w in self.assignment.items() if w == worker]

    def is_remote(self, src_vertex: int, dst_vertex: int) -> bool:
        """Whether a message between these vertices crosses workers."""
        return self.worker_of(src_vertex) != self.worker_of(dst_vertex)
