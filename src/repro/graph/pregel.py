"""A Pregel-style ("think like a vertex") graph processing engine.

This is the substrate standing in for GPS, the open-source Pregel clone used
by the paper's Figure 1(c) experiment. The engine runs synchronous supersteps:
every active vertex (or any vertex with pending messages) executes the vertex
program, which may update its state, send messages to neighbours and vote to
halt. Message traffic of every superstep is recorded in a
:class:`~repro.graph.traffic.TrafficTrace` so the in-network aggregation
opportunity can be measured exactly as the paper does.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import GraphError
from repro.graph.combiners import Combiner
from repro.graph.graph import Graph, GraphPartition
from repro.graph.traffic import SuperstepTraffic, TrafficTrace


@dataclass
class VertexContext:
    """Everything a vertex program can see and do during one superstep."""

    vertex: int
    state: Any
    superstep: int
    messages: list[Any]
    neighbors: list[int]
    num_vertices: int
    _outbox: list[tuple[int, Any]] = field(default_factory=list)
    _halted: bool = False
    _new_state: Any = None
    _state_changed: bool = False

    def send(self, destination: int, value: Any) -> None:
        """Send a message to ``destination`` for delivery next superstep."""
        self._outbox.append((destination, value))

    def send_to_neighbors(self, value: Any) -> None:
        """Send the same message to every neighbour."""
        for neighbor in self.neighbors:
            self._outbox.append((neighbor, value))

    def set_state(self, value: Any) -> None:
        """Replace the vertex state."""
        self._new_state = value
        self._state_changed = True

    def vote_to_halt(self) -> None:
        """Deactivate the vertex until a message wakes it up again."""
        self._halted = True


class VertexProgram(ABC):
    """A vertex-centric algorithm."""

    #: The commutative/associative combiner associated with the algorithm
    #: (what DAIET would run in the network); ``None`` if the algorithm has no
    #: combiner.
    combiner: Combiner | None = None
    name: str = "vertex-program"

    @abstractmethod
    def initial_state(self, vertex: int, graph: Graph) -> Any:
        """State of ``vertex`` before superstep 0."""

    def initially_active(self, vertex: int, graph: Graph) -> bool:
        """Whether ``vertex`` runs in superstep 0 (default: yes)."""
        return True

    @abstractmethod
    def compute(self, ctx: VertexContext) -> None:
        """The per-superstep vertex computation."""


@dataclass
class PregelResult:
    """Outcome of one Pregel run."""

    algorithm: str
    states: dict[int, Any]
    trace: TrafficTrace
    supersteps_run: int
    active_per_superstep: list[int] = field(default_factory=list)
    converged: bool = False
    #: Remote messages lost to the engine's ``message_drop_rate``.
    messages_dropped: int = 0

    def state_of(self, vertex: int) -> Any:
        """Final state of one vertex."""
        try:
            return self.states[vertex]
        except KeyError as exc:
            raise GraphError(f"unknown vertex {vertex}") from exc


class PregelEngine:
    """Synchronous superstep executor with per-superstep traffic accounting."""

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        num_workers: int = 4,
        apply_combiner: bool = False,
        message_drop_rate: float = 0.0,
        message_drop_seed: int = 0,
    ) -> None:
        if graph.num_vertices == 0:
            raise GraphError("cannot run Pregel on an empty graph")
        if not 0.0 <= message_drop_rate < 1.0:
            raise GraphError("message_drop_rate must lie in [0, 1)")
        self.graph = graph
        self.program = program
        self.partition = GraphPartition.hash_partition(graph, num_workers)
        self.num_workers = num_workers
        #: When set (and the program declares a combiner), all messages to the
        #: same destination are folded into one before delivery — the effect
        #: in-network aggregation has on what the destination worker receives.
        self.apply_combiner = apply_combiner and program.combiner is not None
        #: Probability that one *remote* message is lost in flight, modelling
        #: a degraded (``sampled`` / ``best_effort``) aggregation policy.
        #: Local messages never cross the network and are never dropped.
        #: ``0.0`` — the default — takes the historical, byte-identical path.
        self.message_drop_rate = message_drop_rate
        self.message_drop_seed = message_drop_seed

    def run(self, max_supersteps: int = 30) -> PregelResult:
        """Run until every vertex has halted (or ``max_supersteps``)."""
        if max_supersteps <= 0:
            raise GraphError("max_supersteps must be positive")
        graph = self.graph
        states: dict[int, Any] = {
            v: self.program.initial_state(v, graph) for v in graph.vertices()
        }
        active: set[int] = {
            v for v in graph.vertices() if self.program.initially_active(v, graph)
        }
        inbox: dict[int, list[Any]] = {}
        trace = TrafficTrace(algorithm=self.program.name)
        active_counts: list[int] = []
        superstep = 0
        converged = False
        drop_rng = (
            random.Random(self.message_drop_seed)
            if self.message_drop_rate > 0.0
            else None
        )
        drop_rate = self.message_drop_rate
        messages_dropped = 0

        while superstep < max_supersteps:
            to_run = active | set(inbox)
            if not to_run:
                converged = True
                break
            active_counts.append(len(to_run))
            traffic = SuperstepTraffic(superstep=superstep, active_vertices=len(to_run))
            outbox: dict[int, list[Any]] = {}
            remote_destinations: set[int] = set()
            next_active: set[int] = set()

            for vertex in to_run:
                ctx = VertexContext(
                    vertex=vertex,
                    state=states[vertex],
                    superstep=superstep,
                    messages=inbox.get(vertex, []),
                    neighbors=graph.neighbors(vertex),
                    num_vertices=graph.num_vertices,
                )
                self.program.compute(ctx)
                if ctx._state_changed:
                    states[vertex] = ctx._new_state
                if not ctx._halted:
                    next_active.add(vertex)
                if ctx._outbox:
                    src_worker = self.partition.worker_of(vertex)
                    for destination, value in ctx._outbox:
                        remote = self.partition.worker_of(destination) != src_worker
                        if (
                            drop_rng is not None
                            and remote
                            and drop_rng.random() < drop_rate
                        ):
                            # The message still happened (and is counted in
                            # the traffic trace) — it just never arrives.
                            traffic.messages += 1
                            traffic.remote_messages += 1
                            remote_destinations.add(destination)
                            messages_dropped += 1
                            continue
                        outbox.setdefault(destination, []).append(value)
                        traffic.messages += 1
                        if remote:
                            traffic.remote_messages += 1
                            remote_destinations.add(destination)

            traffic.distinct_destinations = len(outbox)
            traffic.distinct_remote_destinations = len(remote_destinations)
            trace.append(traffic)

            if self.apply_combiner and self.program.combiner is not None:
                combiner = self.program.combiner
                inbox = {
                    destination: [combiner.combine(values)]
                    for destination, values in outbox.items()
                }
            else:
                inbox = outbox
            active = next_active
            superstep += 1

        return PregelResult(
            algorithm=self.program.name,
            states=states,
            trace=trace,
            supersteps_run=superstep,
            active_per_superstep=active_counts,
            converged=converged,
            messages_dropped=messages_dropped,
        )


@dataclass
class GraphConvergenceImpact:
    """Cost of degraded message delivery on a Pregel run, vs its exact twin."""

    drop_rate: float
    exact_supersteps: int
    degraded_supersteps: int
    #: Additional supersteps the degraded run needed before halting (0 for
    #: fixed-iteration programs such as PageRank).
    extra_supersteps: int
    #: L1 distance between the exact and degraded final states, summed over
    #: every numeric vertex state.
    state_l1_error: float
    messages_dropped: int
    exact_converged: bool
    degraded_converged: bool


def measure_convergence_impact(
    graph: Graph,
    make_program,
    drop_rate: float,
    num_workers: int = 4,
    max_supersteps: int = 30,
    drop_seed: int = 0,
) -> GraphConvergenceImpact:
    """Run an exact twin and a message-dropping twin; quantify the gap.

    ``make_program`` is a zero-argument factory (programs may keep internal
    state, so each run needs a fresh instance). Both runs are otherwise
    identical, so the measured state error and extra supersteps are
    attributable to the dropped messages alone.
    """
    if drop_rate <= 0.0:
        raise GraphError("measure_convergence_impact needs a positive drop_rate")
    exact = PregelEngine(graph, make_program(), num_workers=num_workers).run(
        max_supersteps
    )
    degraded = PregelEngine(
        graph,
        make_program(),
        num_workers=num_workers,
        message_drop_rate=drop_rate,
        message_drop_seed=drop_seed,
    ).run(max_supersteps)
    l1 = 0.0
    for vertex, state in exact.states.items():
        other = degraded.states.get(vertex)
        if isinstance(state, (int, float)) and isinstance(other, (int, float)):
            l1 += abs(state - other)
    return GraphConvergenceImpact(
        drop_rate=drop_rate,
        exact_supersteps=exact.supersteps_run,
        degraded_supersteps=degraded.supersteps_run,
        extra_supersteps=max(0, degraded.supersteps_run - exact.supersteps_run),
        state_l1_error=l1,
        messages_dropped=degraded.messages_dropped,
        exact_converged=exact.converged,
        degraded_converged=degraded.converged,
    )


def run_with_combiner_check(
    graph: Graph,
    make_program,
    num_workers: int = 4,
    max_supersteps: int = 30,
    rel_tol: float = 1e-9,
) -> tuple[PregelResult, PregelResult]:
    """Run an algorithm with and without combiners and verify equal results.

    This is the correctness property in-network aggregation relies on: because
    the combiner is commutative and associative, applying it anywhere between
    sender and receiver leaves the algorithm's final states unchanged (up to
    floating-point associativity).

    Parameters
    ----------
    make_program:
        Zero-argument callable producing a fresh :class:`VertexProgram`
        instance (programs may keep internal state, so each run needs its own).

    Returns
    -------
    tuple
        ``(plain_result, combined_result)``.
    """
    plain = PregelEngine(graph, make_program(), num_workers=num_workers).run(max_supersteps)
    combined = PregelEngine(
        graph, make_program(), num_workers=num_workers, apply_combiner=True
    ).run(max_supersteps)
    for vertex, state in plain.states.items():
        other = combined.states[vertex]
        if isinstance(state, float) or isinstance(other, float):
            if abs(state - other) > rel_tol * max(1.0, abs(state), abs(other)):
                raise GraphError(
                    f"combiner changed the result at vertex {vertex}: {state} vs {other}"
                )
        elif state != other:
            raise GraphError(
                f"combiner changed the result at vertex {vertex}: {state!r} vs {other!r}"
            )
    return plain, combined
