"""Synthetic social-graph generator.

The paper's Figure 1(c) uses the LiveJournal friendship graph (4.8M vertices,
68M edges, average degree ≈ 14, heavy-tailed degree distribution). The SNAP
download is not available offline, so :func:`livejournal_like` generates a
scaled-down graph with the same two properties that the traffic-reduction
measurement depends on: the average degree (which sets the PageRank reduction
ratio at roughly ``1 - V / 2E``) and a power-law degree tail (which shapes how
quickly SSSP's frontier explodes and how WCC converges). The substitution is
documented in DESIGN.md.
"""

from __future__ import annotations

import random

from repro.core.errors import GraphError
from repro.graph.graph import Graph

#: LiveJournal's average degree (68M edges over 4.8M vertices ≈ 14.2 neighbours
#: per vertex, counting each undirected friendship once).
LIVEJOURNAL_AVERAGE_DEGREE = 14


def preferential_attachment_graph(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int = 2017,
    name: str = "preferential-attachment",
) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Every new vertex attaches to ``edges_per_vertex`` distinct existing
    vertices chosen proportionally to their current degree, producing the
    power-law degree distribution characteristic of social networks.
    """
    if edges_per_vertex <= 0:
        raise GraphError("edges_per_vertex must be positive")
    if num_vertices <= edges_per_vertex:
        raise GraphError("num_vertices must exceed edges_per_vertex")
    rng = random.Random(seed)
    graph = Graph(name=name)
    # Seed clique-ish core: a path over the first m+1 vertices.
    targets = list(range(edges_per_vertex))
    for vertex in targets:
        graph.add_vertex(vertex)
    # repeated_nodes holds one entry per edge endpoint, so sampling from it is
    # degree-proportional sampling.
    repeated_nodes: list[int] = []
    for new_vertex in range(edges_per_vertex, num_vertices):
        chosen: set[int] = set()
        # `targets` from the previous round are degree-biased candidates.
        for candidate in targets:
            chosen.add(candidate)
        while len(chosen) < edges_per_vertex:
            chosen.add(rng.choice(repeated_nodes) if repeated_nodes else rng.randrange(new_vertex))
        # Sorted so edge insertion (and thus degree-biased sampling below)
        # never depends on set iteration order.
        for neighbor in sorted(chosen):
            graph.add_edge(new_vertex, neighbor)
            repeated_nodes.append(neighbor)
            repeated_nodes.append(new_vertex)
        targets = rng.sample(repeated_nodes, k=min(edges_per_vertex, len(repeated_nodes)))
        targets = list(dict.fromkeys(targets))[:edges_per_vertex]
    return graph


def livejournal_like(
    num_vertices: int = 50_000,
    average_degree: int = LIVEJOURNAL_AVERAGE_DEGREE,
    seed: int = 2017,
) -> Graph:
    """A scaled-down LiveJournal-like graph (power-law, avg degree ≈ 14)."""
    if average_degree < 2:
        raise GraphError("average_degree must be at least 2")
    edges_per_vertex = max(1, average_degree // 2)
    return preferential_attachment_graph(
        num_vertices=num_vertices,
        edges_per_vertex=edges_per_vertex,
        seed=seed,
        name=f"livejournal-like-{num_vertices}",
    )


def random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 2017,
    name: str = "random",
) -> Graph:
    """An Erdős–Rényi-style random graph with exactly ``num_edges`` edges."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges among {num_vertices} vertices")
    rng = random.Random(seed)
    graph = Graph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    seen: set[tuple[int, int]] = set()
    while len(seen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(u, v)
    return graph


def ring_graph(num_vertices: int, name: str = "ring") -> Graph:
    """A simple cycle, useful for deterministic unit tests."""
    if num_vertices < 3:
        raise GraphError("a ring needs at least three vertices")
    graph = Graph(name=name)
    for vertex in range(num_vertices):
        graph.add_edge(vertex, (vertex + 1) % num_vertices)
    return graph
