"""Graph algorithms used by the Figure 1(c) experiment."""

from repro.graph.algorithms.pagerank import DAMPING, PageRankProgram, pagerank
from repro.graph.algorithms.sssp import INFINITY, SsspProgram, sssp
from repro.graph.algorithms.wcc import WccProgram, wcc

__all__ = [
    "DAMPING",
    "PageRankProgram",
    "pagerank",
    "INFINITY",
    "SsspProgram",
    "sssp",
    "WccProgram",
    "wcc",
]
