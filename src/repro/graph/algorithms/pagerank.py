"""PageRank vertex program.

"In PageRank, each vertex starts by sending its PageRank value to all its
neighbours. Then, each vertex in the next iteration receives and sums the
various values from its neighbours and calculates a new PageRank value. [...]
In each iteration, all vertices are active and send messages to their
neighbours; hence, the traffic reduction ratio is almost the same across all
iterations." (Section 3.) The combiner is a sum.
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.graph.combiners import SUM_COMBINER
from repro.graph.graph import Graph
from repro.graph.pregel import PregelEngine, PregelResult, VertexContext, VertexProgram

#: Standard PageRank damping factor.
DAMPING = 0.85


class PageRankProgram(VertexProgram):
    """Fixed-iteration PageRank with a sum combiner."""

    combiner = SUM_COMBINER
    name = "pagerank"

    def __init__(self, num_iterations: int = 10, damping: float = DAMPING) -> None:
        if num_iterations <= 0:
            raise GraphError("num_iterations must be positive")
        if not 0.0 < damping < 1.0:
            raise GraphError("damping must lie strictly between 0 and 1")
        self.num_iterations = num_iterations
        self.damping = damping

    def initial_state(self, vertex: int, graph: Graph) -> float:
        return 1.0 / graph.num_vertices

    def compute(self, ctx: VertexContext) -> None:
        if ctx.superstep > 0:
            incoming = sum(ctx.messages)
            new_rank = (1.0 - self.damping) / ctx.num_vertices + self.damping * incoming
            ctx.set_state(new_rank)
        else:
            new_rank = ctx.state
        if ctx.superstep < self.num_iterations:
            if ctx.neighbors:
                ctx.send_to_neighbors(new_rank / len(ctx.neighbors))
        else:
            ctx.vote_to_halt()


def pagerank(
    graph: Graph,
    num_iterations: int = 10,
    num_workers: int = 4,
    damping: float = DAMPING,
) -> PregelResult:
    """Run PageRank for a fixed number of message-passing iterations."""
    program = PageRankProgram(num_iterations=num_iterations, damping=damping)
    # One extra superstep lets the final messages be received and applied.
    return PregelEngine(graph, program, num_workers=num_workers).run(
        max_supersteps=num_iterations + 1
    )
