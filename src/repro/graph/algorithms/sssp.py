"""Single-Source Shortest Paths vertex program.

"SSSP starts by sending a smaller number of messages from the source vertex.
In the following iteration, the number of messages increases exponentially and
hence a higher traffic reduction ratio is achieved." (Section 3.) The combiner
keeps the minimum candidate distance per destination.
"""

from __future__ import annotations

import math

from repro.core.errors import GraphError
from repro.graph.combiners import MIN_COMBINER
from repro.graph.graph import Graph
from repro.graph.pregel import PregelEngine, PregelResult, VertexContext, VertexProgram

#: Distance assigned to unreachable vertices.
INFINITY = math.inf


class SsspProgram(VertexProgram):
    """Unit-weight single-source shortest paths with a min combiner."""

    combiner = MIN_COMBINER
    name = "sssp"

    def __init__(self, source: int, edge_weight: float = 1.0) -> None:
        if edge_weight <= 0:
            raise GraphError("edge_weight must be positive")
        self.source = source
        self.edge_weight = edge_weight

    def initial_state(self, vertex: int, graph: Graph) -> float:
        return 0.0 if vertex == self.source else INFINITY

    def initially_active(self, vertex: int, graph: Graph) -> bool:
        return vertex == self.source

    def compute(self, ctx: VertexContext) -> None:
        best = ctx.state
        if ctx.superstep == 0 and ctx.vertex == self.source:
            improved = True
        else:
            candidate = min(ctx.messages) if ctx.messages else INFINITY
            improved = candidate < best
            if improved:
                best = candidate
                ctx.set_state(best)
        if improved and best != INFINITY:
            ctx.send_to_neighbors(best + self.edge_weight)
        ctx.vote_to_halt()


def sssp(
    graph: Graph,
    source: int,
    num_workers: int = 4,
    max_supersteps: int = 50,
    edge_weight: float = 1.0,
) -> PregelResult:
    """Run SSSP from ``source`` until convergence (or ``max_supersteps``)."""
    if source not in graph.adjacency:
        raise GraphError(f"source vertex {source} is not in the graph")
    program = SsspProgram(source=source, edge_weight=edge_weight)
    return PregelEngine(graph, program, num_workers=num_workers).run(max_supersteps)
