"""Weakly Connected Components vertex program.

"WCC starts by sending large number of messages from all vertices which
decrease as the algorithm converges." (Section 3.) Every vertex starts with its
own id as component label and repeatedly adopts the minimum label seen among
its neighbours; the combiner keeps the minimum label per destination.
"""

from __future__ import annotations

from repro.graph.combiners import MIN_COMBINER
from repro.graph.graph import Graph
from repro.graph.pregel import PregelEngine, PregelResult, VertexContext, VertexProgram


class WccProgram(VertexProgram):
    """Label-propagation connected components with a min combiner."""

    combiner = MIN_COMBINER
    name = "wcc"

    def initial_state(self, vertex: int, graph: Graph) -> int:
        return vertex

    def compute(self, ctx: VertexContext) -> None:
        if ctx.superstep == 0:
            # Every vertex announces its own id to its neighbours.
            ctx.send_to_neighbors(ctx.state)
            ctx.vote_to_halt()
            return
        best = min(ctx.messages) if ctx.messages else ctx.state
        if best < ctx.state:
            ctx.set_state(best)
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()


def wcc(graph: Graph, num_workers: int = 4, max_supersteps: int = 50) -> PregelResult:
    """Run connected components until convergence (or ``max_supersteps``)."""
    return PregelEngine(graph, WccProgram(), num_workers=num_workers).run(max_supersteps)
