"""Per-iteration traffic accounting for Pregel runs (the Figure 1(c) metric).

"The traffic reduction ratio is calculated by combining all the messages sent
to the same destination into a single message by applying the aggregation
function used by the algorithm [...] inside the network." (Section 3.)

For every superstep we count the messages the algorithm emits and the number
of distinct destination vertices; their ratio is the fraction of traffic that
in-network aggregation could remove. Counters are kept both for all messages
and for the subset that actually crosses worker boundaries (the traffic a
network device could see), so the harness can report either view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import GraphError


@dataclass
class SuperstepTraffic:
    """Message statistics of one superstep."""

    superstep: int
    messages: int = 0
    distinct_destinations: int = 0
    remote_messages: int = 0
    distinct_remote_destinations: int = 0
    active_vertices: int = 0

    @property
    def reduction_ratio(self) -> float:
        """Traffic-reduction ratio over all messages (the paper's metric)."""
        if self.messages == 0:
            return 0.0
        return 1.0 - self.distinct_destinations / self.messages

    @property
    def remote_reduction_ratio(self) -> float:
        """Traffic-reduction ratio over worker-crossing messages only."""
        if self.remote_messages == 0:
            return 0.0
        return 1.0 - self.distinct_remote_destinations / self.remote_messages


@dataclass
class TrafficTrace:
    """Traffic statistics across the supersteps of one algorithm run."""

    algorithm: str
    supersteps: list[SuperstepTraffic] = field(default_factory=list)

    def append(self, traffic: SuperstepTraffic) -> None:
        """Record one superstep."""
        self.supersteps.append(traffic)

    def reduction_series(self, remote_only: bool = False) -> list[float]:
        """Per-iteration traffic-reduction ratios (Figure 1(c) y-axis)."""
        if remote_only:
            return [s.remote_reduction_ratio for s in self.supersteps]
        return [s.reduction_ratio for s in self.supersteps]

    def total_messages(self) -> int:
        """Messages emitted over the whole run."""
        return sum(s.messages for s in self.supersteps)

    def iterations(self) -> int:
        """Number of recorded supersteps."""
        return len(self.supersteps)

    def peak_reduction(self) -> float:
        """Highest per-iteration reduction ratio."""
        if not self.supersteps:
            raise GraphError("traffic trace is empty")
        return max(self.reduction_series())

    def last(self) -> SuperstepTraffic:
        """The most recent superstep's statistics."""
        if not self.supersteps:
            raise GraphError("traffic trace is empty")
        return self.supersteps[-1]
