"""Message combiners.

"The three algorithms are associated with a commutative and associative
aggregation function" (Section 3): PageRank combines contributions with a sum,
SSSP and WCC with a minimum. Combiners are exactly the functions DAIET would
install on the aggregation tree for the corresponding job, so they are defined
in terms of the shared :mod:`repro.core.functions` registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import GraphError
from repro.core.functions import MIN, SUM, AggregationFunction


@dataclass(frozen=True)
class Combiner:
    """A per-destination message combiner."""

    function: AggregationFunction

    def combine(self, messages: Iterable[float]) -> float:
        """Fold all messages destined to one vertex into a single message."""
        values = list(messages)
        if not values:
            raise GraphError("cannot combine an empty message list")
        return self.function.reduce(values)

    @property
    def name(self) -> str:
        """Registry name of the underlying aggregation function."""
        return self.function.name


#: Combiner used by PageRank (sums the rank contributions).
SUM_COMBINER = Combiner(function=SUM)

#: Combiner used by SSSP and WCC (keeps the minimum distance / component id).
MIN_COMBINER = Combiner(function=MIN)
