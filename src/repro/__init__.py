"""Reproduction of "In-Network Computation is a Dumb Idea Whose Time Has Come".

The package implements DAIET — a system for in-network data aggregation for
partition/aggregate data-center applications (Sapio et al., HotNets 2017) —
together with every substrate its evaluation depends on:

* :mod:`repro.core` — DAIET itself: wire format, Algorithm 1, aggregation
  trees, controller and the :class:`~repro.core.daiet.DaietSystem` facade.
* :mod:`repro.dataplane` — a programmable-switch (RMT/P4) model with registers,
  match-action tables, a bounded-depth parser and resource budgets.
* :mod:`repro.netsim` — a discrete-event data-center network simulator.
* :mod:`repro.transport` — UDP/TCP framing models for the baselines.
* :mod:`repro.mapreduce` — a MapReduce framework with pluggable shuffle paths.
* :mod:`repro.mlsys` — a parameter-server training substrate (SGD/Adam) used
  for the tensor-update overlap study (Figure 1a/b).
* :mod:`repro.graph` — a Pregel-style graph engine (PageRank, SSSP, WCC) used
  for the traffic-reduction study (Figure 1c).
* :mod:`repro.baselines` — the TCP and UDP shuffle baselines of Figure 3.
* :mod:`repro.analysis` — reduction metrics, box-plot statistics, report
  rendering used by the benchmark harness.
"""

__version__ = "1.0.0"

from repro.core.config import DaietConfig, ExperimentConfig
from repro.core.daiet import DaietSystem

__all__ = ["DaietConfig", "ExperimentConfig", "DaietSystem", "__version__"]
