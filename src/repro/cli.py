"""Command-line front end: regenerate any of the paper's figures.

Usage::

    python -m repro fig1a [--quick]
    python -m repro fig1b [--quick]
    python -m repro fig1c [--quick] [--vertices N]
    python -m repro fig3  [--quick] [--reliability]
    python -m repro loss-sweep [--quick]
    python -m repro scale [--quick] [--fabric leaf_spine|fat_tree]
                          [--workers N] [--compare-baselines]
    python -m repro churn [--quick] [--reliability]
                          [--scenario spine-kill|flap|straggler|hotspot|all]
    python -m repro incast [--quick] [--fanin N]
    python -m repro approx-sweep [--quick] [--loss RATE]
    python -m repro all   [--quick]
    python -m repro lint  [--root PATH]

Each experiment subcommand runs the corresponding runner from
:mod:`repro.experiments` and prints the same textual report the benchmark
harness writes to ``benchmarks/output/``; ``--sanitize`` runs it with the
runtime invariant sanitizer enabled (equivalent to ``REPRO_SANITIZE=1``).
``lint`` runs the static invariant checks from :mod:`repro.checks` and
exits non-zero on any finding.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from typing import Callable, Sequence

from repro.analysis.reporting import render_comparison_table
from repro.experiments.figure1_graph import Figure1GraphSettings, run_figure1c
from repro.experiments.figure1_ml import (
    PAPER_ADAM_OVERLAP_PERCENT,
    PAPER_SGD_OVERLAP_PERCENT,
    Figure1MlSettings,
    make_dataset,
    run_figure1a,
    run_figure1b,
)
from repro.experiments.figure3_wordcount import Figure3Settings, run_figure3
from repro.experiments.figure_approx import ApproxSweepSettings, run_approx_sweep
from repro.experiments.figure_churn import SCENARIOS, ChurnSettings, run_churn
from repro.experiments.figure_incast import IncastSettings, run_incast
from repro.experiments.figure_loss_sweep import LossSweepSettings, run_loss_sweep
from repro.experiments.figure_scale import ScaleSettings, run_scale


def _ml_settings(quick: bool) -> Figure1MlSettings:
    settings = Figure1MlSettings()
    return settings.quick() if quick else settings


def _graph_settings(quick: bool, vertices: int | None) -> Figure1GraphSettings:
    settings = Figure1GraphSettings()
    if quick:
        settings = settings.quick()
    if vertices is not None:
        settings = Figure1GraphSettings(
            num_vertices=vertices,
            average_degree=settings.average_degree,
            num_workers=settings.num_workers,
            iterations=settings.iterations,
            sssp_source=settings.sssp_source,
            seed=settings.seed,
        )
    return settings


def run_fig1a(args: argparse.Namespace) -> str:
    """Figure 1(a): SGD overlap."""
    settings = _ml_settings(args.quick)
    result = run_figure1a(settings, make_dataset(settings))
    return render_comparison_table(
        "Figure 1(a): SGD tensor-update overlap",
        [("average overlap", f"{PAPER_SGD_OVERLAP_PERCENT}%", f"{result.average_overlap():.1f}%")],
    )


def run_fig1b(args: argparse.Namespace) -> str:
    """Figure 1(b): Adam overlap."""
    settings = _ml_settings(args.quick)
    result = run_figure1b(settings, make_dataset(settings))
    return render_comparison_table(
        "Figure 1(b): Adam tensor-update overlap",
        [("average overlap", f"{PAPER_ADAM_OVERLAP_PERCENT}%", f"{result.average_overlap():.1f}%")],
    )


def run_fig1c(args: argparse.Namespace) -> str:
    """Figure 1(c): graph-analytics traffic reduction."""
    settings = _graph_settings(args.quick, getattr(args, "vertices", None))
    return run_figure1c(settings).report


def run_fig3(args: argparse.Namespace) -> str:
    """Figure 3: WordCount reductions."""
    settings = Figure3Settings().quick() if args.quick else Figure3Settings()
    if getattr(args, "reliability", False):
        settings = dataclasses.replace(settings, reliability=True)
    return run_figure3(settings).report


def run_loss_sweep_cmd(args: argparse.Namespace) -> str:
    """Loss sweep: exact aggregation under lossy links (reliability layer)."""
    settings = LossSweepSettings().quick() if args.quick else LossSweepSettings()
    return run_loss_sweep(settings).report


def run_scale_cmd(args: argparse.Namespace) -> str:
    """Cluster-scale sweep: 16-1024 workers on a multi-switch fabric."""
    settings = ScaleSettings().quick() if args.quick else ScaleSettings()
    fabric = getattr(args, "fabric", None)
    if fabric is not None:
        settings = dataclasses.replace(settings, fabric=fabric)
    workers = getattr(args, "workers", None)
    if workers is not None:
        settings = dataclasses.replace(settings, worker_counts=(workers,))
    if getattr(args, "compare_baselines", False):
        settings = dataclasses.replace(settings, compare_baselines=True)
    return run_scale(settings).report


def run_churn_cmd(args: argparse.Namespace) -> str:
    """Fault churn: crash/flap/straggler/hotspot with failover recovery."""
    settings = ChurnSettings().quick() if args.quick else ChurnSettings()
    if getattr(args, "reliability", False):
        settings = dataclasses.replace(settings, reliability=True)
    scenario = getattr(args, "scenario", "all")
    scenarios = SCENARIOS if scenario == "all" else (scenario,)
    return run_churn(settings, scenarios).report


def run_incast_cmd(args: argparse.Namespace) -> str:
    """Incast fan-in sweep: adaptive transport vs in-network aggregation."""
    settings = IncastSettings().quick() if args.quick else IncastSettings()
    fanin = getattr(args, "fanin", None)
    if fanin is not None:
        settings = dataclasses.replace(
            settings, fanins=(fanin,), ablation_fanin=fanin
        )
    return run_incast(settings).report


def run_approx_sweep_cmd(args: argparse.Namespace) -> str:
    """Approximation sweep: reliability policies vs a-posteriori error bounds."""
    settings = ApproxSweepSettings().quick() if args.quick else ApproxSweepSettings()
    loss = getattr(args, "loss", None)
    if loss is not None:
        settings = dataclasses.replace(settings, loss_rates=(loss,))
    return run_approx_sweep(settings).report


def run_lint_cmd(args: argparse.Namespace) -> tuple[str, int]:
    """Static checks: determinism lint, fast-path parity, dataplane config."""
    from repro.checks.lint import run_lint

    report = run_lint(root=getattr(args, "root", None))
    return report.render(), 0 if report.ok else 1


def run_all(args: argparse.Namespace) -> str:
    """Every figure, back to back."""
    parts = [
        run_fig1a(args),
        run_fig1b(args),
        run_fig1c(args),
        run_fig3(args),
        run_loss_sweep_cmd(args),
        run_scale_cmd(args),
    ]
    return "\n\n".join(parts)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1a": run_fig1a,
    "fig1b": run_fig1b,
    "fig1c": run_fig1c,
    "fig3": run_fig3,
    "loss-sweep": run_loss_sweep_cmd,
    "scale": run_scale_cmd,
    "churn": run_churn_cmd,
    "incast": run_incast_cmd,
    "approx-sweep": run_approx_sweep_cmd,
    "all": run_all,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures of 'In-Network Computation is a Dumb Idea "
        "Whose Time Has Come' (HotNets 2017).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, func in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=func.__doc__)
        sub.add_argument(
            "--quick",
            action="store_true",
            help="run at reduced scale (seconds instead of tens of seconds)",
        )
        sub.add_argument(
            "--sanitize",
            action="store_true",
            help="run with the runtime invariant sanitizer enabled "
            "(same as REPRO_SANITIZE=1): packet-conservation ledger, "
            "scheduler and register-leak checks",
        )
        if name in ("fig1c", "all"):
            sub.add_argument(
                "--vertices", type=int, default=None, help="graph size for Figure 1(c)"
            )
        if name in ("fig3", "all"):
            sub.add_argument(
                "--reliability",
                action="store_true",
                help="run the DAIET transport with the end-host reliability "
                "layer enabled",
            )
        if name == "churn":
            sub.add_argument(
                "--reliability",
                action="store_true",
                help="enable the reliability layer with replay retention so "
                "failover recovery is bit-exact (off: bounded, reported "
                "aggregate deficits)",
            )
            sub.add_argument(
                "--scenario",
                choices=SCENARIOS + ("all",),
                default="all",
                help="run one churn scenario instead of all four",
            )
        if name == "incast":
            sub.add_argument(
                "--fanin",
                type=int,
                default=None,
                help="run a single fan-in instead of the default sweep "
                "(e.g. --fanin 1024)",
            )
        if name == "approx-sweep":
            sub.add_argument(
                "--loss",
                type=float,
                default=None,
                help="sweep a single loss rate instead of the default set "
                "(e.g. --loss 0.01)",
            )
        if name == "scale":
            sub.add_argument(
                "--fabric",
                choices=("leaf_spine", "fat_tree"),
                default=None,
                help="fabric for the cluster-scale sweep (default: leaf_spine)",
            )
            sub.add_argument(
                "--workers",
                type=int,
                default=None,
                help="run a single worker count instead of the default sweep "
                "(e.g. --workers 1024)",
            )
            sub.add_argument(
                "--compare-baselines",
                action="store_true",
                help="also run the UDP/TCP baselines (reliability on) and "
                "report packet reductions",
            )
        sub.set_defaults(func=func)
    lint = subparsers.add_parser("lint", help=run_lint_cmd.__doc__)
    lint.add_argument(
        "--root",
        default=None,
        help="restrict to the determinism linter over this file or "
        "directory (default: full check suite over the repo tree)",
    )
    lint.set_defaults(func=run_lint_cmd)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"
    result = args.func(args)
    if isinstance(result, tuple):
        report, status = result
    else:
        report, status = result, 0
    print(report)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
