"""Reduction metrics and box-plot statistics used by the benchmark harness.

Figure 3 of the paper is a box plot of the per-reducer reduction (in data
volume, reduce time and packet count) of DAIET relative to the baselines. The
helpers here compute those per-reducer reduction distributions and their
box-plot summary (min, quartiles, median, max), so every benchmark prints the
same kind of rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Sequence

from repro.core.errors import ReproError
from repro.mapreduce.job import JobResult


class MetricsError(ReproError):
    """Raised when a metric cannot be computed from the provided inputs."""


def reduction_ratio(baseline: float, value: float) -> float:
    """Fractional reduction of ``value`` relative to ``baseline``.

    Positive means ``value`` is smaller than the baseline; 0.869 reads as a
    86.9% reduction.
    """
    if baseline <= 0:
        raise MetricsError(f"baseline must be positive, got {baseline}")
    return 1.0 - value / baseline


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not values:
        raise MetricsError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise MetricsError("fraction must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    # Formulated as lower + weight * (upper - lower) so the result is always
    # bounded by the two neighbouring order statistics even for values where
    # naive interpolation would lose precision (e.g. subnormals).
    return float(ordered[lower] + weight * (ordered[upper] - ordered[lower]))


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary (plus mean) of a distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxplotStats":
        """Summarize a sequence of observations."""
        if not values:
            raise MetricsError("cannot summarize an empty sequence")
        return cls(
            minimum=float(min(values)),
            q1=percentile(values, 0.25),
            median=float(median(values)),
            q3=percentile(values, 0.75),
            maximum=float(max(values)),
            mean=float(mean(values)),
            count=len(values),
        )

    def as_percent(self) -> "BoxplotStats":
        """The same summary scaled by 100 (fractions -> percentages)."""
        return BoxplotStats(
            minimum=self.minimum * 100.0,
            q1=self.q1 * 100.0,
            median=self.median * 100.0,
            q3=self.q3 * 100.0,
            maximum=self.maximum * 100.0,
            mean=self.mean * 100.0,
            count=self.count,
        )


def per_reducer_reduction(
    treatment: JobResult,
    baseline: JobResult,
    metric: str,
) -> list[float]:
    """Per-reducer reduction of ``metric`` in ``treatment`` vs ``baseline``.

    ``metric`` is the name of a :class:`~repro.mapreduce.job.ReducerMetrics`
    field, e.g. ``"payload_bytes_received"``, ``"packets_received"`` or
    ``"reduce_seconds"``.
    """
    if set(treatment.reducer_metrics) != set(baseline.reducer_metrics):
        raise MetricsError("treatment and baseline ran different reducer sets")
    reductions: list[float] = []
    for reducer_id in sorted(treatment.reducer_metrics):
        base_value = getattr(baseline.reducer_metrics[reducer_id], metric)
        treat_value = getattr(treatment.reducer_metrics[reducer_id], metric)
        reductions.append(reduction_ratio(float(base_value), float(treat_value)))
    return reductions


def reduction_boxplot(
    treatment: JobResult,
    baseline: JobResult,
    metric: str,
) -> BoxplotStats:
    """Box-plot summary of the per-reducer reduction of one metric."""
    return BoxplotStats.from_values(per_reducer_reduction(treatment, baseline, metric))
