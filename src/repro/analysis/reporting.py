"""Plain-text rendering of the paper's figures.

The benchmark harness regenerates every figure as text: a per-step/-iteration
series for Figure 1 and box-plot rows for Figure 3. Keeping the renderers here
(rather than inside the benchmarks) lets the examples print the same reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.metrics import BoxplotStats


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fraction (0.869) or percentage (86.9) consistently as percent."""
    percent = value * 100.0 if -1.0 <= value <= 1.0 else value
    return f"{percent:.{decimals}f}%"


def render_series_table(
    title: str,
    series: Mapping[str, Sequence[float]],
    index_label: str = "step",
    as_percent: bool = True,
    max_rows: int | None = 20,
) -> str:
    """Render one or more aligned numeric series as a text table.

    Used for Figure 1(a,b) (overlap per step) and Figure 1(c) (traffic
    reduction per iteration).
    """
    names = list(series)
    if not names:
        return f"{title}\n(no data)"
    length = max(len(values) for values in series.values())
    lines = [title, ""]
    header = f"{index_label:>6s}  " + "  ".join(f"{name:>12s}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    indices = range(length)
    if max_rows is not None and length > max_rows:
        step = max(1, length // max_rows)
        indices = range(0, length, step)
    for i in indices:
        row = [f"{i:>6d}"]
        for name in names:
            values = series[name]
            if i < len(values):
                value = values[i]
                text = format_percent(value) if as_percent else f"{value:.4f}"
            else:
                text = "-"
            row.append(f"{text:>12s}")
        lines.append("  ".join(row))
    return "\n".join(lines)


def render_summary_row(name: str, stats: BoxplotStats, paper_value: str = "") -> str:
    """One Figure-3-style row: metric name, box-plot summary, paper reference."""
    summary = (
        f"min={stats.minimum:6.1f}%  q1={stats.q1:6.1f}%  median={stats.median:6.1f}%  "
        f"q3={stats.q3:6.1f}%  max={stats.maximum:6.1f}%"
    )
    row = f"{name:<38s} {summary}"
    if paper_value:
        row += f"   [paper: {paper_value}]"
    return row


def render_boxplot_table(
    title: str,
    rows: Mapping[str, BoxplotStats],
    paper_values: Mapping[str, str] | None = None,
) -> str:
    """Render the Figure 3 reduction box plots as text rows."""
    paper_values = paper_values or {}
    lines = [title, ""]
    for name, stats in rows.items():
        lines.append(render_summary_row(name, stats.as_percent(), paper_values.get(name, "")))
    return "\n".join(lines)


def render_comparison_table(
    title: str,
    rows: Sequence[tuple[str, str, str]],
    headers: tuple[str, str, str] = ("experiment", "paper", "measured"),
) -> str:
    """A three-column paper-vs-measured table (used by EXPERIMENTS.md tooling)."""
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in rows), default=0)) for i in range(3)
    ]
    lines = [title, ""]
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(3)))
    return "\n".join(lines)
