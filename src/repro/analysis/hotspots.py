"""Online hotspot detection over per-switch traffic statistics.

The O&M traffic-hotspot-localization line of work (see PAPERS.md) detects
overloaded aggregation points from periodically sampled per-device
counters. This module reproduces that control-loop shape against the
simulator: a :class:`HotspotDetector` samples
:class:`~repro.netsim.stats.TrafficStats` snapshots of a monitored switch
set on the simulation clock, computes each switch's share of the traffic
observed *in the last window*, and flags a switch whose share exceeds a
threshold — typically an aggregation switch that ECMP or naive tree
placement concentrated too many trees onto.

A flagged hotspot is reported through the ``on_hotspot`` callback, which
the churn experiment wires to
:meth:`~repro.core.failover.FailoverManager.move_tree` so detection
*triggers* controller-driven tree rebalancing. Detection is entirely
deterministic: sampling happens at fixed simulated times and all
iteration is over sorted names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import NetworkSimulator

__all__ = ["HotspotConfig", "HotspotDetector", "HotspotEvent"]


@dataclass(frozen=True)
class HotspotConfig:
    """Tunables of the hotspot control loop."""

    #: Sampling period in simulated seconds.
    sample_interval: float = 5e-4
    #: A switch is flagged when its share of the window's monitored packets
    #: exceeds this fraction.
    share_threshold: float = 0.6
    #: Windows with fewer monitored packets than this are ignored (idle or
    #: draining fabric — shares would be noise).
    min_window_packets: int = 50
    #: Samples to skip after flagging a switch before it may be flagged
    #: again (rebalancing needs time to take effect).
    cooldown_samples: int = 4
    #: Hard cap on samples, bounding simulation length.
    max_samples: int = 200

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise SimulationError("sample_interval must be positive")
        if not 0.0 < self.share_threshold <= 1.0:
            raise SimulationError("share_threshold must lie in (0, 1]")
        if self.max_samples <= 0:
            raise SimulationError("max_samples must be positive")


@dataclass(frozen=True)
class HotspotEvent:
    """One flagged hotspot: where, when and how concentrated."""

    time: float
    switch: str
    share: float
    window_packets: int

    def describe(self) -> str:
        """Stable one-line rendering for logs and reports."""
        return (
            f"t={self.time:.6f} hotspot {self.switch} "
            f"share={self.share:.3f} window={self.window_packets}"
        )


class HotspotDetector:
    """Periodic per-switch traffic sampling with threshold flagging."""

    def __init__(
        self,
        sim: "NetworkSimulator",
        switches: Iterable[str],
        config: HotspotConfig | None = None,
        on_hotspot: Callable[[HotspotEvent], None] | None = None,
    ) -> None:
        self.sim = sim
        self.switches = sorted(switches)
        if not self.switches:
            raise SimulationError("hotspot detector needs at least one switch")
        for name in self.switches:
            sim.topology.get(name)  # raises TopologyError on unknowns
        self.config = config or HotspotConfig()
        self.on_hotspot = on_hotspot
        #: Every flagged hotspot, in detection order.
        self.events: list[HotspotEvent] = []
        self._last_packets: dict[str, int] = {name: 0 for name in self.switches}
        self._cooldown: dict[str, int] = {}
        self._samples = 0
        self._started = False

    def start(self) -> None:
        """Arm the sampling loop on the simulation scheduler."""
        if self._started:
            return
        self._started = True
        self._snapshot_baseline()
        self.sim.scheduler.schedule(self.config.sample_interval, self._tick)

    def _snapshot_baseline(self) -> None:
        switch_traffic = self.sim.stats.switch_traffic
        for name in self.switches:
            traffic = switch_traffic.get(name)
            self._last_packets[name] = traffic.packets if traffic is not None else 0

    def _tick(self) -> None:
        self._samples += 1
        switch_traffic = self.sim.stats.switch_traffic
        deltas: dict[str, int] = {}
        total = 0
        for name in self.switches:
            traffic = switch_traffic.get(name)
            packets = traffic.packets if traffic is not None else 0
            deltas[name] = packets - self._last_packets[name]
            self._last_packets[name] = packets
            total += deltas[name]
        for name in sorted(self._cooldown):
            self._cooldown[name] -= 1
            if self._cooldown[name] <= 0:
                del self._cooldown[name]
        config = self.config
        if total >= config.min_window_packets:
            for name in self.switches:
                share = deltas[name] / total
                if share > config.share_threshold and name not in self._cooldown:
                    event = HotspotEvent(
                        time=self.sim.now,
                        switch=name,
                        share=share,
                        window_packets=total,
                    )
                    self.events.append(event)
                    self._cooldown[name] = config.cooldown_samples
                    if self.on_hotspot is not None:
                        self.on_hotspot(event)
        if self._samples < config.max_samples:
            self.sim.scheduler.schedule(config.sample_interval, self._tick)

    def shares(self) -> dict[str, float]:
        """Cumulative per-switch share of all monitored packets so far."""
        switch_traffic = self.sim.stats.switch_traffic
        counts = {
            name: (
                switch_traffic[name].packets if name in switch_traffic else 0
            )
            for name in self.switches
        }
        total = sum(counts.values())
        if total == 0:
            return {name: 0.0 for name in self.switches}
        return {name: count / total for name, count in counts.items()}
