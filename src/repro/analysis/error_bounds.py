"""Bounded-error accounting for degraded-mode (approximate) aggregation.

Trees running a reduced reliability policy (``sampled`` / ``best_effort``,
see ``DaietConfig.reliability_policy``) trade exactness for bytes: some
contributions are allowed to die on the wire. This module makes that trade
*auditable*. An :class:`ErrorBoundTracker` keeps per-tree contribution
ledgers — injected mass on one side, every observed loss on the other —
and reports an **a-posteriori error bound** on each aggregate:

* for SUM/COUNT trees the bound is an absolute L1 deficit: the sum of
  ``|value|`` over every pair observed lost — wire drops of DATA packets,
  partial aggregates wiped out of a crashed switch's registers, and mass
  *stranded* in switch registers at read time (a best-effort tree whose
  END marker died never triggers the final flush, so the registers keep
  the round's partial aggregates forever);
* for gradient-style tensors the same mass is additionally reported
  relative to the injected L1 mass.

The bound is *sound but not tight*: a retransmitted-then-lost packet is
counted once per lost copy and a recovered retransmission is never
subtracted, so the reported bound can exceed the realized error — it can
never undershoot it. Soundness rests on linearity of SUM: every lost pair
(original contribution or partial aggregate) maps its value onto exactly
one key's deficit, and ``|sum of losses| <= sum of |losses|``.

Loss capture mirrors the sanitizer's technique: a wrapper around
``NetworkSimulator._transmit`` detects a sunk packet by the scheduler
backlog *not* growing across the call. Install the tracker **after** any
:class:`~repro.netsim.faults.FaultInjector` so the wrapper sits outside
the fault gate and fault-destroyed packets are captured too; the tracker
additionally hooks the injector's switch wipe so register mass destroyed
by a crash (which never touches a link) still enters the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.packet import DaietPacket, DaietPacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.daiet import DaietSystem

__all__ = [
    "ErrorBoundTracker",
    "TreeErrorBound",
    "TreeErrorLedger",
    "install_error_tracker",
    "true_error_l1",
]


@dataclass
class TreeErrorLedger:
    """Raw per-tree contribution accounting (all mass in value units)."""

    tree_id: int
    policy: str = "exact"
    #: Application-injected mass (original sends only, never retransmits).
    injected_sum: int = 0
    injected_abs: int = 0
    injected_pairs: int = 0
    #: Mass of DATA pairs observed dropped in flight (per lost copy).
    lost_sum: int = 0
    lost_abs: int = 0
    lost_pairs: int = 0
    lost_packets: int = 0
    #: Mass of partial aggregates wiped out of crashed-switch registers.
    wiped_sum: int = 0
    wiped_abs: int = 0
    wiped_pairs: int = 0

    def record_injected(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        for _key, value in pairs:
            self.injected_sum += value
            self.injected_abs += abs(value)
            self.injected_pairs += 1

    def record_lost_packet(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        self.lost_packets += 1
        for _key, value in pairs:
            self.lost_sum += value
            self.lost_abs += abs(value)
            self.lost_pairs += 1

    def record_wiped(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        for _key, value in pairs:
            self.wiped_sum += value
            self.wiped_abs += abs(value)
            self.wiped_pairs += 1


@dataclass(frozen=True)
class TreeErrorBound:
    """The reported a-posteriori bound for one tree's aggregate."""

    tree_id: int
    policy: str
    #: Signed sum of every lost/wiped contribution: the bound on the
    #: *total*-sum deficit (exact for SUM by linearity when each copy is
    #: lost at most once; conservative otherwise).
    deficit_sum: int
    #: L1 bound: ``sum(|exact[k] - approx[k]|) <= abs_bound`` over all keys.
    abs_bound: int
    #: ``abs_bound`` relative to the injected L1 mass (gradient tensors).
    relative_bound: float
    injected_abs: int
    lost_pairs: int
    wiped_pairs: int
    #: Register slots still holding partial aggregates at read time (a lost
    #: END marker means the final flush never fired).
    stranded_pairs: int

    def contains(self, true_l1: int | float) -> bool:
        """Whether the bound covers an observed L1 error (twin-run check)."""
        return true_l1 <= self.abs_bound


def true_error_l1(
    exact: Mapping[Any, Any], approximate: Mapping[Any, Any]
) -> int:
    """Realized L1 error between an exact and an approximate aggregate."""
    total = 0
    for key in exact.keys() | approximate.keys():
        total += abs(exact.get(key, 0) - approximate.get(key, 0))
    return total


class ErrorBoundTracker:
    """Per-tree loss ledgers and error bounds for one :class:`DaietSystem`.

    Pure observer: wrappers only ever *watch* the packet stream, so a
    tracked run is event-for-event identical to an untracked one.
    """

    def __init__(self, system: "DaietSystem") -> None:
        self.system = system
        self.sim = system.simulator
        self.ledgers: dict[int, TreeErrorLedger] = {}
        self._installed = False

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install(self) -> "ErrorBoundTracker":
        """Wrap the transmit path (and the fault wipe, when faults exist).

        Install after the sanitizer and the fault injector: the transmit
        wrapper must be outermost so drops from *any* cause — loss draw,
        full buffer, fault gate — are observed.
        """
        if self._installed:
            return self
        sim = self.sim
        real_transmit = sim._transmit
        scheduler = sim.scheduler

        def transmit(from_device: str, egress_port: int, packet: Any, nbytes: int) -> None:
            before = len(scheduler)
            real_transmit(from_device, egress_port, packet, nbytes)
            if len(scheduler) == before and type(packet) is DaietPacket:
                if packet.packet_type is DaietPacketType.DATA and packet.pairs:
                    ledger = self._ledger(packet.tree_id)
                    if ledger is not None:
                        ledger.record_lost_packet(packet.pairs)

        sim._transmit = transmit
        injector = getattr(sim, "fault_injector", None)
        if injector is not None:
            self._hook_injector(injector)
        self._hook_teardown(self.system.controller)
        # The compiled per-link sinks captured the previous bound methods;
        # rebuild so they re-capture the wrappers.
        sim._build_port_maps()
        self.system.error_tracker = self
        self._installed = True
        return self

    def _hook_injector(self, injector: Any) -> None:
        """Capture fault damage the transmit wrapper cannot see.

        Two blind spots: register mass a switch crash destroys (never a
        link event at all), and packets already in flight *towards* a
        crashed device, which the injector destroys in its deliver wrapper.
        """
        real_wipe = injector._wipe_switch

        def wipe(device: Any) -> None:
            self._record_register_mass(device)
            real_wipe(device)

        injector._wipe_switch = wipe
        down_devices = injector.down_devices
        for name in injector.plan.crash_targets():
            self._watch_deliver(self.sim.topology.get(name), name, down_devices)

    def _watch_deliver(self, device: Any, name: str, down_devices: set) -> None:
        """Record DATA mass the injector destroys at ``device``'s deliver."""
        inner = device.deliver
        if hasattr(device, "switch"):

            def switch_deliver(packet: Any, ingress_port: int, nbytes: int) -> Any:
                if name in down_devices:
                    self._record_destroyed(packet)
                return inner(packet, ingress_port, nbytes)

            device.deliver = switch_deliver
        else:

            def deliver(packet: Any, nbytes: int) -> None:
                if name in down_devices:
                    self._record_destroyed(packet)
                inner(packet, nbytes)

            device.deliver = deliver

    def _record_destroyed(self, packet: Any) -> None:
        if type(packet) is DaietPacket:
            if packet.packet_type is DaietPacketType.DATA and packet.pairs:
                ledger = self._ledger(packet.tree_id)
                if ledger is not None:
                    ledger.record_lost_packet(packet.pairs)

    def _hook_teardown(self, controller: Any) -> None:
        """Capture register mass a tree teardown (re-plan) discards.

        ``replan_tree`` tears the old epoch down on every *surviving*
        switch; partial aggregates still parked in its registers are
        destroyed without any link event, exactly like a crash wipe.
        """
        real_teardown = controller._teardown_tree

        def teardown(tree: Any) -> None:
            ledger = self._ledger(tree.tree_id)
            if ledger is not None:
                for node in tree.switches():
                    device = self.sim.topology.get(node.name)
                    pairs = self._register_pairs(device, tree.tree_id)
                    if pairs:
                        ledger.record_wiped(pairs)
            real_teardown(tree)

        controller._teardown_tree = teardown

    @staticmethod
    def _register_pairs(device: Any, tree_id: int) -> list[tuple[Any, Any]]:
        """Pairs currently parked in one switch's registers for one tree."""
        switch = getattr(device, "switch", None)
        if switch is None:
            return []
        engine = switch.externs.get("daiet")
        if engine is None:
            return []
        state = engine._trees.get(tree_id)
        if state is None:
            return []
        # Vectorized trees park part of each slot's value in a delta array
        # until flush; fold it in before reading the cells.
        state.materialize()
        value_cells = state.value_register._cells
        key_cells = state.key_register._cells
        pairs = [
            (key_cells[idx], value_cells[idx])
            for idx in state.index_stack.peek_all()
        ]
        pairs.extend(state.spillover.peek())
        return pairs

    def _record_register_mass(self, device: Any) -> None:
        engine = device.switch.externs.get("daiet")
        if engine is None:
            return
        for tree_id in sorted(engine._trees):
            ledger = self._ledger(tree_id)
            if ledger is None:
                continue
            pairs = self._register_pairs(device, tree_id)
            if pairs:
                ledger.record_wiped(pairs)

    # ------------------------------------------------------------------ #
    # Ledger feeds
    # ------------------------------------------------------------------ #
    def _ledger(self, tree_id: int) -> TreeErrorLedger | None:
        """The ledger for one tree; ``None`` for exact trees.

        Exact trees repair every loss by construction, so tracking their
        drops would only report bounds that are zero by definition.
        """
        ledger = self.ledgers.get(tree_id)
        if ledger is not None:
            return ledger
        policy = self.system.tree_policy(tree_id)
        if policy == "exact":
            return None
        ledger = TreeErrorLedger(tree_id=tree_id, policy=policy)
        self.ledgers[tree_id] = ledger
        return ledger

    def record_injected(self, tree_id: int, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Called by ``DaietSystem.send_pairs`` for original sends only."""
        ledger = self._ledger(tree_id)
        if ledger is not None:
            ledger.record_injected(pairs)

    def merge_epoch(self, old_id: int, new_id: int) -> None:
        """Fold a dead epoch's ledger into its replacement tree.

        Failover re-plans give the replacement a fresh tree id; the logical
        aggregate (and its deficit) spans the whole lineage, so the old
        epoch's mass must follow the reducer to the new id. Called by
        :meth:`repro.core.failover.FailoverManager.move_tree`.
        """
        old = self.ledgers.pop(old_id, None)
        if old is None:
            return
        new = self._ledger(new_id)
        if new is None:  # pragma: no cover - policies never change mid-lineage
            self.ledgers[old_id] = old
            return
        new.injected_sum += old.injected_sum
        new.injected_abs += old.injected_abs
        new.injected_pairs += old.injected_pairs
        new.lost_sum += old.lost_sum
        new.lost_abs += old.lost_abs
        new.lost_pairs += old.lost_pairs
        new.lost_packets += old.lost_packets
        new.wiped_sum += old.wiped_sum
        new.wiped_abs += old.wiped_abs
        new.wiped_pairs += old.wiped_pairs

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _stranded_mass(self, tree_id: int) -> tuple[int, int, int]:
        """Mass currently parked in live switch registers for one tree.

        A lost END marker on an unreliable tree means the final flush never
        fires: the round's partial aggregates sit in the registers at
        quiescence and will never reach the reducer. Read live (and
        non-destructively) at bound time so the computation is idempotent.
        """
        total = 0
        total_abs = 0
        pairs = 0
        for device in self.sim.topology.switches():
            for _key, value in self._register_pairs(device, tree_id):
                total += value
                total_abs += abs(value)
                pairs += 1
        return total, total_abs, pairs

    def bound(self, tree_id: int) -> TreeErrorBound:
        """The current error bound for one tree (zero for exact trees)."""
        ledger = self.ledgers.get(tree_id)
        if ledger is None:
            return TreeErrorBound(
                tree_id=tree_id,
                policy=self.system.tree_policy(tree_id),
                deficit_sum=0,
                abs_bound=0,
                relative_bound=0.0,
                injected_abs=0,
                lost_pairs=0,
                wiped_pairs=0,
                stranded_pairs=0,
            )
        stranded_sum, stranded_abs, stranded_pairs = self._stranded_mass(tree_id)
        abs_bound = ledger.lost_abs + ledger.wiped_abs + stranded_abs
        injected = ledger.injected_abs
        return TreeErrorBound(
            tree_id=ledger.tree_id,
            policy=ledger.policy,
            deficit_sum=ledger.lost_sum + ledger.wiped_sum + stranded_sum,
            abs_bound=abs_bound,
            relative_bound=(abs_bound / injected) if injected else 0.0,
            injected_abs=injected,
            lost_pairs=ledger.lost_pairs,
            wiped_pairs=ledger.wiped_pairs,
            stranded_pairs=stranded_pairs,
        )

    def bounds(self) -> dict[int, TreeErrorBound]:
        """Bounds for every tree that ever recorded mass, keyed by tree id."""
        return {tree_id: self.bound(tree_id) for tree_id in sorted(self.ledgers)}


def install_error_tracker(system: "DaietSystem") -> ErrorBoundTracker:
    """Create and install an :class:`ErrorBoundTracker` on ``system``."""
    return ErrorBoundTracker(system).install()
