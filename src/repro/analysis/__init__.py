"""Metrics and reporting helpers used by the benchmark harness."""

from repro.analysis.error_bounds import (
    ErrorBoundTracker,
    TreeErrorBound,
    TreeErrorLedger,
    install_error_tracker,
    true_error_l1,
)
from repro.analysis.metrics import (
    BoxplotStats,
    MetricsError,
    per_reducer_reduction,
    percentile,
    reduction_boxplot,
    reduction_ratio,
)
from repro.analysis.reporting import (
    format_percent,
    render_boxplot_table,
    render_comparison_table,
    render_series_table,
    render_summary_row,
)

__all__ = [
    "BoxplotStats",
    "ErrorBoundTracker",
    "TreeErrorBound",
    "TreeErrorLedger",
    "install_error_tracker",
    "true_error_l1",
    "MetricsError",
    "per_reducer_reduction",
    "percentile",
    "reduction_boxplot",
    "reduction_ratio",
    "format_percent",
    "render_boxplot_table",
    "render_comparison_table",
    "render_series_table",
    "render_summary_row",
]
