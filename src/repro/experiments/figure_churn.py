"""Fault-churn scenarios: crash, flap, straggler and hotspot under recovery.

The paper's evaluation assumes a healthy fabric: trees are installed once
and every switch stays up. Real clusters churn — switches crash and
restart, links flap, stragglers slow a whole round, and naive tree
placement concentrates load onto one aggregation point. This experiment
drives the fault-churn engine (:mod:`repro.netsim.faults`), the failover
manager (:mod:`repro.core.failover`) and the hotspot detector
(:mod:`repro.analysis.hotspots`) through four scenarios and reports
recover-vs-static outcomes:

* **spine-kill** — the aggregation spine crashes mid-round. The static arm
  rides it out (bounded aggregate deficit); the recover arm detects the
  crash over the heartbeat, re-plans the tree through the surviving spine
  and replays the retained history. With reliability on the recovered
  aggregate is bit-identical to the fault-free run.
* **flap** — seeded random trunk-link flaps while the round is in flight,
  swept over several flap seeds. Reliability absorbs the gated drops.
* **straggler** — the tree's spine slows down by a large factor; the
  recover arm rebalances the tree off the slow spine when the telemetry
  observer reports the slowdown, finishing earlier than the static arm.
* **hotspot** — two trees deliberately concentrated on one spine; the
  online hotspot detector flags the concentration from per-switch traffic
  stats and triggers controller-driven rebalancing.

Every fault schedule is expressed as a fraction of the measured fault-free
completion time, so the scenarios stay mid-round at any workload scale.
All randomness is seeded and the report is deterministic byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from repro.analysis.hotspots import HotspotConfig, HotspotDetector, HotspotEvent
from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.errors import ReproError
from repro.core.failover import FailoverConfig, FailoverManager
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.faults import SLOWDOWN_START, FaultPlan, install_faults
from repro.netsim.simulator import SimulatorConfig
from repro.netsim.topology import Topology, leaf_spine

#: Scenario names in canonical run/report order.
SCENARIOS = ("spine-kill", "flap", "straggler", "hotspot")

#: Worker placement on the 2x2 leaf-spine fabric (h0,h1 on leaf0; h2,h3 on
#: leaf1), so every tree crosses a spine.
MAPPERS = ("h0", "h1", "h2")
REDUCER = "h3"
HOTSPOT_MAPPERS = ("h0", "h1")
HOTSPOT_REDUCERS = ("h2", "h3")


@dataclass(frozen=True)
class ChurnSettings:
    """Workload, fault-schedule and recovery knobs for the churn scenarios."""

    #: Per-mapper partition size (the three partitions overlap, so dropped
    #: packets show up as value deficits, not just missing keys).
    keys_per_mapper: int = 80
    #: Run with the PR 1 reliability layer and replay retention; recovery is
    #: bit-exact only in this mode. Off, every scenario still completes and
    #: reports its bounded aggregate deficit.
    reliability: bool = False
    retransmit_timeout: float = 1e-4
    #: Crash/slowdown instants as fractions of the fault-free completion
    #: time, keeping the faults mid-round at any workload scale.
    crash_fraction: float = 0.35
    slowdown_fraction: float = 0.2
    heartbeat_interval: float = 2.5e-4
    max_heartbeat_ticks: int = 400
    #: Flap sweep: seeds for :meth:`FaultPlan.random_flaps` plus the flap
    #: window, again as fractions of the fault-free completion time.
    flap_seeds: tuple[int, ...] = (7, 8, 9)
    flap_count: int = 4
    flap_start_fraction: float = 0.1
    flap_window_fraction: float = 0.7
    flap_duration_fraction: float = 0.18
    #: Straggler slowdown factor on the tree spine's uplinks.
    slowdown_factor: float = 200.0
    #: Hotspot scenario: pairs per (mapper, reducer) flow and the detector's
    #: control-loop tunables (tuned to the microsecond-scale rounds here).
    hotspot_pairs: int = 300
    hotspot_sample_interval: float = 2e-6
    hotspot_share_threshold: float = 0.9
    hotspot_min_window_packets: int = 5
    hotspot_max_samples: int = 50

    def quick(self) -> "ChurnSettings":
        """A fast variant used by unit tests and smoke runs."""
        return dc_replace(
            self,
            keys_per_mapper=40,
            flap_seeds=self.flap_seeds[:2],
            hotspot_pairs=160,
        )

    def daiet_config(self) -> DaietConfig:
        """The DAIET configuration implied by these settings."""
        return DaietConfig(
            reliability=self.reliability,
            retain_for_replay=self.reliability,
            retransmit_timeout=self.retransmit_timeout,
        )


@dataclass
class ArmResult:
    """Outcome of one arm (one full simulation run) of a scenario."""

    name: str
    exact: bool
    done: bool
    keys: int
    #: Ground-truth value mass minus received value mass (0 when exact;
    #: positive = bounded degradation, never negative = never corrupt).
    value_deficit: int
    sim_seconds: float
    fault_drops: int


@dataclass
class ScenarioResult:
    """All arms of one scenario plus the control/fault logs they produced."""

    scenario: str
    arms: list[ArmResult] = field(default_factory=list)
    #: Failover-manager actions, (sim time, description), embedded verbatim.
    control_log: list[tuple[float, str]] = field(default_factory=list)
    #: Fault-injector events, same shape.
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    #: Free-form deterministic annotations (hotspot events, shares, sweeps).
    notes: list[str] = field(default_factory=list)
    #: Simulator events processed across all of the scenario's runs.
    events: int = 0
    #: Link-level packets moved across all of the scenario's runs
    #: (perf-bench packet throughput; every arm uses a fresh simulator, so
    #: per-run totals accumulate without double counting).
    link_packets: int = 0

    def arm(self, name: str) -> ArmResult:
        """The named arm."""
        for arm in self.arms:
            if arm.name == name:
                return arm
        raise ReproError(f"scenario {self.scenario!r} has no arm {name!r}")


@dataclass
class ChurnResult:
    """Every scenario's result plus the rendered report."""

    settings: ChurnSettings
    results: dict[str, ScenarioResult] = field(default_factory=dict)
    report: str = ""

    @property
    def recovery_exact(self) -> bool:
        """True when every recovery/ride-through arm matched ground truth."""
        checked = []
        for result in self.results.values():
            for arm in result.arms:
                if arm.name.startswith(("recover", "flap", "hotspot")):
                    checked.append(arm.exact)
        return bool(checked) and all(checked)


# ---------------------------------------------------------------------- #
# Workload and builders
# ---------------------------------------------------------------------- #
def _partitions(settings: ChurnSettings) -> dict[str, list[tuple[str, int]]]:
    """Three overlapping partitions; overlap makes deficits value-visible."""
    k = settings.keys_per_mapper
    return {
        "h0": [(f"k{i}", i) for i in range(k)],
        "h1": [(f"k{i}", 2 * i) for i in range(k // 2, k + k // 2)],
        "h2": [(f"k{i}", 3) for i in range(0, 2 * k, 2)],
    }


def _fabric() -> Topology:
    return leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)


def _build(settings: ChurnSettings):
    system = DaietSystem(_fabric(), settings.daiet_config(), SimulatorConfig())
    job = system.install_job(mappers=list(MAPPERS), reducers=[REDUCER])
    return system, job


def _send_all(settings: ChurnSettings, system: DaietSystem) -> None:
    partitions = _partitions(settings)
    for mapper in MAPPERS:
        system.send_pairs(mapper, REDUCER, partitions[mapper])


def _truth(settings: ChurnSettings) -> dict[str, int]:
    partitions = _partitions(settings)
    return aggregate_pairs(
        [pair for mapper in MAPPERS for pair in partitions[mapper]], SUM
    )


def _tree_spine(system: DaietSystem, reducer: str = REDUCER) -> str:
    """The single spine switch the reducer's tree traverses."""
    tree = system.tree_for(reducer)
    spines = sorted(
        node.name for node in tree.switches() if node.name.startswith("spine")
    )
    if len(spines) != 1:
        raise ReproError(f"expected one tree spine, found {spines}")
    return spines[0]


def _trunk_links(system: DaietSystem) -> list[tuple[str, str]]:
    """Switch-to-switch links (the flap targets), in deterministic order."""
    hosts = {host.name for host in system.topology.hosts()}
    return sorted(
        (link.a.device, link.b.device)
        for link in system.topology.links
        if link.a.device not in hosts and link.b.device not in hosts
    )


def _arm(
    name: str,
    system: DaietSystem,
    truth: dict[str, int],
    reducer: str = REDUCER,
) -> ArmResult:
    receiver = system.receiver(reducer)
    received = receiver.result()
    return ArmResult(
        name=name,
        exact=receiver.done and received == truth,
        done=receiver.done,
        keys=len(received),
        value_deficit=sum(truth.values()) - sum(received.values()),
        sim_seconds=system.simulator.now,
        fault_drops=system.simulator.stats.total_fault_drops(),
    )


@dataclass
class _Baseline:
    """Fault-free reference shared by the fault-schedule scenarios."""

    truth: dict[str, int]
    sim_seconds: float
    arm: ArmResult
    events: int
    link_packets: int


def run_fault_free(settings: ChurnSettings) -> _Baseline:
    """The fault-free run: ground truth and the timing base for schedules."""
    system, _job = _build(settings)
    truth = _truth(settings)
    _send_all(settings, system)
    events = system.run()
    arm = _arm("fault-free", system, truth)
    if not arm.exact:
        raise ReproError("the fault-free churn baseline diverged from ground truth")
    return _Baseline(
        truth=truth,
        sim_seconds=system.simulator.now,
        arm=arm,
        events=events,
        link_packets=system.simulator.stats.total_link_packets(),
    )


# ---------------------------------------------------------------------- #
# Scenarios
# ---------------------------------------------------------------------- #
def run_spine_kill(
    settings: ChurnSettings, baseline: _Baseline | None = None
) -> ScenarioResult:
    """Crash the tree's spine mid-round; compare static vs failover."""
    baseline = baseline or run_fault_free(settings)
    crash_time = settings.crash_fraction * baseline.sim_seconds
    result = ScenarioResult(scenario="spine-kill", arms=[baseline.arm])
    result.events += baseline.events
    result.link_packets += baseline.link_packets

    # Static arm: no failover manager; the crash is absorbed as a bounded
    # deficit (reliability on terminates via the reducer's pull give-up).
    system, _job = _build(settings)
    spine = _tree_spine(system)
    install_faults(system.simulator, FaultPlan().switch_crash(crash_time, spine))
    _send_all(settings, system)
    result.events += system.run()
    result.link_packets += system.simulator.stats.total_link_packets()
    result.arms.append(_arm("static", system, baseline.truth))

    # Recover arm: heartbeat detection, reroute, re-plan, replay.
    system, _job = _build(settings)
    spine = _tree_spine(system)
    injector = install_faults(
        system.simulator, FaultPlan().switch_crash(crash_time, spine)
    )
    manager = FailoverManager(
        system,
        injector,
        FailoverConfig(
            heartbeat_interval=settings.heartbeat_interval,
            max_ticks=settings.max_heartbeat_ticks,
        ),
    )
    manager.start()
    _send_all(settings, system)
    result.events += system.run()
    result.link_packets += system.simulator.stats.total_link_packets()
    result.arms.append(_arm("recover", system, baseline.truth))
    result.control_log = list(manager.log)
    result.fault_log = list(injector.log)
    result.notes.append(f"crashed {spine} at t={crash_time:.6f}")
    return result


def run_flap(
    settings: ChurnSettings, baseline: _Baseline | None = None
) -> ScenarioResult:
    """Seeded random trunk-link flaps, swept over ``settings.flap_seeds``."""
    baseline = baseline or run_fault_free(settings)
    start = settings.flap_start_fraction * baseline.sim_seconds
    window = settings.flap_window_fraction * baseline.sim_seconds
    duration = settings.flap_duration_fraction * baseline.sim_seconds
    result = ScenarioResult(scenario="flap", arms=[baseline.arm])
    result.events += baseline.events
    result.link_packets += baseline.link_packets
    for seed in settings.flap_seeds:
        system, _job = _build(settings)
        plan = FaultPlan.random_flaps(
            _trunk_links(system),
            seed=seed,
            count=settings.flap_count,
            start=start,
            window=window,
            duration=duration,
        )
        injector = install_faults(system.simulator, plan)
        _send_all(settings, system)
        result.events += system.run()
        result.link_packets += system.simulator.stats.total_link_packets()
        arm = _arm(f"flap seed={seed}", system, baseline.truth)
        result.arms.append(arm)
        result.notes.append(
            f"seed {seed}: {len(plan.sorted_events())} flap events, "
            f"{arm.fault_drops} gated drops"
        )
        result.fault_log.extend(
            (when, f"[seed {seed}] {entry}") for when, entry in injector.log
        )
    return result


def run_straggler(
    settings: ChurnSettings, baseline: _Baseline | None = None
) -> ScenarioResult:
    """Slow the tree spine's uplinks; recover by rebalancing off it."""
    baseline = baseline or run_fault_free(settings)
    slow_time = settings.slowdown_fraction * baseline.sim_seconds
    result = ScenarioResult(scenario="straggler", arms=[baseline.arm])
    result.events += baseline.events
    result.link_packets += baseline.link_packets

    def _plan(spine: str) -> FaultPlan:
        plan = FaultPlan()
        for leaf in ("leaf0", "leaf1"):
            plan.slowdown(slow_time, leaf, spine, factor=settings.slowdown_factor)
        return plan

    # Static arm: the round crawls through the slow spine.
    system, _job = _build(settings)
    spine = _tree_spine(system)
    install_faults(system.simulator, _plan(spine))
    _send_all(settings, system)
    result.events += system.run()
    result.link_packets += system.simulator.stats.total_link_packets()
    result.arms.append(_arm("static", system, baseline.truth))

    # Recover arm: the injector observer stands in for slowdown telemetry;
    # the first report triggers a rebalance off the straggling spine.
    system, job = _build(settings)
    spine = _tree_spine(system)
    injector = install_faults(system.simulator, _plan(spine))
    manager = FailoverManager(system, injector)
    rebalanced: list[str] = []

    def _on_fault(event) -> None:
        if event.kind == SLOWDOWN_START and not rebalanced:
            rebalanced.append(spine)
            manager.move_tree(job, REDUCER, exclude={spine})

    injector.observers.append(_on_fault)
    _send_all(settings, system)
    result.events += system.run()
    result.link_packets += system.simulator.stats.total_link_packets()
    result.arms.append(_arm("recover", system, baseline.truth))
    result.control_log = list(manager.log)
    result.fault_log = list(injector.log)
    result.notes.append(
        f"slowed {spine} uplinks x{settings.slowdown_factor:g} at t={slow_time:.6f}"
    )
    return result


def run_hotspot(settings: ChurnSettings) -> ScenarioResult:
    """Concentrate two trees on one spine; detect and rebalance online."""
    system = DaietSystem(_fabric(), settings.daiet_config(), SimulatorConfig())
    job = system.install_job(
        mappers=list(HOTSPOT_MAPPERS), reducers=list(HOTSPOT_REDUCERS)
    )
    injector = install_faults(system.simulator, FaultPlan())
    manager = FailoverManager(system, injector)
    # Naive placement: both trees forced onto spine0 (the hotspot).
    for reducer in HOTSPOT_REDUCERS:
        manager.move_tree(job, reducer, exclude={"spine1"})

    def _on_hotspot(event: HotspotEvent) -> None:
        # Rebalance only while the hot switch carries more than one tree:
        # a single tree's traffic legitimately dominates its own spine, and
        # moving it would just ping-pong the load between spines.
        on_hot = sorted(
            reducer
            for reducer in job.trees
            if event.switch in job.trees[reducer].nodes
        )
        if len(on_hot) > 1:
            manager.move_tree(job, on_hot[0], exclude={event.switch})

    detector = HotspotDetector(
        system.simulator,
        ["spine0", "spine1"],
        HotspotConfig(
            sample_interval=settings.hotspot_sample_interval,
            share_threshold=settings.hotspot_share_threshold,
            min_window_packets=settings.hotspot_min_window_packets,
            max_samples=settings.hotspot_max_samples,
        ),
        on_hotspot=_on_hotspot,
    )
    detector.start()

    pairs = [(f"w{i}", i + 1) for i in range(settings.hotspot_pairs)]
    truth = aggregate_pairs(pairs + pairs, SUM)  # both mappers send the same
    for mapper in HOTSPOT_MAPPERS:
        for reducer in HOTSPOT_REDUCERS:
            system.send_pairs(mapper, reducer, pairs)
    events = system.run()

    result = ScenarioResult(
        scenario="hotspot",
        events=events,
        link_packets=system.simulator.stats.total_link_packets(),
    )
    for reducer in HOTSPOT_REDUCERS:
        result.arms.append(_arm(f"hotspot {reducer}", system, truth, reducer))
    result.control_log = list(manager.log)
    for event in detector.events[:4]:
        result.notes.append(event.describe())
    if len(detector.events) > 4:
        result.notes.append(f"... {len(detector.events)} hotspot events total")
    shares = detector.shares()
    result.notes.append(
        "cumulative shares: "
        + " ".join(f"{name}={share:.3f}" for name, share in sorted(shares.items()))
    )
    return result


# ---------------------------------------------------------------------- #
# Driver and report
# ---------------------------------------------------------------------- #
def run_churn(
    settings: ChurnSettings | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> ChurnResult:
    """Run the selected scenarios and render the churn report."""
    settings = settings or ChurnSettings()
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        raise ReproError(f"unknown churn scenarios: {unknown}")
    result = ChurnResult(settings=settings)
    baseline: _Baseline | None = None
    if any(name != "hotspot" for name in scenarios):
        baseline = run_fault_free(settings)
    runners = {
        "spine-kill": lambda: run_spine_kill(settings, baseline),
        "flap": lambda: run_flap(settings, baseline),
        "straggler": lambda: run_straggler(settings, baseline),
        "hotspot": lambda: run_hotspot(settings),
    }
    for name in SCENARIOS:
        if name in scenarios:
            result.results[name] = runners[name]()
    if settings.reliability and not result.recovery_exact:
        raise ReproError(
            "a reliability-on churn arm diverged from the fault-free aggregate"
        )
    result.report = _render_report(result)
    return result


def _render_report(result: ChurnResult) -> str:
    settings = result.settings
    mode = "ON (replay retained)" if settings.reliability else "OFF (degraded mode)"
    lines = [
        "Fault-churn scenarios (2x2 leaf-spine, crash/flap/straggler/hotspot)",
        "",
        f"Reliability {mode}; {settings.keys_per_mapper} keys/mapper; "
        f"heartbeat {settings.heartbeat_interval * 1e6:.0f} us.",
        "deficit = ground-truth value mass minus received value mass "
        "(0 = bit-exact; positive = bounded degradation, never corruption).",
    ]
    for name, scenario in result.results.items():
        lines.append("")
        lines.append(f"== {name} ==")
        header = (
            f"{'arm':>14s} {'exact':>6s} {'done':>5s} {'keys':>6s} "
            f"{'deficit':>8s} {'sim-us':>10s} {'drops':>6s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for arm in scenario.arms:
            lines.append(
                f"{arm.name:>14s} {'yes' if arm.exact else 'NO':>6s} "
                f"{'yes' if arm.done else 'NO':>5s} {arm.keys:>6d} "
                f"{arm.value_deficit:>8d} {arm.sim_seconds * 1e6:>10.3f} "
                f"{arm.fault_drops:>6d}"
            )
        for note in scenario.notes:
            lines.append(f"  note: {note}")
        if scenario.fault_log:
            lines.append("  fault log:")
            for _when, entry in scenario.fault_log:
                lines.append(f"    {entry}")  # describe() embeds the time
        if scenario.control_log:
            lines.append("  control-plane log:")
            for when, entry in scenario.control_log:
                lines.append(f"    t={when:.6f} {entry}")
    lines.append("")
    if settings.reliability:
        verdict = (
            "every recovery and ride-through arm bit-identical to fault-free"
            if result.recovery_exact
            else "SOME RECOVERY ARMS DIVERGED"
        )
    else:
        verdict = (
            "reliability off: deficits above are bounded and reported, "
            "re-run with --reliability for bit-exact recovery"
        )
    lines.append(f"Verdict: {verdict}.")
    return "\n".join(lines)
