"""Exactness-vs-overhead sweep for degraded-mode (approximate) aggregation.

SAP's selective-reliability idea, applied to DAIET: not every aggregate is
worth exact recovery. This experiment sweeps ``loss rate x reliability
policy x workload class`` and reports, per arm, what the policy saves
(link bytes, ACKs, retransmissions) and what it costs (a *reported*,
a-posteriori error bound from :mod:`repro.analysis.error_bounds`, checked
for containment against the exact ground truth of a twin computation).

Workload classes exercise the per-class policy matrix:

* **wordcount** — the exact-only gate: a counting job whose answer must be
  bit-identical, so the sweep pins it to the ``exact`` policy at every
  loss rate regardless of the swept arm;
* **sgd_gradients** — quantized sparse gradient pushes (signed values),
  the class that tolerates approximation best; bounds are reported both
  absolute and relative to the injected L1 mass;
* **pagerank** — rank-contribution pairs (positive values), the graph
  analytics class.

A convergence-impact section quantifies the *application*-level cost of
dropped contributions: extra SGD steps (:func:`repro.mlsys.training.
measure_convergence_impact`) and extra Pregel supersteps / state error
(:func:`repro.graph.pregel.measure_convergence_impact`) against exact twin
runs sharing every seed.

Verdict gates (enforced by the tier-1 quick test and the benchmark):

* at the 1% loss arm, ``sampled`` and ``best_effort`` spend fewer link
  bytes than ``exact`` on every non-gated workload;
* every non-exact aggregate's reported bound contains its true L1 error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.error_bounds import (
    TreeErrorBound,
    install_error_tracker,
    true_error_l1,
)
from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.errors import ReproError
from repro.graph.generators import random_graph
from repro.graph.algorithms.pagerank import PageRankProgram
from repro.graph.pregel import (
    GraphConvergenceImpact,
    measure_convergence_impact as graph_convergence_impact,
)
from repro.mlsys.training import (
    ConvergenceImpact,
    TrainingConfig,
    measure_convergence_impact as training_convergence_impact,
)
from repro.netsim.simulator import SimulatorConfig
from repro.netsim.topology import Topology

#: Reliability policies swept (in report order).
POLICIES = ("exact", "sampled", "best_effort")

#: The loss arm the byte-saving verdict gate is evaluated at.
GATE_LOSS_RATE = 0.01


@dataclass
class ApproxSweepSettings:
    """Scale and protocol knobs for the approximation sweep."""

    loss_rates: tuple[float, ...] = (0.001, 0.01, 0.05)
    num_workers: int = 8
    wordcount_pairs_per_worker: int = 400
    vocabulary_size: int = 300
    ml_params: int = 400
    ml_updates_per_worker: int = 150
    pagerank_vertices: int = 300
    pagerank_contribs_per_worker: int = 150
    register_slots: int = 256
    pairs_per_packet: int = 10
    retransmit_timeout: float = 1e-4
    ack_window: int = 8
    sampled_ack_stride: int = 4
    max_retransmits: int = 30
    loss_seed: int = 17
    seed: int = 2017
    #: Drop rate fed to the application-level convergence-impact twins.
    impact_drop_rate: float = 0.05
    sgd_steps: int = 30
    sgd_workers: int = 3
    pregel_vertices: int = 60
    pregel_edges: int = 150
    pagerank_iterations: int = 10

    def quick(self) -> "ApproxSweepSettings":
        """A fast variant used by unit tests and smoke runs."""
        return ApproxSweepSettings(
            loss_rates=(GATE_LOSS_RATE,),
            num_workers=4,
            wordcount_pairs_per_worker=120,
            vocabulary_size=80,
            ml_params=120,
            ml_updates_per_worker=60,
            pagerank_vertices=100,
            pagerank_contribs_per_worker=60,
            register_slots=64,
            pairs_per_packet=self.pairs_per_packet,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            sampled_ack_stride=self.sampled_ack_stride,
            max_retransmits=self.max_retransmits,
            loss_seed=self.loss_seed,
            seed=self.seed,
            impact_drop_rate=self.impact_drop_rate,
            sgd_steps=10,
            sgd_workers=3,
            pregel_vertices=30,
            pregel_edges=60,
            pagerank_iterations=6,
        )

    def daiet_config(self, policy: str) -> DaietConfig:
        """The DAIET configuration of one policy arm."""
        return DaietConfig(
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            reliability=True,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
            reliability_policy=policy,
            sampled_ack_stride=self.sampled_ack_stride,
        )


@dataclass
class ApproxRun:
    """Metrics of one (workload, loss rate, policy) arm."""

    workload: str
    loss_rate: float
    policy: str
    completed: bool
    link_bytes: int
    acks: int
    retransmissions: int
    losses: int
    true_error: int
    bound: TreeErrorBound
    #: Whether the reported bound contains the realized L1 error.
    bound_contains: bool
    #: Link bytes relative to the exact arm at the same loss rate.
    bytes_vs_exact: float = 1.0
    #: Simulator events the arm processed (perf-bench accounting).
    events: int = 0
    #: Link-level packets the arm moved (perf-bench packet throughput).
    link_packets: int = 0


@dataclass
class ApproxSweepResult:
    """All arms of the sweep plus the rendered report."""

    settings: ApproxSweepSettings
    runs: list[ApproxRun] = field(default_factory=list)
    sgd_impact: ConvergenceImpact | None = None
    pagerank_impact: GraphConvergenceImpact | None = None
    report: str = ""

    def arm(self, workload: str, loss_rate: float, policy: str) -> ApproxRun:
        """One arm of the sweep, by coordinates."""
        for run in self.runs:
            if (
                run.workload == workload
                and run.loss_rate == loss_rate
                and run.policy == policy
            ):
                return run
        raise ReproError(
            f"no {workload!r} arm at loss {loss_rate} under policy {policy!r}"
        )

    @property
    def all_bounds_contain(self) -> bool:
        """True when every arm's reported bound covers its true error."""
        return all(run.bound_contains for run in self.runs)

    def savings_at_gate(self) -> dict[tuple[str, str], float]:
        """``bytes_vs_exact`` per (workload, non-exact policy) at the gate."""
        out: dict[tuple[str, str], float] = {}
        for run in self.runs:
            if run.loss_rate == GATE_LOSS_RATE and run.policy != "exact":
                out[(run.workload, run.policy)] = run.bytes_vs_exact
        return out

    @property
    def gate_holds(self) -> bool:
        """Every non-exact arm at the gate loss spends fewer bytes than exact."""
        savings = self.savings_at_gate()
        return bool(savings) and all(ratio < 1.0 for ratio in savings.values())


# ---------------------------------------------------------------------- #
# Workload inputs
# ---------------------------------------------------------------------- #
def _lossy_rack(num_hosts: int, loss_rate: float) -> Topology:
    """A single rack whose host uplinks drop packets in both directions."""
    topo = Topology(name=f"approx_rack_{loss_rate:g}")
    topo.add_switch("tor")
    for i in range(num_hosts):
        topo.add_host(f"h{i}")
        topo.connect(f"h{i}", "tor", loss_rate=loss_rate)
    topo.validate()
    return topo


def _wordcount_partitions(settings: ApproxSweepSettings) -> list[list[tuple[str, int]]]:
    rng = random.Random(settings.seed)
    vocabulary = [f"word{i:04d}" for i in range(settings.vocabulary_size)]
    return [
        [(rng.choice(vocabulary), 1) for _ in range(settings.wordcount_pairs_per_worker)]
        for _ in range(settings.num_workers)
    ]


def _gradient_partitions(settings: ApproxSweepSettings) -> list[list[tuple[str, int]]]:
    """Quantized sparse gradient pushes (signed values) per worker."""
    rng = random.Random(settings.seed + 1000)
    partitions = []
    for _worker in range(settings.num_workers):
        indices = rng.sample(range(settings.ml_params), settings.ml_updates_per_worker)
        partitions.append(
            [(f"w:{index}", rng.randint(-(2**20), 2**20)) for index in indices]
        )
    return partitions


def _pagerank_partitions(settings: ApproxSweepSettings) -> list[list[tuple[str, int]]]:
    """Rank-contribution pairs (positive fixed-point values) per worker."""
    rng = random.Random(settings.seed + 2000)
    partitions = []
    for _worker in range(settings.num_workers):
        partitions.append(
            [
                (f"v:{rng.randrange(settings.pagerank_vertices)}", rng.randint(1, 10_000))
                for _ in range(settings.pagerank_contribs_per_worker)
            ]
        )
    return partitions


def _truth(partitions: list[list[tuple[str, int]]]) -> dict[str, int]:
    truth: dict[str, int] = {}
    for partition in partitions:
        for key, value in partition:
            truth[key] = truth.get(key, 0) + value
    return truth


# ---------------------------------------------------------------------- #
# One arm
# ---------------------------------------------------------------------- #
def _run_arm(
    settings: ApproxSweepSettings,
    workload: str,
    partitions: list[list[tuple[str, int]]],
    truth: dict[str, int],
    loss_rate: float,
    policy: str,
) -> ApproxRun:
    system = DaietSystem(
        _lossy_rack(settings.num_workers + 1, loss_rate),
        settings.daiet_config(policy),
        SimulatorConfig(loss_seed=settings.loss_seed),
    )
    tracker = install_error_tracker(system)
    reducer = f"h{settings.num_workers}"
    mappers = [f"h{i}" for i in range(settings.num_workers)]
    system.install_job(mappers=mappers, reducers=[reducer], policy=policy)
    for mapper, pairs in zip(mappers, partitions):
        system.send_pairs(mapper, reducer, pairs)
    events = system.run()
    receiver = system.receiver(reducer)
    result = receiver.result()
    bound = tracker.bound(system.tree_for(reducer).tree_id)
    error = true_error_l1(truth, result)
    stats = system.simulator.stats
    rel = list(system.reliability_stats().values())
    engine_counters = [
        counters for _key, counters in system.controller.tree_counters().items()
    ]
    return ApproxRun(
        workload=workload,
        loss_rate=loss_rate,
        policy=policy,
        completed=receiver.done,
        link_bytes=stats.total_link_bytes(),
        acks=sum(s["acks_sent"] for s in rel)
        + sum(c.acks_sent for c in engine_counters),
        retransmissions=sum(s["retransmissions"] for s in rel)
        + sum(c.retransmitted_packets for c in engine_counters),
        losses=stats.total_losses(),
        true_error=error,
        bound=bound,
        bound_contains=bound.contains(error),
        events=events,
        link_packets=stats.total_link_packets(),
    )


# ---------------------------------------------------------------------- #
# The sweep
# ---------------------------------------------------------------------- #
def run_approx_sweep(settings: ApproxSweepSettings | None = None) -> ApproxSweepResult:
    """Sweep loss x policy x workload; report savings, bounds and impact."""
    settings = settings or ApproxSweepSettings()
    result = ApproxSweepResult(settings=settings)

    workloads: list[tuple[str, list[list[tuple[str, int]]], bool]] = [
        # (name, partitions, exact_only_gate)
        ("wordcount", _wordcount_partitions(settings), True),
        ("sgd_gradients", _gradient_partitions(settings), False),
        ("pagerank", _pagerank_partitions(settings), False),
    ]
    for workload, partitions, exact_only in workloads:
        truth = _truth(partitions)
        for loss_rate in settings.loss_rates:
            exact_arm = _run_arm(
                settings, workload, partitions, truth, loss_rate, "exact"
            )
            if not exact_arm.bound_contains or exact_arm.true_error != 0:
                raise ReproError(
                    f"the exact {workload} arm at loss {loss_rate} diverged "
                    "from ground truth"
                )
            result.runs.append(exact_arm)
            if exact_only:
                # The per-class policy gate: this traffic class is pinned to
                # exact reliability, no degraded arms are even attempted.
                continue
            for policy in POLICIES[1:]:
                run = _run_arm(
                    settings, workload, partitions, truth, loss_rate, policy
                )
                run.bytes_vs_exact = (
                    run.link_bytes / exact_arm.link_bytes
                    if exact_arm.link_bytes
                    else 0.0
                )
                result.runs.append(run)

    result.sgd_impact = training_convergence_impact(
        TrainingConfig(
            optimizer="sgd",
            batch_size=3,
            num_workers=settings.sgd_workers,
            num_steps=settings.sgd_steps,
            seed=settings.seed,
        ),
        drop_rate=settings.impact_drop_rate,
        drop_seed=settings.seed,
    )
    graph = random_graph(
        settings.pregel_vertices, settings.pregel_edges, seed=settings.seed
    )
    result.pagerank_impact = graph_convergence_impact(
        graph,
        lambda: PageRankProgram(num_iterations=settings.pagerank_iterations),
        drop_rate=settings.impact_drop_rate,
        max_supersteps=settings.pagerank_iterations + 1,
        drop_seed=settings.seed,
    )
    result.report = _render_report(result)
    return result


def _render_report(result: ApproxSweepResult) -> str:
    settings = result.settings
    lines = [
        "Approximation sweep: selective reliability vs bounded error",
        "",
        f"{settings.num_workers} mappers behind one switch; loss applied per "
        "direction on every host uplink.",
        "Policies: exact (full recovery), sampled (ACK every "
        f"{settings.ack_window}x{settings.sampled_ack_stride} packets, "
        "degrading give-up), best_effort (no seq/ACK/retransmit at all).",
        "wordcount is pinned to the exact policy (counting must be "
        "bit-identical); bytes-vs-exact compares each arm to the exact arm "
        "at the same loss rate.",
        "Bounds are a-posteriori L1 deficits (lost + crash-wiped + stranded "
        "register mass); 'contains' checks the bound against the realized "
        "error of the exact twin computation. Sampled bounds are "
        "conservative: recovered retransmissions are never subtracted.",
        "",
    ]
    header = (
        f"{'workload':<14s} {'loss':>6s} {'policy':<12s} {'done':>5s} "
        f"{'acks':>6s} {'retr':>6s} {'link-KB':>8s} {'vs-exact':>9s} "
        f"{'true-err':>10s} {'bound':>10s} {'rel':>7s} {'contains':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for run in result.runs:
        bound = run.bound
        lines.append(
            f"{run.workload:<14s} {run.loss_rate:>6.1%} {run.policy:<12s} "
            f"{'yes' if run.completed else 'no':>5s} {run.acks:>6d} "
            f"{run.retransmissions:>6d} {run.link_bytes / 1024:>8.1f} "
            f"{run.bytes_vs_exact:>8.2f}x {run.true_error:>10d} "
            f"{bound.abs_bound:>10d} {bound.relative_bound:>6.1%} "
            f"{'yes' if run.bound_contains else 'NO':>9s}"
        )
    lines.append("")
    lines.append("Convergence impact of dropped contributions "
                 f"(drop rate {settings.impact_drop_rate:.1%}, exact twins "
                 "share every seed):")
    sgd = result.sgd_impact
    if sgd is not None:
        extra = "never reached target" if sgd.extra_steps is None else f"{sgd.extra_steps} extra steps"
        lines.append(
            f"  sgd: {sgd.updates_dropped} updates dropped "
            f"({sgd.dropped_fraction:.1%}), loss gap at horizon "
            f"{sgd.loss_gap:+.4f}, {extra} to reach the exact final loss"
        )
    pr = result.pagerank_impact
    if pr is not None:
        lines.append(
            f"  pagerank: {pr.messages_dropped} messages dropped, "
            f"{pr.extra_supersteps} extra supersteps, final state L1 error "
            f"{pr.state_l1_error:.6f}"
        )
    lines.append("")
    savings = result.savings_at_gate()
    for (workload, policy), ratio in sorted(savings.items()):
        lines.append(
            f"Gate {GATE_LOSS_RATE:.1%} {workload}/{policy}: "
            f"{ratio:.2f}x exact bytes ({'saves' if ratio < 1.0 else 'COSTS'})"
        )
    verdict_bytes = (
        "every degraded arm undercuts exact at the gate loss"
        if result.gate_holds
        else "SOME DEGRADED ARM SPENT MORE BYTES THAN EXACT AT THE GATE LOSS"
    )
    verdict_bounds = (
        "every reported bound contains its true error"
        if result.all_bounds_contain
        else "SOME BOUND FAILED TO CONTAIN THE TRUE ERROR"
    )
    lines.append(f"Verdict: {verdict_bytes}; {verdict_bounds}.")
    return "\n".join(lines)
