"""Cluster-scale scenario: in-network aggregation from 16 to 1024 workers.

The paper's pitch is that in-network aggregation pays off at rack and cluster
scale, yet its evaluation (and this reproduction's other figures) runs a
dozen workers behind one switch. This experiment sweeps the worker count up
to 256 (1024 via ``repro scale --workers 1024``) on multi-switch fabrics — a
two-tier leaf-spine by default, a k-ary fat-tree optionally — with lossy
host uplinks and the PR 1 reliability layer enabled, and checks that every
run still produces the bit-exact aggregate.

``--compare-baselines`` additionally replays the identical workload over the
two non-aggregating baselines, both with reliability on so every path stays
bit-exact over the same lossy links:

* **UDP baseline** — DAIET-sized datagrams over the reliable datagram layer
  (:class:`~repro.transport.udp.ReliableUdpTransport`); switches only
  forward (the compiled forwarding fast path), the reducer aggregates.
* **TCP baseline** — MSS-sized segments over the same reliable layer
  (modelling TCP's ACK/retransmission machinery); the reducer aggregates.

These scenarios were previously infeasible in reasonable wall-clock time;
the fast-path simulator core plus the calendar-queue scheduler, one-BFS-per-
destination routing and burst injection (see ``src/repro/netsim/README.md``)
make them routine, and the report includes the measured events/sec so scale
runs double as a coarse perf canary.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.errors import ReproError
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.devices import Host
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology, fat_tree, leaf_spine
from repro.transport.packets import MessagePayload
from repro.transport.udp import ReliableUdpTransport
from repro.transport.window import TransportTuning

#: Worker counts swept by the paper-scale run.
DEFAULT_WORKER_COUNTS = (16, 64, 128, 256)

#: Destination port of the baseline shuffle streams.
BASELINE_PORT = 9090

#: Bytes per (key, value) pair on a baseline datagram (mirrors the DAIET
#: fixed-width pair encoding).
BASELINE_PAIR_BYTES = 20

#: Effective TCP segment payload for the TCP-like baseline (matches the
#: figure3 container-testbed observation).
BASELINE_TCP_SEGMENT_BYTES = 1024


@dataclass
class ScaleSettings:
    """Scale and protocol knobs for the cluster-scale sweep."""

    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS
    #: Also run the UDP/TCP baselines (reliability on) for comparison.
    compare_baselines: bool = False
    #: ``"leaf_spine"`` (default) or ``"fat_tree"``.
    fabric: str = "leaf_spine"
    #: Leaf-spine dimensioning (ignored for fat-tree).
    workers_per_leaf: int = 16
    spines: int = 4
    #: Fat-tree arity; hosts = k^3/4 must cover workers + 1 reducer.
    fat_tree_k: int = 8
    #: Per-direction drop probability on every host uplink.
    loss_rate: float = 0.001
    #: Wordcount-shaped workload per worker.
    pairs_per_worker: int = 400
    vocabulary_size: int = 4_000
    register_slots: int = 16 * 1024
    pairs_per_packet: int = 10
    retransmit_timeout: float = 1e-4
    ack_window: int = 8
    max_retransmits: int = 30
    #: RTO floor of the host-to-host baselines. DAIET's hop reliability
    #: keeps per-hop RTTs tiny, but the baselines funnel the whole
    #: cluster's traffic into one reducer NIC, so their end-to-end RTT
    #: includes the full incast backlog: an RTO below the transfer duration
    #: would retransmit spuriously (a go-back-N storm), which no sane TCP
    #: stack does. The 2 ms default models a TCP-like minimum RTO at this
    #: scale and keeps prior reports byte-identical.
    rto_floor: float = 2e-3
    loss_seed: int = 17
    seed: int = 2017

    def quick(self) -> "ScaleSettings":
        """A fast variant used by unit tests and smoke runs."""
        return ScaleSettings(
            worker_counts=(8, 16),
            compare_baselines=self.compare_baselines,
            fabric=self.fabric,
            workers_per_leaf=4,
            spines=2,
            fat_tree_k=4,
            loss_rate=self.loss_rate,
            pairs_per_worker=120,
            vocabulary_size=300,
            register_slots=1024,
            pairs_per_packet=self.pairs_per_packet,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
            rto_floor=self.rto_floor,
            loss_seed=self.loss_seed,
            seed=self.seed,
        )

    def daiet_config(self) -> DaietConfig:
        """The DAIET configuration implied by these settings."""
        return DaietConfig(
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            reliability=True,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
        )


@dataclass
class BaselineRun:
    """Measurements of one baseline (non-aggregating) run at one scale."""

    transport: str
    workers: int
    exact: bool
    events: int
    wall_seconds: float
    events_per_sec: float
    link_packets: int
    link_bytes: int
    losses: int
    retransmissions: int
    reducer_packets: int
    sim_seconds: float


@dataclass
class ScaleRun:
    """Measurements of one (fabric, worker count) run."""

    workers: int
    fabric: str
    switches: int
    hosts: int
    exact: bool
    events: int
    wall_seconds: float
    events_per_sec: float
    link_packets: int
    link_bytes: int
    losses: int
    retransmissions: int
    duplicates_filtered: int
    sim_seconds: float
    #: Packets received at the reducer NIC (baseline-comparison metric).
    reducer_packets: int = 0
    #: Baseline runs keyed by transport name (``--compare-baselines`` only).
    baselines: dict[str, BaselineRun] = field(default_factory=dict)


@dataclass
class ScaleResult:
    """All runs of the sweep plus the rendered report."""

    settings: ScaleSettings
    runs: list[ScaleRun] = field(default_factory=list)
    report: str = ""

    @property
    def all_exact(self) -> bool:
        """True when every run reproduced the lossless ground truth."""
        return all(run.exact for run in self.runs)

    def run_at(self, workers: int) -> ScaleRun:
        """The run for one swept worker count."""
        for run in self.runs:
            if run.workers == workers:
                return run
        raise ReproError(f"no scale run with {workers} workers")


# ---------------------------------------------------------------------- #
# Topology and workload
# ---------------------------------------------------------------------- #
def _build_fabric(settings: ScaleSettings, num_workers: int) -> Topology:
    """A multi-switch fabric with ``num_workers`` + 1 (reducer) hosts."""
    num_hosts = num_workers + 1
    if settings.fabric == "leaf_spine":
        per_leaf = settings.workers_per_leaf
        num_leaves = -(-num_hosts // per_leaf)  # ceil division
        topo = leaf_spine(
            num_leaves=num_leaves,
            num_spines=settings.spines,
            hosts_per_leaf=per_leaf,
            host_prefix="h",
        )
    elif settings.fabric == "fat_tree":
        k = settings.fat_tree_k
        while (k**3) // 4 < num_hosts:
            k += 2
        topo = fat_tree(k)
    else:
        raise ReproError(f"unknown fabric {settings.fabric!r}")
    if settings.loss_rate:
        for link in topo.links:
            if isinstance(topo.get(link.a.device), Host) or isinstance(
                topo.get(link.b.device), Host
            ):
                link.loss_rate = settings.loss_rate
    return topo


def _worker_partitions(
    settings: ScaleSettings, num_workers: int
) -> list[list[tuple[str, int]]]:
    """Deterministic wordcount-shaped map output, one partition per worker."""
    rng = random.Random(settings.seed)
    vocabulary = [f"word{i:05d}" for i in range(settings.vocabulary_size)]
    return [
        [(rng.choice(vocabulary), 1) for _ in range(settings.pairs_per_worker)]
        for _ in range(num_workers)
    ]


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
def run_scale_once(settings: ScaleSettings, num_workers: int) -> ScaleRun:
    """One reliability-on aggregation round with ``num_workers`` mappers."""
    partitions = _worker_partitions(settings, num_workers)
    truth = aggregate_pairs(
        [pair for partition in partitions for pair in partition], SUM
    )
    topology = _build_fabric(settings, num_workers)
    system = DaietSystem(
        topology,
        settings.daiet_config(),
        SimulatorConfig(loss_seed=settings.loss_seed),
    )
    reducer = "h0"
    mappers = [f"h{i}" for i in range(1, num_workers + 1)]
    system.install_job(mappers=mappers, reducers=[reducer])
    for mapper, pairs in zip(mappers, partitions):
        system.send_pairs(mapper, reducer, pairs)

    start = time.perf_counter()
    events = system.run()
    wall = time.perf_counter() - start

    receiver = system.receiver(reducer)
    exact = receiver.done and receiver.result() == truth
    stats = system.simulator.stats
    engine_counters = list(system.controller.tree_counters().values())
    reliability = system.reliability_stats().values()
    return ScaleRun(
        workers=num_workers,
        fabric=settings.fabric,
        switches=len(topology.switches()),
        hosts=len(topology.hosts()),
        exact=exact,
        events=events,
        wall_seconds=wall,
        events_per_sec=events / wall if wall > 0 else 0.0,
        link_packets=stats.total_link_packets(),
        link_bytes=stats.total_link_bytes(),
        losses=stats.total_losses(),
        retransmissions=sum(s["retransmissions"] for s in reliability)
        + sum(c.retransmitted_packets for c in engine_counters),
        duplicates_filtered=sum(c.duplicate_packets for c in engine_counters),
        sim_seconds=system.simulator.now,
        reducer_packets=system.simulator.host(reducer).counters.packets_received,
    )


def _chunked(pairs: list[tuple[str, int]], size: int) -> list[list[tuple[str, int]]]:
    return [pairs[i : i + size] for i in range(0, len(pairs), size)]


def run_baseline_once(
    settings: ScaleSettings, num_workers: int, transport: str
) -> BaselineRun:
    """One non-aggregating shuffle round over the reliable datagram layer.

    ``transport`` selects the framing: ``"udp"`` ships DAIET-sized datagrams
    (``pairs_per_packet`` pairs each); ``"tcp"`` ships MSS-sized segments —
    both with ACK/retransmission reliability so the run is bit-exact over the
    same lossy fabric the DAIET run uses. Switches only forward (no
    aggregation trees are installed), exercising the compiled forwarding
    path; the reducer host performs the whole aggregation.
    """
    if transport == "udp":
        pairs_per_packet = settings.pairs_per_packet
    elif transport == "tcp":
        pairs_per_packet = BASELINE_TCP_SEGMENT_BYTES // BASELINE_PAIR_BYTES
    else:
        raise ReproError(f"unknown baseline transport {transport!r}")
    partitions = _worker_partitions(settings, num_workers)
    truth = aggregate_pairs(
        [pair for partition in partitions for pair in partition], SUM
    )
    topology = _build_fabric(settings, num_workers)
    simulator = NetworkSimulator(
        topology, SimulatorConfig(loss_seed=settings.loss_seed)
    )
    reliable = ReliableUdpTransport(
        simulator,
        retransmit_timeout=settings.retransmit_timeout,
        ack_window=settings.ack_window,
        max_retransmits=settings.max_retransmits,
        tuning=TransportTuning(rto_floor=settings.rto_floor),
    )
    reducer = "h0"
    aggregate: dict[str, int] = {}

    def on_message(_src: str, payload: MessagePayload) -> None:
        if payload.kind != "pairs":
            return
        for key, value in payload.data:
            aggregate[key] = aggregate.get(key, 0) + value

    reliable.listen_reliable(reducer, BASELINE_PORT, on_message)
    mappers = [f"h{i}" for i in range(1, num_workers + 1)]
    for mapper, pairs in zip(mappers, partitions):
        for chunk in _chunked(pairs, pairs_per_packet):
            reliable.send_reliable(
                mapper,
                reducer,
                MessagePayload(kind="pairs", data=chunk),
                len(chunk) * BASELINE_PAIR_BYTES,
                port=BASELINE_PORT,
            )

    start = time.perf_counter()
    events = simulator.run()
    wall = time.perf_counter() - start

    delivered = all(
        reliable.flow_done(mapper, reducer, BASELINE_PORT) for mapper in mappers
    )
    exact = delivered and aggregate == truth
    stats = simulator.stats
    return BaselineRun(
        transport=transport,
        workers=num_workers,
        exact=exact,
        events=events,
        wall_seconds=wall,
        events_per_sec=events / wall if wall > 0 else 0.0,
        link_packets=stats.total_link_packets(),
        link_bytes=stats.total_link_bytes(),
        losses=stats.total_losses(),
        retransmissions=reliable.stats.retransmissions,
        reducer_packets=simulator.host(reducer).counters.packets_received,
        sim_seconds=simulator.now,
    )


def run_scale(settings: ScaleSettings | None = None) -> ScaleResult:
    """Sweep the worker counts and render the scale report."""
    settings = settings or ScaleSettings()
    result = ScaleResult(settings=settings)
    for num_workers in settings.worker_counts:
        run = run_scale_once(settings, num_workers)
        if not run.exact:
            raise ReproError(
                f"the {num_workers}-worker {settings.fabric} run diverged from "
                "the lossless ground truth"
            )
        if settings.compare_baselines:
            for transport in ("udp", "tcp"):
                baseline = run_baseline_once(settings, num_workers, transport)
                if not baseline.exact:
                    raise ReproError(
                        f"the {num_workers}-worker {transport} baseline diverged "
                        "from the lossless ground truth"
                    )
                run.baselines[transport] = baseline
        result.runs.append(run)
    result.report = _render_report(result)
    return result


def _render_report(result: ScaleResult) -> str:
    settings = result.settings
    lines = [
        "Cluster-scale aggregation sweep (reliability on, lossy host uplinks)",
        "",
        f"Fabric: {settings.fabric}; loss {settings.loss_rate:.2%} per direction "
        f"on every host uplink; {settings.pairs_per_worker} pairs/worker over a "
        f"{settings.vocabulary_size}-word vocabulary.",
        "Every run is checked bit-exact against the lossless ground truth.",
        "",
    ]
    header = (
        f"{'workers':>8s} {'switches':>9s} {'exact':>6s} {'events':>9s} "
        f"{'wall-s':>8s} {'events/s':>10s} {'link-pkts':>10s} {'losses':>7s} "
        f"{'retrans':>8s} {'sim-ms':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for run in result.runs:
        lines.append(
            f"{run.workers:>8d} {run.switches:>9d} "
            f"{'yes' if run.exact else 'NO':>6s} {run.events:>9d} "
            f"{run.wall_seconds:>8.2f} {run.events_per_sec:>10,.0f} "
            f"{run.link_packets:>10d} {run.losses:>7d} "
            f"{run.retransmissions:>8d} {run.sim_seconds * 1e3:>8.2f}"
        )
    if settings.compare_baselines:
        lines.append("")
        lines.append(
            "Baseline comparison (identical workload and lossy fabric, "
            "reliability on for every path):"
        )
        header = (
            f"{'workers':>8s} {'path':>6s} {'exact':>6s} {'events':>9s} "
            f"{'wall-s':>8s} {'link-pkts':>10s} {'losses':>7s} {'retrans':>8s} "
            f"{'rx-pkts':>8s} {'pkt-reduction':>14s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for run in result.runs:
            lines.append(
                f"{run.workers:>8d} {'daiet':>6s} {'yes' if run.exact else 'NO':>6s} "
                f"{run.events:>9d} {run.wall_seconds:>8.2f} {run.link_packets:>10d} "
                f"{run.losses:>7d} {run.retransmissions:>8d} "
                f"{run.reducer_packets:>8d} {'-':>14s}"
            )
            for transport in ("udp", "tcp"):
                baseline = run.baselines.get(transport)
                if baseline is None:
                    continue
                reduction = (
                    1.0 - run.reducer_packets / baseline.reducer_packets
                    if baseline.reducer_packets
                    else 0.0
                )
                lines.append(
                    f"{baseline.workers:>8d} {transport:>6s} "
                    f"{'yes' if baseline.exact else 'NO':>6s} "
                    f"{baseline.events:>9d} {baseline.wall_seconds:>8.2f} "
                    f"{baseline.link_packets:>10d} {baseline.losses:>7d} "
                    f"{baseline.retransmissions:>8d} {baseline.reducer_packets:>8d} "
                    f"{reduction:>13.1%}"
                )
        lines.append(
            "pkt-reduction: fewer packets into the reducer with in-network "
            "aggregation vs the baseline."
        )
    lines.append("")
    verdict = (
        "all runs bit-identical to the lossless ground truth"
        if result.all_exact
        else "SOME RUNS DIVERGED FROM GROUND TRUTH"
    )
    lines.append(f"Verdict: {verdict}.")
    return "\n".join(lines)
