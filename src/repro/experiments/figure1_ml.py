"""Runner for Figure 1(a) and 1(b): tensor-update overlap under SGD and Adam.

Paper setup: a soft-max network trained on MNIST with one parameter server and
five workers; mini-batch 3 for SGD (Figure 1a) and 100 for Adam (Figure 1b);
the plotted metric is the per-step percentage of tensor elements updated by
more than one worker. Paper results: the overlap is roughly constant across
steps and averages ≈42.5% for SGD and ≈66.5% for Adam.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import render_series_table
from repro.mlsys.datasets import Dataset, generate_synthetic_mnist
from repro.mlsys.training import TrainingConfig, TrainingResult, DistributedTrainingJob

#: Paper-reported average overlaps, used in reports and shape assertions.
PAPER_SGD_OVERLAP_PERCENT = 42.5
PAPER_ADAM_OVERLAP_PERCENT = 66.5


@dataclass
class Figure1MlSettings:
    """Scale knobs for the Figure 1(a,b) runs."""

    num_steps: int = 200
    num_workers: int = 5
    sgd_batch_size: int = 3
    adam_batch_size: int = 100
    dataset_samples: int = 6_000
    seed: int = 2017

    def quick(self) -> "Figure1MlSettings":
        """A fast variant used by unit tests and smoke runs."""
        return Figure1MlSettings(
            num_steps=20,
            num_workers=self.num_workers,
            sgd_batch_size=self.sgd_batch_size,
            adam_batch_size=self.adam_batch_size,
            dataset_samples=2_000,
            seed=self.seed,
        )


@dataclass
class Figure1MlResult:
    """Both sub-figures plus the rendered report."""

    sgd: TrainingResult
    adam: TrainingResult
    settings: Figure1MlSettings
    report: str = ""
    paper_reference: dict[str, float] = field(
        default_factory=lambda: {
            "sgd": PAPER_SGD_OVERLAP_PERCENT,
            "adam": PAPER_ADAM_OVERLAP_PERCENT,
        }
    )

    def summary(self) -> dict[str, float]:
        """Average overlap per optimizer (the paper's headline numbers)."""
        return {
            "sgd_average_overlap_percent": self.sgd.average_overlap(),
            "adam_average_overlap_percent": self.adam.average_overlap(),
        }


def make_dataset(settings: Figure1MlSettings) -> Dataset:
    """The shared synthetic MNIST-like dataset for both runs."""
    return generate_synthetic_mnist(num_samples=settings.dataset_samples, seed=settings.seed)


def run_figure1a(settings: Figure1MlSettings | None = None, dataset: Dataset | None = None) -> TrainingResult:
    """Figure 1(a): SGD, mini-batch 3, five workers."""
    settings = settings or Figure1MlSettings()
    dataset = dataset or make_dataset(settings)
    config = TrainingConfig(
        optimizer="sgd",
        batch_size=settings.sgd_batch_size,
        num_workers=settings.num_workers,
        num_steps=settings.num_steps,
        seed=settings.seed,
    )
    return DistributedTrainingJob(config, dataset=dataset).run()


def run_figure1b(settings: Figure1MlSettings | None = None, dataset: Dataset | None = None) -> TrainingResult:
    """Figure 1(b): Adam, mini-batch 100, five workers."""
    settings = settings or Figure1MlSettings()
    dataset = dataset or make_dataset(settings)
    config = TrainingConfig(
        optimizer="adam",
        batch_size=settings.adam_batch_size,
        num_workers=settings.num_workers,
        num_steps=settings.num_steps,
        seed=settings.seed,
    )
    return DistributedTrainingJob(config, dataset=dataset).run()


def run_figure1_ml(settings: Figure1MlSettings | None = None) -> Figure1MlResult:
    """Run both sub-figures on the same dataset and render the report."""
    settings = settings or Figure1MlSettings()
    dataset = make_dataset(settings)
    sgd = run_figure1a(settings, dataset)
    adam = run_figure1b(settings, dataset)
    report = render_series_table(
        title=(
            "Figure 1(a,b): tensor-update overlap per step "
            f"(paper averages: SGD {PAPER_SGD_OVERLAP_PERCENT}%, "
            f"Adam {PAPER_ADAM_OVERLAP_PERCENT}%)"
        ),
        series={
            "SGD (mb=3)": [p / 100.0 for p in sgd.overlap.percentages()],
            "Adam (mb=100)": [p / 100.0 for p in adam.overlap.percentages()],
        },
        index_label="step",
    )
    return Figure1MlResult(sgd=sgd, adam=adam, settings=settings, report=report)
