"""Runner for Figure 3: WordCount over DAIET vs the TCP and UDP baselines.

Paper setup: 12 worker containers (two mappers and one reducer each) plus a
master behind a single bmv2 switch; a 500 MB random-words input with words of
at most 16 characters that do not collide in the switch hash; 16K register
slots; at most 10 pairs per DAIET packet. Figure 3 reports, per reducer:

* the reduction in the volume of intermediate data received (86.9%-89.3%),
* the reduction in the reduce-phase execution time (83.6% median),
* the reduction in the number of packets received vs the UDP baseline
  (88.1%-90.5%, median 90.5%) and vs the TCP baseline (median ≈42%).

The simulated runs are scaled down (the corpus size is configurable) but keep
the paper's ratios: the vocabulary-to-corpus ratio controls the achievable
reduction, and the effective TCP segment payload models the average segment
size observed on the paper's container testbed (TCP rarely ships full-MSS
segments for this write pattern; see DESIGN.md/EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import BoxplotStats, reduction_boxplot
from repro.analysis.reporting import render_boxplot_table
from repro.baselines.tcp_shuffle import TcpShuffle
from repro.baselines.udp_shuffle import UdpShuffle
from repro.core.config import DaietConfig
from repro.core.errors import ReproError
from repro.mapreduce.cluster import build_cluster, default_placement
from repro.mapreduce.job import JobResult
from repro.mapreduce.master import MapReduceMaster
from repro.mapreduce.shuffle import DaietShuffle, ShuffleTransport
from repro.mapreduce.wordcount import CorpusSpec, generate_corpus, make_wordcount_job

#: Paper-reported reduction bands, used in reports and shape assertions.
PAPER_DATA_VOLUME_REDUCTION = (0.869, 0.893)
PAPER_REDUCE_TIME_MEDIAN = 0.836
PAPER_PACKETS_VS_UDP = (0.881, 0.905)
PAPER_PACKETS_VS_TCP_MEDIAN = 0.42

#: Average effective TCP segment payload (bytes) observed for this write
#: pattern on container testbeds; full-MSS (1460 B) segments are rarely
#: achieved, which is why the paper still sees a ~42% packet reduction vs TCP.
EFFECTIVE_TCP_SEGMENT_BYTES = 1024


@dataclass
class Figure3Settings:
    """Scale knobs for the Figure 3 runs."""

    num_workers: int = 12
    num_mappers: int = 24
    num_reducers: int = 12
    total_words: int = 240_000
    vocabulary_size: int = 24_000
    seed: int = 2017
    register_slots: int = 16 * 1024
    pairs_per_packet: int = 10
    key_width: int = 16
    effective_tcp_mss: int = EFFECTIVE_TCP_SEGMENT_BYTES
    #: Run the DAIET transport with the end-host reliability layer enabled
    #: (sequence numbers, dedup windows, ACKs) — ``repro fig3 --reliability``.
    #: The job output must stay bit-identical; only traffic accounting for
    #: the DAIET path may change (ACKs crossing reducer NICs).
    reliability: bool = False

    def quick(self) -> "Figure3Settings":
        """A fast variant used by unit tests and smoke runs."""
        return Figure3Settings(
            num_workers=4,
            num_mappers=8,
            num_reducers=4,
            total_words=30_000,
            vocabulary_size=3_000,
            seed=self.seed,
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            key_width=self.key_width,
            effective_tcp_mss=self.effective_tcp_mss,
            reliability=self.reliability,
        )

    def daiet_config(self) -> DaietConfig:
        """The DAIET configuration implied by these settings."""
        return DaietConfig(
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            key_width=self.key_width,
            reliability=self.reliability,
        )

    def corpus_spec(self) -> CorpusSpec:
        """The corpus generator configuration implied by these settings."""
        return CorpusSpec(
            total_words=self.total_words,
            vocabulary_size=self.vocabulary_size,
            num_partitions=self.num_reducers,
            register_slots=self.register_slots,
            seed=self.seed,
        )


@dataclass
class Figure3Result:
    """Job results for every transport plus the derived reduction box plots."""

    settings: Figure3Settings
    daiet: JobResult
    tcp: JobResult
    udp: JobResult
    boxplots: dict[str, BoxplotStats] = field(default_factory=dict)
    report: str = ""

    def summary(self) -> dict[str, float]:
        """Median reductions (the numbers quoted in the paper's abstract)."""
        return {name: stats.median for name, stats in self.boxplots.items()}


def run_transport(
    settings: Figure3Settings,
    shuffle: ShuffleTransport,
    corpus_lines_splits: list[list[str]],
) -> JobResult:
    """Run the WordCount job once over one shuffle transport."""
    cluster = build_cluster(num_workers=settings.num_workers)
    spec = make_wordcount_job(
        num_mappers=settings.num_mappers,
        num_reducers=settings.num_reducers,
        daiet=settings.daiet_config(),
    )
    placement = default_placement(cluster, settings.num_mappers, settings.num_reducers)
    master = MapReduceMaster(cluster, spec, shuffle, placement)
    return master.run(corpus_lines_splits)


def run_figure3(settings: Figure3Settings | None = None) -> Figure3Result:
    """Run WordCount over DAIET and both baselines and compute the reductions."""
    settings = settings or Figure3Settings()
    corpus = generate_corpus(settings.corpus_spec())
    splits = corpus.splits(settings.num_mappers)
    config = settings.daiet_config()

    tcp_result = run_transport(settings, TcpShuffle(mss=settings.effective_tcp_mss), splits)
    udp_result = run_transport(settings, UdpShuffle(config=config), splits)
    daiet_result = run_transport(settings, DaietShuffle(config=config), splits)

    expected = corpus.word_counts()
    for result in (tcp_result, udp_result, daiet_result):
        if result.output != expected:
            raise ReproError(
                f"the {result.shuffle_mode} run produced an incorrect WordCount output"
            )

    boxplots = {
        "Data volume reduction (vs TCP)": reduction_boxplot(
            daiet_result, tcp_result, "payload_bytes_received"
        ),
        "Reduce time reduction (vs TCP)": reduction_boxplot(
            daiet_result, tcp_result, "reduce_seconds"
        ),
        "Packets reduction (vs UDP baseline)": reduction_boxplot(
            daiet_result, udp_result, "packets_received"
        ),
        "Packets reduction (vs TCP baseline)": reduction_boxplot(
            daiet_result, tcp_result, "packets_received"
        ),
    }
    report = render_boxplot_table(
        title="Figure 3: per-reducer reductions with DAIET in-network aggregation",
        rows=boxplots,
        paper_values={
            "Data volume reduction (vs TCP)": "86.9%-89.3%",
            "Reduce time reduction (vs TCP)": "median 83.6%",
            "Packets reduction (vs UDP baseline)": "88.1%-90.5%",
            "Packets reduction (vs TCP baseline)": "median ~42%",
        },
    )
    return Figure3Result(
        settings=settings,
        daiet=daiet_result,
        tcp=tcp_result,
        udp=udp_result,
        boxplots=boxplots,
        report=report,
    )
