"""Loss-sweep experiment: exact aggregation over lossy links.

The paper's evaluation runs on a lossless fabric and explicitly defers packet
loss ("we do not address the issue of packet losses, which we leave as future
work"). This experiment makes loss a first-class scenario dimension: it runs
a WordCount-shaped and an ML-training-shaped aggregation over a single rack
whose host uplinks drop packets with probability ``loss_rate`` in each
direction, with the end-host reliability layer enabled, and checks that every
run produces *bit-identical* aggregates to the lossless ground truth.

Alongside correctness it reports the price of reliability: retransmissions,
duplicates filtered at the switch, ACK traffic, and the total link-byte
overhead relative to the lossless, reliability-free baseline — the number the
benchmark gate keeps below 2x at 1% loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.errors import ReproError
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.simulator import SimulatorConfig
from repro.netsim.topology import Topology

#: The loss rates swept by the paper-scale run (0 = sanity baseline).
DEFAULT_LOSS_RATES = (0.0, 0.001, 0.01, 0.05)

#: Acceptance gate: total link bytes at 1% loss stay below this multiple of
#: the lossless, reliability-free baseline.
OVERHEAD_GATE_AT_1PCT = 2.0


@dataclass
class LossSweepSettings:
    """Scale and protocol knobs for the loss sweep."""

    loss_rates: tuple[float, ...] = DEFAULT_LOSS_RATES
    num_workers: int = 8
    wordcount_pairs_per_worker: int = 600
    vocabulary_size: int = 400
    ml_params: int = 400
    ml_updates_per_worker: int = 150
    ml_steps: int = 2
    register_slots: int = 256
    pairs_per_packet: int = 10
    retransmit_timeout: float = 1e-4
    ack_window: int = 8
    max_retransmits: int = 30
    loss_seed: int = 17
    seed: int = 2017

    def quick(self) -> "LossSweepSettings":
        """A fast variant used by unit tests and smoke runs."""
        return LossSweepSettings(
            loss_rates=(0.0, 0.01),
            num_workers=4,
            wordcount_pairs_per_worker=150,
            vocabulary_size=80,
            ml_params=120,
            ml_updates_per_worker=60,
            ml_steps=2,
            register_slots=64,
            pairs_per_packet=self.pairs_per_packet,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
            loss_seed=self.loss_seed,
            seed=self.seed,
        )

    def daiet_config(self, reliability: bool) -> DaietConfig:
        """The DAIET configuration implied by these settings."""
        return DaietConfig(
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            reliability=reliability,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
        )


@dataclass
class LossSweepRun:
    """Metrics of one (workload, loss rate) run."""

    workload: str
    loss_rate: float
    reliability: bool
    exact: bool
    completed: bool
    link_bytes: int
    link_packets: int
    losses: int
    retransmissions: int
    duplicates_filtered: int
    acks: int
    sim_seconds: float
    #: Link-byte cost relative to the lossless, reliability-free baseline.
    overhead: float = 0.0


@dataclass
class LossSweepResult:
    """All runs of the sweep plus the rendered report."""

    settings: LossSweepSettings
    baselines: dict[str, LossSweepRun] = field(default_factory=dict)
    runs: dict[str, list[LossSweepRun]] = field(default_factory=dict)
    report: str = ""

    @property
    def all_exact(self) -> bool:
        """True when every reliable run reproduced the lossless aggregate."""
        return all(run.exact for runs in self.runs.values() for run in runs)

    def overhead_at(self, workload: str, loss_rate: float) -> float:
        """Overhead ratio of one workload at one swept loss rate."""
        for run in self.runs.get(workload, []):
            if run.loss_rate == loss_rate:
                return run.overhead
        raise ReproError(f"no {workload!r} run at loss rate {loss_rate}")


# ---------------------------------------------------------------------- #
# Workload inputs
# ---------------------------------------------------------------------- #
def _lossy_rack(num_hosts: int, loss_rate: float) -> Topology:
    """A single rack whose host uplinks drop packets in both directions."""
    topo = Topology(name=f"lossy_rack_{loss_rate:g}")
    topo.add_switch("tor")
    for i in range(num_hosts):
        topo.add_host(f"h{i}")
        topo.connect(f"h{i}", "tor", loss_rate=loss_rate)
    topo.validate()
    return topo


def _wordcount_partitions(settings: LossSweepSettings) -> list[list[tuple[str, int]]]:
    """Raw (word, 1) streams per mapper, WordCount's map output shape."""
    rng = random.Random(settings.seed)
    vocabulary = [f"word{i:04d}" for i in range(settings.vocabulary_size)]
    return [
        [(rng.choice(vocabulary), 1) for _ in range(settings.wordcount_pairs_per_worker)]
        for _ in range(settings.num_workers)
    ]


def _ml_partitions(settings: LossSweepSettings, step: int) -> list[list[tuple[str, int]]]:
    """Quantized sparse gradient updates per worker for one training step."""
    rng = random.Random(settings.seed + 1000 * (step + 1))
    partitions = []
    for _worker in range(settings.num_workers):
        indices = rng.sample(range(settings.ml_params), settings.ml_updates_per_worker)
        partitions.append(
            [(f"w:{index}", rng.randint(-(2**20), 2**20)) for index in indices]
        )
    return partitions


# ---------------------------------------------------------------------- #
# Runners
# ---------------------------------------------------------------------- #
def _collect_run(
    workload: str,
    loss_rate: float,
    reliability: bool,
    system: DaietSystem,
    exact: bool,
    completed: bool,
) -> LossSweepRun:
    stats = system.simulator.stats
    rel = system.reliability_stats().values()
    engine_counters = [
        counters for _key, counters in system.controller.tree_counters().items()
    ]
    return LossSweepRun(
        workload=workload,
        loss_rate=loss_rate,
        reliability=reliability,
        exact=exact,
        completed=completed,
        link_bytes=stats.total_link_bytes(),
        link_packets=stats.total_link_packets(),
        losses=stats.total_losses(),
        retransmissions=sum(s["retransmissions"] for s in rel)
        + sum(c.retransmitted_packets for c in engine_counters),
        duplicates_filtered=sum(c.duplicate_packets for c in engine_counters),
        acks=sum(s["acks_sent"] for s in system.reliability_stats().values())
        + sum(c.acks_sent for c in engine_counters),
        sim_seconds=system.simulator.now,
    )


def _run_wordcount(
    settings: LossSweepSettings,
    loss_rate: float,
    reliability: bool,
    truth: dict[str, int],
) -> LossSweepRun:
    partitions = _wordcount_partitions(settings)
    system = DaietSystem(
        _lossy_rack(settings.num_workers + 1, loss_rate),
        settings.daiet_config(reliability),
        SimulatorConfig(loss_seed=settings.loss_seed),
    )
    reducer = f"h{settings.num_workers}"
    mappers = [f"h{i}" for i in range(settings.num_workers)]
    system.install_job(mappers=mappers, reducers=[reducer])
    for mapper, pairs in zip(mappers, partitions):
        system.send_pairs(mapper, reducer, pairs)
    system.run()
    receiver = system.receiver(reducer)
    exact = receiver.done and receiver.result() == truth
    return _collect_run(
        "wordcount", loss_rate, reliability, system, exact, receiver.done
    )


def _run_ml_training(
    settings: LossSweepSettings,
    loss_rate: float,
    reliability: bool,
    truths: list[dict[str, int]],
) -> LossSweepRun:
    system = DaietSystem(
        _lossy_rack(settings.num_workers + 1, loss_rate),
        settings.daiet_config(reliability),
        SimulatorConfig(loss_seed=settings.loss_seed),
    )
    reducer = f"h{settings.num_workers}"
    workers = [f"h{i}" for i in range(settings.num_workers)]
    exact = True
    completed = True
    for step in range(settings.ml_steps):
        # One fresh aggregation round per synchronous training step, exactly
        # like examples/ml_training_daiet.py drives the parameter server.
        system.install_job(mappers=workers, reducers=[reducer])
        for worker, pairs in zip(workers, _ml_partitions(settings, step)):
            system.send_pairs(worker, reducer, pairs)
        system.run()
        receiver = system.receiver(reducer)
        completed = completed and receiver.done
        exact = exact and receiver.done and receiver.result() == truths[step]
    return _collect_run(
        "ml_training", loss_rate, reliability, system, exact, completed
    )


# ---------------------------------------------------------------------- #
# The sweep
# ---------------------------------------------------------------------- #
def run_loss_sweep(settings: LossSweepSettings | None = None) -> LossSweepResult:
    """Sweep ``loss_rate`` for both workloads and report exactness + cost."""
    settings = settings or LossSweepSettings()
    wordcount_truth = aggregate_pairs(
        [pair for partition in _wordcount_partitions(settings) for pair in partition],
        SUM,
    )
    ml_truths = [
        aggregate_pairs(
            [pair for partition in _ml_partitions(settings, step) for pair in partition],
            SUM,
        )
        for step in range(settings.ml_steps)
    ]

    result = LossSweepResult(settings=settings)
    runners = {
        "wordcount": lambda rate, rel: _run_wordcount(
            settings, rate, rel, wordcount_truth
        ),
        "ml_training": lambda rate, rel: _run_ml_training(
            settings, rate, rel, ml_truths
        ),
    }
    for workload, runner in runners.items():
        baseline = runner(0.0, False)
        if not baseline.exact:
            raise ReproError(
                f"the lossless {workload} baseline disagrees with ground truth"
            )
        baseline.overhead = 1.0
        result.baselines[workload] = baseline
        swept = []
        for rate in settings.loss_rates:
            run = runner(rate, True)
            run.overhead = (
                run.link_bytes / baseline.link_bytes if baseline.link_bytes else 0.0
            )
            swept.append(run)
        result.runs[workload] = swept
    result.report = _render_report(result)
    return result


def _render_report(result: LossSweepResult) -> str:
    settings = result.settings
    lines = [
        "Loss sweep: exact in-network aggregation over lossy links",
        "",
        f"{settings.num_workers} mappers behind one switch; loss applied per "
        "direction on every host uplink.",
        f"Reliability knobs: retransmit_timeout={settings.retransmit_timeout:g}s, "
        f"ack_window={settings.ack_window}, max_retransmits={settings.max_retransmits}.",
        "Overhead is total link bytes vs the lossless baseline without the "
        "reliability layer (seq numbers, ACKs, retransmissions included).",
        "",
    ]
    header = (
        f"{'workload':<12s} {'loss':>7s} {'exact':>6s} {'losses':>7s} "
        f"{'retrans':>8s} {'dups':>6s} {'acks':>6s} {'link-KB':>9s} {'overhead':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, runs in result.runs.items():
        baseline = result.baselines[workload]
        lines.append(
            f"{workload:<12s} {'none*':>7s} {'yes':>6s} {baseline.losses:>7d} "
            f"{'-':>8s} {'-':>6s} {'-':>6s} {baseline.link_bytes / 1024:>9.1f} "
            f"{baseline.overhead:>8.2f}x"
        )
        for run in runs:
            lines.append(
                f"{run.workload:<12s} {run.loss_rate:>6.1%} "
                f"{'yes' if run.exact else 'NO':>6s} {run.losses:>7d} "
                f"{run.retransmissions:>8d} {run.duplicates_filtered:>6d} "
                f"{run.acks:>6d} {run.link_bytes / 1024:>9.1f} {run.overhead:>8.2f}x"
            )
    lines.append("")
    lines.append("* lossless run without the reliability layer (goodput baseline)")
    verdict = (
        "all runs bit-identical to the lossless ground truth"
        if result.all_exact
        else "SOME RUNS DIVERGED FROM GROUND TRUTH"
    )
    lines.append(f"Verdict: {verdict}.")
    return "\n".join(lines)
