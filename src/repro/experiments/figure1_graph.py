"""Runner for Figure 1(c): potential traffic reduction of graph analytics.

Paper setup: PageRank, SSSP and WCC on the LiveJournal graph over GPS with four
workers; the metric is the per-iteration traffic-reduction ratio obtained by
combining all messages addressed to the same destination. Paper results: the
ratio ranges from 48% to 93%; PageRank is flat across iterations, SSSP grows
over the early iterations, and WCC starts high and decreases as it converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import render_series_table
from repro.graph.algorithms import pagerank, sssp, wcc
from repro.graph.generators import livejournal_like
from repro.graph.graph import Graph
from repro.graph.pregel import PregelResult

#: Paper-reported bounds of the Figure 1(c) reduction ratios.
PAPER_MIN_REDUCTION = 0.48
PAPER_MAX_REDUCTION = 0.93


@dataclass
class Figure1GraphSettings:
    """Scale knobs for the Figure 1(c) runs."""

    num_vertices: int = 20_000
    average_degree: int = 14
    num_workers: int = 4
    iterations: int = 10
    sssp_source: int = 0
    seed: int = 2017

    def quick(self) -> "Figure1GraphSettings":
        """A fast variant used by unit tests and smoke runs."""
        return Figure1GraphSettings(
            num_vertices=2_000,
            average_degree=self.average_degree,
            num_workers=self.num_workers,
            iterations=self.iterations,
            sssp_source=self.sssp_source,
            seed=self.seed,
        )


@dataclass
class Figure1GraphResult:
    """Per-algorithm Pregel results and reduction series."""

    settings: Figure1GraphSettings
    graph_vertices: int
    graph_edges: int
    results: dict[str, PregelResult] = field(default_factory=dict)
    report: str = ""

    def reduction_series(self, algorithm: str) -> list[float]:
        """Per-iteration reduction ratios of one algorithm (message-bearing steps)."""
        trace = self.results[algorithm].trace
        return [s.reduction_ratio for s in trace.supersteps if s.messages > 0]

    def summary(self) -> dict[str, float]:
        """Peak reduction ratio per algorithm."""
        return {
            name: max(self.reduction_series(name), default=0.0) for name in self.results
        }


def build_graph(settings: Figure1GraphSettings) -> Graph:
    """The scaled LiveJournal-like input graph."""
    return livejournal_like(
        num_vertices=settings.num_vertices,
        average_degree=settings.average_degree,
        seed=settings.seed,
    )


def run_figure1c(
    settings: Figure1GraphSettings | None = None,
    graph: Graph | None = None,
) -> Figure1GraphResult:
    """Run the three graph algorithms and collect their reduction series."""
    settings = settings or Figure1GraphSettings()
    graph = graph or build_graph(settings)
    results = {
        "PageRank": pagerank(
            graph, num_iterations=settings.iterations, num_workers=settings.num_workers
        ),
        "SSSP": sssp(
            graph,
            source=settings.sssp_source,
            num_workers=settings.num_workers,
            max_supersteps=settings.iterations + 1,
        ),
        "WCC": wcc(graph, num_workers=settings.num_workers, max_supersteps=settings.iterations + 1),
    }
    outcome = Figure1GraphResult(
        settings=settings,
        graph_vertices=graph.num_vertices,
        graph_edges=graph.num_edges,
        results=results,
    )
    outcome.report = render_series_table(
        title=(
            "Figure 1(c): traffic reduction ratio per iteration "
            f"(paper range {PAPER_MIN_REDUCTION:.0%}-{PAPER_MAX_REDUCTION:.0%})"
        ),
        series={name: outcome.reduction_series(name) for name in results},
        index_label="iter",
    )
    return outcome
