"""Incast experiment: many-to-one fan-in under the adaptive transport.

The paper's motivating traffic pattern — every worker funnelling its map
output into one reducer — is exactly the shape that triggers TCP incast
collapse: the fan-in overruns the switch egress buffer in front of the
reducer NIC, the tail drops trigger synchronized retransmission timeouts,
and goodput falls off a cliff. DAIET sidesteps the pattern entirely by
aggregating *inside* the switch, so the reducer-facing link carries one
combined stream instead of N.

This experiment makes that comparison quantitative. For each fan-in it runs
four arms over the same single-rack fabric with a finite switch egress
buffer and an ECN marking threshold:

* ``daiet`` — in-network aggregation with hop reliability (the paper's
  design: no incast exists to collapse);
* ``udp-fixed`` — host-to-host transfers with the historical sender pinned
  at a TCP-like 2 ms minimum RTO, orders of magnitude above the rack RTT.
  Every drop costs a multi-millisecond stall on a sub-millisecond transfer:
  the classic incast goodput collapse;
* ``udp-aimd`` — the same transfers with SRTT/RTTVAR-driven timeouts and an
  AIMD congestion window;
* ``udp-dctcp`` — adaptive RTO plus the DCTCP-style controller that scales
  its decrease by the ECN-marked fraction.

Alongside the fan-in sweep, a buffer-size ablation re-runs the UDP arms at
one fan-in across shallow/default/deep switch buffers to show the
drop-vs-mark trade. Every run is exact-checked against the lossless ground
truth; the report tables goodput, retransmit overhead, ECN mark counts and
queue drops per arm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.errors import ReproError, TransportError
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology, single_rack
from repro.transport.packets import MessagePayload
from repro.transport.udp import ReliableUdpTransport
from repro.transport.window import TransportTuning

#: Application bytes per (key, value) pair, matching the scale experiment.
INCAST_PAIR_BYTES = 20

#: UDP port the incast transfers run on.
INCAST_PORT = 9191

#: The four arms, in report order.
ARMS = ("daiet", "udp-fixed", "udp-aimd", "udp-dctcp")

#: Fan-ins swept by the paper-scale run (override with ``--fanin``).
DEFAULT_FANINS = (16, 64, 256)


@dataclass
class IncastSettings:
    """Scale, buffer and transport knobs for the incast sweep."""

    fanins: tuple[int, ...] = DEFAULT_FANINS
    #: Rack link speed. The reducer uplink is the incast bottleneck; the
    #: default models a 10G testbed NIC so the fan-in actually queues.
    bandwidth_bps: float = 10e9 / 8
    pairs_per_sender: int = 200
    vocabulary_size: int = 1_000
    register_slots: int = 4_096
    pairs_per_packet: int = 10
    #: Base timeout of the adaptive arms (their RTO before any sample) and
    #: of DAIET's hop-scoped reliability, whose per-hop RTTs stay tiny.
    retransmit_timeout: float = 1e-4
    #: Pinned RTO of the ``udp-fixed`` arm: the TCP-like 2 ms minimum the
    #: adaptive transport replaces. Orders of magnitude above the rack RTT,
    #: so every tail-drop stalls the flow — the incast collapse mechanism.
    fixed_rto: float = 2e-3
    ack_window: int = 8
    #: Generous so the fixed arm degrades (collapsed goodput) rather than
    #: aborting with a give-up error mid-measurement.
    max_retransmits: int = 200
    #: Switch egress marks CE above this backlog (DCTCP's shallow K).
    ecn_threshold_bytes: int = 15_000
    #: Finite switch egress buffer; tail-drop above this backlog.
    switch_buffer_bytes: int = 100_000
    #: Buffer depths for the ablation, run at ``ablation_fanin``.
    ablation_buffers: tuple[int, ...] = (25_000, 100_000, 400_000)
    ablation_fanin: int = 64
    #: RTO clamps for the adaptive arms. The ceiling is rack-scale (2 ms,
    #: the classic TCP minimum RTO): backoff may not stretch the recovery
    #: tail past it, or the adaptive arms lose on completion time at small
    #: fan-ins where the transfer itself lasts well under a millisecond.
    rto_floor: float = 5e-5
    rto_ceiling: float = 2e-3
    initial_cwnd: int = 10
    min_cwnd: int = 2
    dctcp_gain: float = 0.0625
    seed: int = 2017

    def quick(self) -> "IncastSettings":
        """A fast variant used by unit tests and smoke runs."""
        return replace(
            self,
            fanins=(8, 16),
            bandwidth_bps=1e9 / 8,
            pairs_per_sender=150,
            vocabulary_size=200,
            register_slots=512,
            switch_buffer_bytes=25_000,
            ecn_threshold_bytes=8_000,
            ablation_buffers=(25_000, 100_000),
            ablation_fanin=16,
        )

    def tuning(self, arm: str) -> TransportTuning:
        """The transport tuning of one UDP arm."""
        if arm == "udp-fixed":
            return TransportTuning()
        if arm not in ("udp-aimd", "udp-dctcp"):
            raise ReproError(f"unknown incast arm {arm!r}")
        return TransportTuning(
            adaptive_rto=True,
            rto_floor=self.rto_floor,
            rto_ceiling=self.rto_ceiling,
            congestion_control="aimd" if arm == "udp-aimd" else "dctcp",
            initial_cwnd=self.initial_cwnd,
            min_cwnd=self.min_cwnd,
            dctcp_gain=self.dctcp_gain,
        )

    def simulator_config(self, buffer_bytes: int | None = None) -> SimulatorConfig:
        """Simulator config with the congested-fabric knobs enabled."""
        return SimulatorConfig(
            ecn_threshold_bytes=self.ecn_threshold_bytes,
            switch_buffer_bytes=(
                self.switch_buffer_bytes if buffer_bytes is None else buffer_bytes
            ),
        )

    def daiet_config(self) -> DaietConfig:
        """The DAIET configuration implied by these settings."""
        return DaietConfig(
            register_slots=self.register_slots,
            pairs_per_packet=self.pairs_per_packet,
            reliability=True,
            retransmit_timeout=self.retransmit_timeout,
            ack_window=self.ack_window,
            max_retransmits=self.max_retransmits,
        )


@dataclass
class IncastRun:
    """Measurements of one (arm, fan-in, buffer) run."""

    arm: str
    fanin: int
    buffer_bytes: int
    completed: bool
    exact: bool
    events: int
    sim_seconds: float
    #: Unique application payload delivered, bits per second of sim time.
    goodput_bps: float
    datagrams_sent: int
    retransmissions: int
    #: Retransmitted fraction of everything the senders put on the wire.
    retransmit_overhead: float
    ecn_marks: int
    queue_drops: int


@dataclass
class IncastResult:
    """All runs of the sweep plus the rendered report."""

    settings: IncastSettings
    runs: list[IncastRun] = field(default_factory=list)
    ablation: list[IncastRun] = field(default_factory=list)
    report: str = ""

    def run_for(self, arm: str, fanin: int) -> IncastRun:
        """The sweep run of ``arm`` at ``fanin``."""
        for run in self.runs:
            if run.arm == arm and run.fanin == fanin:
                return run
        raise ReproError(f"no {arm!r} run at fan-in {fanin}")


# ---------------------------------------------------------------------- #
# Workload
# ---------------------------------------------------------------------- #
def _sender_partitions(
    settings: IncastSettings, fanin: int
) -> list[list[tuple[str, int]]]:
    """WordCount-shaped (word, 1) streams, one per sender."""
    rng = random.Random(settings.seed)
    vocabulary = [f"word{i:04d}" for i in range(settings.vocabulary_size)]
    return [
        [(rng.choice(vocabulary), 1) for _ in range(settings.pairs_per_sender)]
        for _ in range(fanin)
    ]


def _chunked(pairs: list[tuple[str, int]], size: int) -> list[list[tuple[str, int]]]:
    return [pairs[i : i + size] for i in range(0, len(pairs), size)]


def _rack(settings: IncastSettings, fanin: int) -> Topology:
    return single_rack(fanin + 1, bandwidth_bps=settings.bandwidth_bps)


# ---------------------------------------------------------------------- #
# Arms
# ---------------------------------------------------------------------- #
def _run_daiet(
    settings: IncastSettings,
    fanin: int,
    buffer_bytes: int,
    partitions: list[list[tuple[str, int]]],
    truth: dict[str, int],
) -> IncastRun:
    system = DaietSystem(
        _rack(settings, fanin),
        settings.daiet_config(),
        settings.simulator_config(buffer_bytes),
    )
    reducer = f"h{fanin}"
    mappers = [f"h{i}" for i in range(fanin)]
    system.install_job(mappers=mappers, reducers=[reducer])
    for mapper, pairs in zip(mappers, partitions):
        system.send_pairs(mapper, reducer, pairs)
    events = system.run()
    receiver = system.receiver(reducer)
    exact = receiver.done and receiver.result() == truth
    stats = system.simulator.stats
    rel = list(system.reliability_stats().values())
    engine_counters = list(system.controller.tree_counters().values())
    offered = fanin * settings.pairs_per_sender * INCAST_PAIR_BYTES
    sim_seconds = system.simulator.now
    sent = sum(s["packets_sent"] for s in rel)
    retrans = sum(s["retransmissions"] for s in rel) + sum(
        c.retransmitted_packets for c in engine_counters
    )
    return IncastRun(
        arm="daiet",
        fanin=fanin,
        buffer_bytes=buffer_bytes,
        completed=receiver.done,
        exact=exact,
        events=events,
        sim_seconds=sim_seconds,
        goodput_bps=(offered * 8 / sim_seconds) if (exact and sim_seconds) else 0.0,
        datagrams_sent=sent,
        retransmissions=retrans,
        retransmit_overhead=retrans / (sent + retrans) if sent else 0.0,
        ecn_marks=stats.total_ecn_marked(),
        queue_drops=stats.total_queue_drops(),
    )


def _run_udp(
    settings: IncastSettings,
    arm: str,
    fanin: int,
    buffer_bytes: int,
    partitions: list[list[tuple[str, int]]],
    truth: dict[str, int],
) -> IncastRun:
    simulator = NetworkSimulator(
        _rack(settings, fanin), settings.simulator_config(buffer_bytes))
    reliable = ReliableUdpTransport(
        simulator,
        retransmit_timeout=(
            settings.fixed_rto if arm == "udp-fixed" else settings.retransmit_timeout
        ),
        ack_window=settings.ack_window,
        max_retransmits=settings.max_retransmits,
        tuning=settings.tuning(arm),
    )
    reducer = f"h{fanin}"
    aggregate: dict[str, int] = {}
    delivered_pairs = 0

    def on_message(_src: str, payload: MessagePayload) -> None:
        nonlocal delivered_pairs
        if payload.kind != "pairs":
            return
        delivered_pairs += len(payload.data)
        for key, value in payload.data:
            aggregate[key] = aggregate.get(key, 0) + value

    reliable.listen_reliable(reducer, INCAST_PORT, on_message)
    senders = [f"h{i}" for i in range(fanin)]
    for sender, pairs in zip(senders, partitions):
        for chunk in _chunked(pairs, settings.pairs_per_packet):
            reliable.send_reliable(
                sender,
                reducer,
                MessagePayload(kind="pairs", data=chunk),
                len(chunk) * INCAST_PAIR_BYTES,
                port=INCAST_PORT,
            )
    completed = True
    events = 0
    try:
        events = simulator.run()
    except TransportError:
        completed = False  # a flow gave up: the arm collapsed outright
    completed = completed and all(
        reliable.flow_done(sender, reducer, INCAST_PORT) for sender in senders
    )
    exact = completed and aggregate == truth
    stats = simulator.stats
    sim_seconds = simulator.now
    sent = reliable.stats.datagrams_sent
    retrans = reliable.stats.retransmissions
    delivered = delivered_pairs * INCAST_PAIR_BYTES
    return IncastRun(
        arm=arm,
        fanin=fanin,
        buffer_bytes=buffer_bytes,
        completed=completed,
        exact=exact,
        events=events,
        sim_seconds=sim_seconds,
        goodput_bps=(delivered * 8 / sim_seconds) if sim_seconds else 0.0,
        datagrams_sent=sent,
        retransmissions=retrans,
        retransmit_overhead=retrans / (sent + retrans) if sent else 0.0,
        ecn_marks=stats.total_ecn_marked(),
        queue_drops=stats.total_queue_drops(),
    )


def _run_arm(
    settings: IncastSettings, arm: str, fanin: int, buffer_bytes: int
) -> IncastRun:
    partitions = _sender_partitions(settings, fanin)
    truth = aggregate_pairs(
        [pair for partition in partitions for pair in partition], SUM
    )
    if arm == "daiet":
        return _run_daiet(settings, fanin, buffer_bytes, partitions, truth)
    return _run_udp(settings, arm, fanin, buffer_bytes, partitions, truth)


# ---------------------------------------------------------------------- #
# The sweep
# ---------------------------------------------------------------------- #
def run_incast(settings: IncastSettings | None = None) -> IncastResult:
    """Sweep fan-in across the four arms, then ablate the buffer depth."""
    settings = settings or IncastSettings()
    result = IncastResult(settings=settings)
    for fanin in settings.fanins:
        for arm in ARMS:
            result.runs.append(
                _run_arm(settings, arm, fanin, settings.switch_buffer_bytes)
            )
    for buffer_bytes in settings.ablation_buffers:
        for arm in ARMS[1:]:  # the UDP arms; DAIET barely touches the buffer
            result.ablation.append(
                _run_arm(settings, arm, settings.ablation_fanin, buffer_bytes)
            )
    result.report = _render_report(result)
    return result


def _format_row(run: IncastRun) -> str:
    return (
        f"{run.arm:<10s} {run.fanin:>6d} {run.buffer_bytes // 1024:>6d} "
        f"{'yes' if run.exact else 'NO':>6s} {run.sim_seconds * 1e3:>8.3f} "
        f"{run.goodput_bps / 1e9:>9.3f} {run.retransmissions:>8d} "
        f"{run.retransmit_overhead:>8.1%} {run.ecn_marks:>7d} "
        f"{run.queue_drops:>7d}"
    )


_HEADER = (
    f"{'arm':<10s} {'fanin':>6s} {'buf-KB':>6s} {'exact':>6s} {'sim-ms':>8s} "
    f"{'Gbit/s':>9s} {'retrans':>8s} {'rtx-ovh':>8s} {'marks':>7s} {'qdrops':>7s}"
)


def _render_report(result: IncastResult) -> str:
    settings = result.settings
    lines = [
        "Incast: many-to-one fan-in, adaptive transport vs in-network aggregation",
        "",
        f"Single rack; switch egress buffer {settings.switch_buffer_bytes // 1024} KB, "
        f"ECN mark threshold {settings.ecn_threshold_bytes // 1024} KB.",
        f"Fixed arm pinned at a {settings.fixed_rto:g}s TCP-like minimum RTO; "
        f"adaptive arms use SRTT/RTTVAR with floor {settings.rto_floor:g}s, "
        f"ceiling {settings.rto_ceiling:g}s.",
        "Goodput is unique application payload delivered per second of "
        "simulated time; rtx-ovh is the retransmitted fraction of all "
        "datagrams sent.",
        "",
        _HEADER,
        "-" * len(_HEADER),
    ]
    for run in result.runs:
        lines.append(_format_row(run))
    if result.ablation:
        lines.append("")
        lines.append(
            f"Buffer ablation at fan-in {settings.ablation_fanin} (UDP arms):"
        )
        lines.append(_HEADER)
        lines.append("-" * len(_HEADER))
        for run in result.ablation:
            lines.append(_format_row(run))
    lines.append("")
    verdicts = []
    for fanin in settings.fanins:
        fixed = result.run_for("udp-fixed", fanin)
        adaptive = max(
            (result.run_for(a, fanin) for a in ("udp-aimd", "udp-dctcp")),
            key=lambda run: run.goodput_bps,
        )
        if fixed.goodput_bps:
            ratio = adaptive.goodput_bps / fixed.goodput_bps
            verdicts.append(
                f"fan-in {fanin}: best adaptive arm ({adaptive.arm}) delivers "
                f"{ratio:.1f}x the fixed-RTO goodput"
            )
        else:
            verdicts.append(
                f"fan-in {fanin}: fixed-RTO arm collapsed outright; "
                f"{adaptive.arm} completed at "
                f"{adaptive.goodput_bps / 1e9:.3f} Gbit/s"
            )
    lines.extend(f"Verdict: {v}." for v in verdicts)
    return "\n".join(lines)
