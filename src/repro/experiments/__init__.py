"""Experiment runners regenerating every figure of the paper's evaluation.

Each module exposes a ``run_*`` entry point plus a ``*Settings`` dataclass with
a ``quick()`` variant, so the same code backs the benchmark harness
(paper-scale parameters), the examples and the fast integration tests.
"""

from repro.experiments.figure1_graph import (
    Figure1GraphResult,
    Figure1GraphSettings,
    run_figure1c,
)
from repro.experiments.figure1_ml import (
    Figure1MlResult,
    Figure1MlSettings,
    run_figure1_ml,
    run_figure1a,
    run_figure1b,
)
from repro.experiments.figure3_wordcount import (
    Figure3Result,
    Figure3Settings,
    run_figure3,
)
from repro.experiments.figure_loss_sweep import (
    LossSweepResult,
    LossSweepRun,
    LossSweepSettings,
    run_loss_sweep,
)
from repro.experiments.figure_scale import (
    ScaleResult,
    ScaleRun,
    ScaleSettings,
    run_scale,
    run_scale_once,
)

__all__ = [
    "Figure1GraphResult",
    "Figure1GraphSettings",
    "run_figure1c",
    "Figure1MlResult",
    "Figure1MlSettings",
    "run_figure1_ml",
    "run_figure1a",
    "run_figure1b",
    "Figure3Result",
    "Figure3Settings",
    "run_figure3",
    "LossSweepResult",
    "LossSweepRun",
    "LossSweepSettings",
    "run_loss_sweep",
    "ScaleResult",
    "ScaleRun",
    "ScaleSettings",
    "run_scale",
    "run_scale_once",
]
