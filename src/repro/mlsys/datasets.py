"""Synthetic MNIST-like dataset.

The paper's Figure 1(a,b) experiment trains a soft-max network on MNIST and
measures how much the *sparse gradient updates* of different workers overlap.
That metric depends only on which input features (pixels) are non-zero in each
worker's mini-batch — i.e. on the per-pixel activation frequency distribution —
not on the actual digit shapes. The generator below therefore produces 28x28
images whose per-pixel activation probabilities follow an MNIST-like radial
profile (dense centre, sparse periphery, silent border and corners) with
class-dependent stroke masks, so that gradient sparsity and cross-worker
overlap behave like the real dataset: a small mini-batch (SGD, batch 3) yields
an overlap in the low 40% range and a large mini-batch (Adam, batch 100) in the
high 60% range, matching the magnitudes the paper reports.

This is the documented substitution for the MNIST download, which is not
available offline (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError

#: MNIST geometry.
IMAGE_SIDE = 28
NUM_PIXELS = IMAGE_SIDE * IMAGE_SIDE
NUM_CLASSES = 10


@dataclass
class SyntheticMnistSpec:
    """Parameters of the synthetic digit generator.

    The defaults were calibrated so that the per-pixel activation-frequency
    spectrum resembles MNIST's (roughly a quarter of the pixels never active,
    a third active in more than half of the images, and a long tail of rarely
    active pixels) — the property that determines the gradient-overlap numbers
    of Figure 1(a,b).
    """

    num_samples: int = 10_000
    seed: int = 2017
    #: Radius (in pixels, from the image centre) inside which pixels are
    #: frequently active. MNIST digits live in roughly the central 20x20 box.
    core_radius: float = 9.0
    #: Radius beyond which pixels are never active (the MNIST border/corners).
    max_radius: float = 13.6
    #: Exponent shaping how fast activation probability decays with radius.
    decay: float = 1.7
    #: Activation probability floor of core pixels.
    core_activity: float = 0.82
    #: Scale of the activation probability in the mid ring.
    ring_activity: float = 0.72
    #: Number of stroke pixels per class mask.
    stroke_pixels: int = 440
    #: Fraction of a class's stroke mask that is shared across all classes
    #: (digits overlap heavily in the centre of the image).
    shared_fraction: float = 0.68
    #: Activity multiplier for pixels outside a class's stroke mask (digits
    #: occasionally touch pixels outside their typical stroke).
    off_stroke_scale: float = 0.22

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise TrainingError("num_samples must be positive")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise TrainingError("shared_fraction must lie in [0, 1]")
        if self.stroke_pixels <= 0 or self.stroke_pixels > NUM_PIXELS:
            raise TrainingError("stroke_pixels must lie in (0, 784]")
        if not 0.0 <= self.off_stroke_scale <= 1.0:
            raise TrainingError("off_stroke_scale must lie in [0, 1]")
        if self.core_radius <= 0 or self.max_radius <= self.core_radius:
            raise TrainingError("require 0 < core_radius < max_radius")


@dataclass
class Dataset:
    """A labelled dataset of flattened images."""

    images: np.ndarray
    labels: np.ndarray
    name: str = "synthetic-mnist"
    num_classes: int = NUM_CLASSES
    _rng: np.random.Generator = field(default_factory=np.random.default_rng, repr=False)

    def __post_init__(self) -> None:
        if self.images.ndim != 2:
            raise TrainingError("images must be a 2-D array (samples x features)")
        if len(self.images) != len(self.labels):
            raise TrainingError("images and labels must have the same length")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def num_features(self) -> int:
        """Number of input features per sample."""
        return self.images.shape[1]

    def shard(self, num_shards: int, index: int) -> "Dataset":
        """Row-wise shard ``index`` of ``num_shards`` (data-parallel split)."""
        if num_shards <= 0:
            raise TrainingError("num_shards must be positive")
        if not 0 <= index < num_shards:
            raise TrainingError(f"shard index {index} out of range for {num_shards} shards")
        return Dataset(
            images=self.images[index::num_shards],
            labels=self.labels[index::num_shards],
            name=f"{self.name}[{index}/{num_shards}]",
            num_classes=self.num_classes,
        )

    def minibatch(self, batch_size: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Sample a random mini-batch (with replacement across steps)."""
        if batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        indices = rng.integers(0, len(self), size=batch_size)
        return self.images[indices], self.labels[indices]

    def pixel_activation_frequency(self) -> np.ndarray:
        """Fraction of samples in which each feature is non-zero."""
        return (self.images > 0).mean(axis=0)


def pixel_activity_profile(
    spec: SyntheticMnistSpec, rng: np.random.Generator
) -> np.ndarray:
    """Per-pixel activation probability following an MNIST-like radial profile."""
    ys, xs = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
    centre = (IMAGE_SIDE - 1) / 2.0
    radius = np.sqrt((ys - centre) ** 2 + (xs - centre) ** 2)
    profile = np.clip(1.0 - (radius / spec.max_radius) ** spec.decay, 0.0, 1.0)
    profile = np.where(
        radius <= spec.core_radius,
        spec.core_activity + (0.95 - spec.core_activity) * profile,
        spec.ring_activity * profile**1.5,
    )
    # Pixel-level jitter so the profile is not perfectly radially symmetric.
    jitter = rng.uniform(0.7, 1.3, size=profile.shape)
    profile = np.clip(profile * jitter, 0.0, 0.97)
    profile[radius > spec.max_radius] = 0.0
    return profile.reshape(-1)


def _class_stroke_masks(
    spec: SyntheticMnistSpec, profile: np.ndarray, rng: np.random.Generator
) -> list[np.ndarray]:
    """Per-class activity multipliers: 1.0 on the stroke, off_stroke_scale elsewhere."""
    order = np.argsort(-profile)
    shared_count = int(spec.stroke_pixels * spec.shared_fraction)
    shared = order[:shared_count]
    candidate_count = min(NUM_PIXELS - shared_count, 3 * spec.stroke_pixels)
    candidates = order[shared_count : shared_count + candidate_count]
    masks: list[np.ndarray] = []
    private_count = spec.stroke_pixels - shared_count
    for _class_index in range(NUM_CLASSES):
        modulation = np.full(NUM_PIXELS, spec.off_stroke_scale)
        modulation[shared] = 1.0
        if private_count > 0:
            private = rng.choice(candidates, size=min(private_count, len(candidates)), replace=False)
            modulation[private] = 1.0
        masks.append(modulation)
    return masks


def generate_synthetic_mnist(
    spec: SyntheticMnistSpec | None = None, **overrides: object
) -> Dataset:
    """Generate the synthetic MNIST-like dataset."""
    if spec is None:
        spec = SyntheticMnistSpec(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise TrainingError("pass either a SyntheticMnistSpec or keyword overrides, not both")
    rng = np.random.default_rng(spec.seed)
    profile = pixel_activity_profile(spec, rng)
    masks = _class_stroke_masks(spec, profile, rng)

    images = np.zeros((spec.num_samples, NUM_PIXELS), dtype=np.float32)
    labels = rng.integers(0, NUM_CLASSES, size=spec.num_samples)
    for i in range(spec.num_samples):
        probabilities = profile * masks[labels[i]]
        active = np.flatnonzero(rng.random(NUM_PIXELS) < probabilities)
        intensities = rng.uniform(0.3, 1.0, size=active.shape[0]).astype(np.float32)
        images[i, active] = intensities
    return Dataset(images=images, labels=labels, name="synthetic-mnist")
