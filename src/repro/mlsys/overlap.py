"""Tensor-update overlap measurement (the Figure 1(a,b) metric).

"We evaluate the overlap of the tensor updates, i.e., the portion of tensor
elements that are updated by multiple workers at the same time. This overlap is
representative of the possible data reduction achievable when the updates are
aggregated inside the network." (Section 3.)

Given the per-worker sparse updates of one synchronous step, the overlap is the
fraction of tensor elements touched by **two or more** workers. Two
denominators are supported:

* ``"all"`` — all elements of the communicated tensors (the reading that
  matches the paper's reported magnitudes: ≈42.5% for SGD with mini-batch 3
  and ≈66.5% for Adam with mini-batch 100);
* ``"union"`` — only the elements touched by at least one worker this step
  (an upper-bound variant, also exposed because it equals the fraction of the
  step's traffic that is redundant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.model import GradientUpdate


@dataclass
class StepOverlap:
    """Overlap measurement for one synchronous training step."""

    step: int
    overlap_percent: float
    union_elements: int
    multi_worker_elements: int
    total_elements: int
    per_worker_touched: tuple[int, ...] = ()

    @property
    def traffic_reduction(self) -> float:
        """Fraction of the step's update traffic that aggregation removes."""
        total_sent = sum(self.per_worker_touched)
        if total_sent == 0:
            return 0.0
        return 1.0 - self.union_elements / total_sent


@dataclass
class OverlapSeries:
    """Overlap across the steps of one training run."""

    optimizer: str
    batch_size: int
    num_workers: int
    steps: list[StepOverlap] = field(default_factory=list)

    def append(self, step: StepOverlap) -> None:
        """Record one step."""
        self.steps.append(step)

    def percentages(self) -> list[float]:
        """Per-step overlap percentages, in step order."""
        return [s.overlap_percent for s in self.steps]

    def average(self) -> float:
        """Average overlap percentage over the run."""
        if not self.steps:
            raise TrainingError("overlap series is empty")
        return mean(self.percentages())

    def minimum(self) -> float:
        """Lowest per-step overlap percentage."""
        return min(self.percentages())

    def maximum(self) -> float:
        """Highest per-step overlap percentage."""
        return max(self.percentages())


def measure_step_overlap(
    updates: Sequence[GradientUpdate],
    tensors: Iterable[str] | None = None,
    denominator: str = "all",
) -> StepOverlap:
    """Compute the overlap of one synchronous step's worker updates.

    Parameters
    ----------
    updates:
        One :class:`GradientUpdate` per worker for the same step.
    tensors:
        Restrict the measurement to these tensors (default: every tensor in
        the first update — the paper measures the communicated tensors).
    denominator:
        ``"all"`` or ``"union"`` (see module docstring).
    """
    if not updates:
        raise TrainingError("measure_step_overlap needs at least one update")
    if denominator not in ("all", "union"):
        raise TrainingError(f"unknown denominator {denominator!r}")
    tensor_names = list(tensors) if tensors is not None else list(updates[0].gradients)

    total_elements = 0
    union_elements = 0
    multi_elements = 0
    per_worker_touched = [0] * len(updates)
    for tensor in tensor_names:
        size = updates[0].gradients[tensor].size
        total_elements += size
        touch_count = np.zeros(size, dtype=np.int32)
        for worker_index, update in enumerate(updates):
            if tensor not in update.gradients:
                raise TrainingError(f"worker update missing tensor {tensor!r}")
            indices = update.touched_indices(tensor)
            per_worker_touched[worker_index] += indices.size
            touch_count[indices] += 1
        union_elements += int((touch_count >= 1).sum())
        multi_elements += int((touch_count >= 2).sum())

    if denominator == "all":
        base = total_elements
    else:
        base = union_elements
    percent = 100.0 * multi_elements / base if base else 0.0
    step = updates[0].step
    return StepOverlap(
        step=step,
        overlap_percent=percent,
        union_elements=union_elements,
        multi_worker_elements=multi_elements,
        total_elements=total_elements,
        per_worker_touched=tuple(per_worker_touched),
    )
