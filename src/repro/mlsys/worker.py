"""Data-parallel training worker.

Each worker holds a shard of the training data and a local model replica. At
every synchronous step it pulls the shared parameters, samples a mini-batch
from its shard, computes the gradients and pushes them to the parameter
server — the communication pattern whose overlap Figure 1(a,b) studies.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.datasets import Dataset
from repro.mlsys.model import GradientUpdate, SoftmaxModel


class Worker:
    """One data-parallel worker process."""

    def __init__(
        self,
        worker_id: int,
        dataset: Dataset,
        batch_size: int,
        seed: int = 0,
        host: str | None = None,
    ) -> None:
        if worker_id < 0:
            raise TrainingError("worker_id must be non-negative")
        if batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        if len(dataset) == 0:
            raise TrainingError(f"worker {worker_id} received an empty data shard")
        self.worker_id = worker_id
        self.dataset = dataset
        self.batch_size = batch_size
        self.host = host or f"worker{worker_id}"
        self._rng = np.random.default_rng(seed + worker_id * 7919)
        self.model = SoftmaxModel(
            num_features=dataset.num_features,
            num_classes=dataset.num_classes,
            seed=seed,
        )
        self.steps_computed = 0

    def compute_update(self, parameters: dict[str, np.ndarray], step: int) -> GradientUpdate:
        """Pull parameters, sample a mini-batch and compute the local gradients."""
        self.model.set_parameters(parameters)
        images, labels = self.dataset.minibatch(self.batch_size, self._rng)
        update = self.model.gradients(images, labels)
        update.worker_id = self.worker_id
        update.step = step
        self.steps_computed += 1
        return update

    def evaluate(self, dataset: Dataset, parameters: dict[str, np.ndarray]) -> tuple[float, float]:
        """Loss and accuracy of the given parameters on a dataset."""
        self.model.set_parameters(parameters)
        return (
            self.model.loss(dataset.images, dataset.labels),
            self.model.accuracy(dataset.images, dataset.labels),
        )
