"""Distributed training driver (the Figure 1(a,b) experiment).

Reproduces the paper's setup: one parameter server plus N workers (five in the
paper) training a soft-max model, synchronously, with either mini-batch SGD
(batch size 3) or Adam (batch size 100). At every step the per-worker updates
are measured for cross-worker overlap before the server aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.datasets import Dataset, generate_synthetic_mnist
from repro.mlsys.model import SoftmaxModel
from repro.mlsys.optimizers import make_optimizer
from repro.mlsys.overlap import OverlapSeries, measure_step_overlap
from repro.mlsys.parameter_server import ParameterServer
from repro.mlsys.worker import Worker


@dataclass
class TrainingConfig:
    """Configuration of one distributed training run."""

    optimizer: str = "sgd"
    batch_size: int = 3
    num_workers: int = 5
    num_steps: int = 200
    seed: int = 2017
    learning_rate: float | None = None
    #: Tensors whose updates are measured for overlap; ``None`` means all.
    measured_tensors: tuple[str, ...] | None = None
    overlap_denominator: str = "all"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise TrainingError("num_workers must be positive")
        if self.num_steps <= 0:
            raise TrainingError("num_steps must be positive")
        if self.batch_size <= 0:
            raise TrainingError("batch_size must be positive")

    @classmethod
    def paper_sgd(cls, num_steps: int = 200, **overrides: object) -> "TrainingConfig":
        """The paper's SGD configuration: mini-batch 3, five workers."""
        return cls(optimizer="sgd", batch_size=3, num_steps=num_steps, **overrides)  # type: ignore[arg-type]

    @classmethod
    def paper_adam(cls, num_steps: int = 200, **overrides: object) -> "TrainingConfig":
        """The paper's Adam configuration: mini-batch 100, five workers."""
        return cls(optimizer="adam", batch_size=100, num_steps=num_steps, **overrides)  # type: ignore[arg-type]


@dataclass
class TrainingResult:
    """Outcome of a distributed training run."""

    config: TrainingConfig
    overlap: OverlapSeries
    losses: list[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    server_traffic_reduction: list[float] = field(default_factory=list)

    def average_overlap(self) -> float:
        """Mean per-step overlap percentage (the paper's headline number)."""
        return self.overlap.average()


class DistributedTrainingJob:
    """Synchronous parameter-server training of the soft-max model."""

    def __init__(self, config: TrainingConfig, dataset: Dataset | None = None) -> None:
        self.config = config
        self.dataset = dataset or generate_synthetic_mnist(seed=config.seed)
        self.model = SoftmaxModel(
            num_features=self.dataset.num_features,
            num_classes=self.dataset.num_classes,
            seed=config.seed,
        )
        optimizer_kwargs = {}
        if config.learning_rate is not None:
            optimizer_kwargs["learning_rate"] = config.learning_rate
        self.server = ParameterServer(
            self.model.get_parameters(), make_optimizer(config.optimizer, **optimizer_kwargs)
        )
        self.workers = [
            Worker(
                worker_id=i,
                dataset=self.dataset.shard(config.num_workers, i),
                batch_size=config.batch_size,
                seed=config.seed,
            )
            for i in range(config.num_workers)
        ]

    def run(self) -> TrainingResult:
        """Run the configured number of synchronous steps."""
        overlap = OverlapSeries(
            optimizer=self.config.optimizer,
            batch_size=self.config.batch_size,
            num_workers=self.config.num_workers,
        )
        losses: list[float] = []
        for step in range(self.config.num_steps):
            parameters = self.server.pull()
            updates = [worker.compute_update(parameters, step) for worker in self.workers]
            overlap.append(
                measure_step_overlap(
                    updates,
                    tensors=self.config.measured_tensors,
                    denominator=self.config.overlap_denominator,
                )
            )
            self.server.push(updates)
            if step % 10 == 0 or step == self.config.num_steps - 1:
                losses.append(self._evaluate_loss())

        result = TrainingResult(config=self.config, overlap=overlap, losses=losses)
        result.final_accuracy = self._evaluate_accuracy()
        result.server_traffic_reduction = self.server.traffic_reduction_series()
        return result

    # ------------------------------------------------------------------ #
    # Evaluation helpers (on a fixed subset to keep runs fast)
    # ------------------------------------------------------------------ #
    def _eval_slice(self) -> tuple[np.ndarray, np.ndarray]:
        size = min(2000, len(self.dataset))
        return self.dataset.images[:size], self.dataset.labels[:size]

    def _evaluate_loss(self) -> float:
        images, labels = self._eval_slice()
        self.model.set_parameters(self.server.parameters())
        return self.model.loss(images, labels)

    def _evaluate_accuracy(self) -> float:
        images, labels = self._eval_slice()
        self.model.set_parameters(self.server.parameters())
        return self.model.accuracy(images, labels)


def run_overlap_experiment(
    optimizer: str,
    batch_size: int,
    num_steps: int = 200,
    num_workers: int = 5,
    seed: int = 2017,
    dataset: Dataset | None = None,
) -> TrainingResult:
    """One-call helper used by the Figure 1(a,b) benchmarks and examples."""
    config = TrainingConfig(
        optimizer=optimizer,
        batch_size=batch_size,
        num_steps=num_steps,
        num_workers=num_workers,
        seed=seed,
    )
    return DistributedTrainingJob(config, dataset=dataset).run()
