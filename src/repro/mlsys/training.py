"""Distributed training driver (the Figure 1(a,b) experiment).

Reproduces the paper's setup: one parameter server plus N workers (five in the
paper) training a soft-max model, synchronously, with either mini-batch SGD
(batch size 3) or Adam (batch size 100). At every step the per-worker updates
are measured for cross-worker overlap before the server aggregates them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.datasets import Dataset, generate_synthetic_mnist
from repro.mlsys.model import SoftmaxModel
from repro.mlsys.optimizers import make_optimizer
from repro.mlsys.overlap import OverlapSeries, measure_step_overlap
from repro.mlsys.parameter_server import ParameterServer
from repro.mlsys.worker import Worker


@dataclass
class TrainingConfig:
    """Configuration of one distributed training run."""

    optimizer: str = "sgd"
    batch_size: int = 3
    num_workers: int = 5
    num_steps: int = 200
    seed: int = 2017
    learning_rate: float | None = None
    #: Tensors whose updates are measured for overlap; ``None`` means all.
    measured_tensors: tuple[str, ...] | None = None
    overlap_denominator: str = "all"
    #: Probability that one worker's update is lost in a step, modelling
    #: gradient contributions dropped under a degraded aggregation policy
    #: (``sampled`` / ``best_effort``). ``0.0`` — the default — takes the
    #: historical, byte-identical path (no RNG is even created).
    update_drop_rate: float = 0.0
    #: Seed of the (dedicated) update-drop stream; losses stay reproducible
    #: and independent of every other random stream in the run.
    update_drop_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise TrainingError("num_workers must be positive")
        if self.num_steps <= 0:
            raise TrainingError("num_steps must be positive")
        if self.batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        if not 0.0 <= self.update_drop_rate < 1.0:
            raise TrainingError("update_drop_rate must lie in [0, 1)")

    @classmethod
    def paper_sgd(cls, num_steps: int = 200, **overrides: object) -> "TrainingConfig":
        """The paper's SGD configuration: mini-batch 3, five workers."""
        return cls(optimizer="sgd", batch_size=3, num_steps=num_steps, **overrides)  # type: ignore[arg-type]

    @classmethod
    def paper_adam(cls, num_steps: int = 200, **overrides: object) -> "TrainingConfig":
        """The paper's Adam configuration: mini-batch 100, five workers."""
        return cls(optimizer="adam", batch_size=100, num_steps=num_steps, **overrides)  # type: ignore[arg-type]


@dataclass
class TrainingResult:
    """Outcome of a distributed training run."""

    config: TrainingConfig
    overlap: OverlapSeries
    losses: list[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    server_traffic_reduction: list[float] = field(default_factory=list)
    #: Worker updates lost to the configured ``update_drop_rate``.
    updates_dropped: int = 0
    #: Steps where *every* update was lost (the synchronous round stalls).
    steps_stalled: int = 0

    def average_overlap(self) -> float:
        """Mean per-step overlap percentage (the paper's headline number)."""
        return self.overlap.average()


class DistributedTrainingJob:
    """Synchronous parameter-server training of the soft-max model."""

    def __init__(self, config: TrainingConfig, dataset: Dataset | None = None) -> None:
        self.config = config
        self.dataset = dataset or generate_synthetic_mnist(seed=config.seed)
        self.model = SoftmaxModel(
            num_features=self.dataset.num_features,
            num_classes=self.dataset.num_classes,
            seed=config.seed,
        )
        optimizer_kwargs = {}
        if config.learning_rate is not None:
            optimizer_kwargs["learning_rate"] = config.learning_rate
        self.server = ParameterServer(
            self.model.get_parameters(), make_optimizer(config.optimizer, **optimizer_kwargs)
        )
        self.workers = [
            Worker(
                worker_id=i,
                dataset=self.dataset.shard(config.num_workers, i),
                batch_size=config.batch_size,
                seed=config.seed,
            )
            for i in range(config.num_workers)
        ]

    def run(self) -> TrainingResult:
        """Run the configured number of synchronous steps."""
        overlap = OverlapSeries(
            optimizer=self.config.optimizer,
            batch_size=self.config.batch_size,
            num_workers=self.config.num_workers,
        )
        losses: list[float] = []
        drop_rng = (
            random.Random(self.config.update_drop_seed)
            if self.config.update_drop_rate > 0.0
            else None
        )
        updates_dropped = 0
        steps_stalled = 0
        for step in range(self.config.num_steps):
            parameters = self.server.pull()
            updates = [worker.compute_update(parameters, step) for worker in self.workers]
            overlap.append(
                measure_step_overlap(
                    updates,
                    tensors=self.config.measured_tensors,
                    denominator=self.config.overlap_denominator,
                )
            )
            if drop_rng is not None:
                rate = self.config.update_drop_rate
                survivors = [u for u in updates if drop_rng.random() >= rate]
                updates_dropped += len(updates) - len(survivors)
                updates = survivors
            if updates:
                self.server.push(updates)
            else:
                # Every contribution of this round was lost: the model does
                # not move, but the step still happened (and is counted).
                steps_stalled += 1
            if step % 10 == 0 or step == self.config.num_steps - 1:
                losses.append(self._evaluate_loss())

        result = TrainingResult(config=self.config, overlap=overlap, losses=losses)
        result.final_accuracy = self._evaluate_accuracy()
        result.server_traffic_reduction = self.server.traffic_reduction_series()
        result.updates_dropped = updates_dropped
        result.steps_stalled = steps_stalled
        return result

    # ------------------------------------------------------------------ #
    # Evaluation helpers (on a fixed subset to keep runs fast)
    # ------------------------------------------------------------------ #
    def _eval_slice(self) -> tuple[np.ndarray, np.ndarray]:
        size = min(2000, len(self.dataset))
        return self.dataset.images[:size], self.dataset.labels[:size]

    def _evaluate_loss(self) -> float:
        images, labels = self._eval_slice()
        self.model.set_parameters(self.server.parameters())
        return self.model.loss(images, labels)

    def _evaluate_accuracy(self) -> float:
        images, labels = self._eval_slice()
        self.model.set_parameters(self.server.parameters())
        return self.model.accuracy(images, labels)


@dataclass
class ConvergenceImpact:
    """Cost of degraded aggregation on training, vs the exact twin run.

    The exact run sets the loss target; the degraded run (same seeds, same
    data, with ``update_drop_rate`` applied) is given extra steps and the
    impact is how many *more* steps it needed to reach that target.
    """

    drop_rate: float
    exact_final_loss: float
    degraded_final_loss: float
    #: ``degraded_final_loss - exact_final_loss`` at the exact run's horizon.
    loss_gap: float
    #: Extra steps the degraded run needed to reach the exact run's final
    #: loss; ``None`` when it never got there within its allowance.
    extra_steps: int | None
    updates_dropped: int
    #: Fraction of worker updates lost across the degraded run.
    dropped_fraction: float


def measure_convergence_impact(
    config: TrainingConfig,
    drop_rate: float,
    drop_seed: int = 0,
    extra_step_allowance: int | None = None,
) -> ConvergenceImpact:
    """Run the exact twin and a degraded twin; quantify the convergence cost.

    Both runs share every seed, so the *only* difference is the dropped
    updates — the measured gap is attributable to the degraded policy alone.
    """
    if drop_rate <= 0.0:
        raise TrainingError("measure_convergence_impact needs a positive drop_rate")
    allowance = (
        extra_step_allowance if extra_step_allowance is not None else config.num_steps
    )
    exact = DistributedTrainingJob(
        replace(config, update_drop_rate=0.0)
    ).run()
    degraded_config = replace(
        config,
        update_drop_rate=drop_rate,
        update_drop_seed=drop_seed,
        num_steps=config.num_steps + allowance,
    )
    degraded = DistributedTrainingJob(degraded_config).run()

    # Loss checkpoints land every 10 steps plus the final step; rebuild the
    # step index of each checkpoint to translate "which checkpoint reached
    # the target" into a step count.
    def checkpoint_steps(num_steps: int) -> list[int]:
        steps = list(range(0, num_steps, 10))
        if steps[-1] != num_steps - 1:
            steps.append(num_steps - 1)
        return steps

    target = exact.losses[-1]
    degraded_steps = checkpoint_steps(degraded_config.num_steps)
    extra_steps: int | None = None
    for step, loss in zip(degraded_steps, degraded.losses):
        if loss <= target:
            extra_steps = max(0, step + 1 - config.num_steps)
            break
    horizon_checkpoints = sum(1 for s in degraded_steps if s < config.num_steps)
    degraded_at_horizon = degraded.losses[
        min(horizon_checkpoints, len(degraded.losses)) - 1
    ]
    total_updates = degraded_config.num_steps * degraded_config.num_workers
    return ConvergenceImpact(
        drop_rate=drop_rate,
        exact_final_loss=target,
        degraded_final_loss=degraded_at_horizon,
        loss_gap=degraded_at_horizon - target,
        extra_steps=extra_steps,
        updates_dropped=degraded.updates_dropped,
        dropped_fraction=degraded.updates_dropped / total_updates,
    )


def run_overlap_experiment(
    optimizer: str,
    batch_size: int,
    num_steps: int = 200,
    num_workers: int = 5,
    seed: int = 2017,
    dataset: Dataset | None = None,
) -> TrainingResult:
    """One-call helper used by the Figure 1(a,b) benchmarks and examples."""
    config = TrainingConfig(
        optimizer=optimizer,
        batch_size=batch_size,
        num_steps=num_steps,
        num_workers=num_workers,
        seed=seed,
    )
    return DistributedTrainingJob(config, dataset=dataset).run()
