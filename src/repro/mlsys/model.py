"""Soft-max model used by the Figure 1(a,b) experiment.

The paper trains "a Soft-Max Neural Network" on MNIST — i.e. multinomial
logistic regression: a single dense layer ``W`` (784x10) plus bias ``b`` (10)
followed by a soft-max, trained with cross-entropy. The parameters are exposed
as named tensors so the parameter server and the overlap measurement can treat
them exactly like TensorFlow variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError


@dataclass
class GradientUpdate:
    """A worker's parameter update for one step: dense per-tensor gradients."""

    gradients: dict[str, np.ndarray]
    num_samples: int
    worker_id: int = -1
    step: int = -1

    def touched_indices(self, tensor: str) -> np.ndarray:
        """Flat indices of the tensor elements this update modifies (non-zero)."""
        grad = self.gradients[tensor]
        return np.flatnonzero(grad)

    def sparsity(self, tensor: str) -> float:
        """Fraction of elements of ``tensor`` left untouched by this update."""
        grad = self.gradients[tensor]
        return 1.0 - np.count_nonzero(grad) / grad.size


@dataclass
class SoftmaxModel:
    """Multinomial logistic regression with named parameter tensors."""

    num_features: int = 784
    num_classes: int = 10
    seed: int = 0
    parameters: dict[str, np.ndarray] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_features <= 0 or self.num_classes <= 1:
            raise TrainingError("model dimensions must be positive (>=2 classes)")
        rng = np.random.default_rng(self.seed)
        self.parameters = {
            "W": (rng.standard_normal((self.num_features, self.num_classes)) * 0.01).astype(
                np.float64
            ),
            "b": np.zeros(self.num_classes, dtype=np.float64),
        }

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def logits(self, images: np.ndarray) -> np.ndarray:
        """Pre-softmax scores for a batch of images."""
        return images @ self.parameters["W"] + self.parameters["b"]

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of images."""
        return softmax(self.logits(images))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(self.logits(images), axis=1)

    def loss(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss over a batch."""
        proba = self.predict_proba(images)
        batch = np.arange(len(labels))
        return float(-np.log(np.clip(proba[batch, labels], 1e-12, 1.0)).mean())

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy over a batch."""
        return float((self.predict(images) == labels).mean())

    def gradients(self, images: np.ndarray, labels: np.ndarray) -> GradientUpdate:
        """Cross-entropy gradients for one mini-batch.

        The gradient of ``W`` is ``X^T (softmax - onehot) / n``: rows
        corresponding to pixels that are zero in *every* image of the
        mini-batch are exactly zero, which is the sparsity the overlap study
        measures.
        """
        if len(images) == 0:
            raise TrainingError("cannot compute gradients over an empty mini-batch")
        proba = self.predict_proba(images)
        onehot = np.zeros_like(proba)
        onehot[np.arange(len(labels)), labels] = 1.0
        delta = (proba - onehot) / len(images)
        grad_w = images.T @ delta
        grad_b = delta.sum(axis=0)
        return GradientUpdate(
            gradients={"W": grad_w, "b": grad_b},
            num_samples=len(images),
        )

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> dict[str, np.ndarray]:
        """Copies of the parameter tensors."""
        return {name: tensor.copy() for name, tensor in self.parameters.items()}

    def set_parameters(self, parameters: dict[str, np.ndarray]) -> None:
        """Overwrite the parameter tensors (worker pull from the PS)."""
        for name, tensor in parameters.items():
            if name not in self.parameters:
                raise TrainingError(f"unknown parameter tensor {name!r}")
            if tensor.shape != self.parameters[name].shape:
                raise TrainingError(
                    f"shape mismatch for {name!r}: {tensor.shape} vs "
                    f"{self.parameters[name].shape}"
                )
            self.parameters[name] = tensor.copy()

    def tensor_sizes(self) -> dict[str, int]:
        """Number of elements of every parameter tensor."""
        return {name: tensor.size for name, tensor in self.parameters.items()}


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable soft-max along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
