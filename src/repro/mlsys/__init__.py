"""Parameter-server machine-learning substrate (Figure 1a/b experiments)."""

from repro.mlsys.datasets import (
    Dataset,
    SyntheticMnistSpec,
    generate_synthetic_mnist,
    pixel_activity_profile,
)
from repro.mlsys.model import GradientUpdate, SoftmaxModel, softmax
from repro.mlsys.optimizers import SGD, Adam, Optimizer, make_optimizer
from repro.mlsys.overlap import OverlapSeries, StepOverlap, measure_step_overlap
from repro.mlsys.parameter_server import ParameterServer, ServerTrafficStats
from repro.mlsys.sparse import (
    DEFAULT_QUANTIZATION_SCALE,
    SparseTensorUpdate,
    SparseUpdate,
    densify,
    from_key_value_pairs,
    sparsify,
    to_key_value_pairs,
)
from repro.mlsys.training import (
    DistributedTrainingJob,
    TrainingConfig,
    TrainingResult,
    run_overlap_experiment,
)
from repro.mlsys.worker import Worker

__all__ = [
    "Dataset",
    "SyntheticMnistSpec",
    "generate_synthetic_mnist",
    "pixel_activity_profile",
    "GradientUpdate",
    "SoftmaxModel",
    "softmax",
    "SGD",
    "Adam",
    "Optimizer",
    "make_optimizer",
    "OverlapSeries",
    "StepOverlap",
    "measure_step_overlap",
    "ParameterServer",
    "ServerTrafficStats",
    "DEFAULT_QUANTIZATION_SCALE",
    "SparseTensorUpdate",
    "SparseUpdate",
    "densify",
    "from_key_value_pairs",
    "sparsify",
    "to_key_value_pairs",
    "DistributedTrainingJob",
    "TrainingConfig",
    "TrainingResult",
    "run_overlap_experiment",
    "Worker",
]
