"""Sparse tensor updates and their key-value encoding.

"In TensorFlow, the parameters are tensors [...] Parameter updates are deltas
that change only a subset of the overall tensor and can be aggregated by a
vector addition operation." (Section 3.) This module converts dense gradient
tensors into sparse (index, value) updates, and encodes them as the key-value
pairs DAIET aggregates in the network — the key identifies the tensor element,
the value is the (quantized) delta, and the aggregation function is ``sum``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.model import GradientUpdate

#: Fixed-point scale used to carry float gradients in DAIET's integer values.
DEFAULT_QUANTIZATION_SCALE = 1 << 16


@dataclass
class SparseTensorUpdate:
    """Sparse update of one named tensor: flat indices and their delta values."""

    tensor: str
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise TrainingError("indices and values must have the same length")

    def __len__(self) -> int:
        return len(self.indices)

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Serialized size of the sparse update."""
        return len(self) * (index_bytes + value_bytes)


@dataclass
class SparseUpdate:
    """A worker's full sparse update: one :class:`SparseTensorUpdate` per tensor."""

    worker_id: int
    step: int
    tensors: dict[str, SparseTensorUpdate] = field(default_factory=dict)

    def total_elements(self) -> int:
        """Number of (tensor element, delta) entries across all tensors."""
        return sum(len(update) for update in self.tensors.values())

    def touched(self, tensor: str) -> set[int]:
        """The set of flat indices touched in ``tensor``."""
        if tensor not in self.tensors:
            return set()
        return set(int(i) for i in self.tensors[tensor].indices)


def sparsify(update: GradientUpdate, threshold: float = 0.0) -> SparseUpdate:
    """Convert a dense gradient update into its sparse representation.

    Elements with absolute value less than or equal to ``threshold`` are
    dropped (the default keeps every exactly-non-zero element, matching the
    structural sparsity created by zero input features).
    """
    sparse = SparseUpdate(worker_id=update.worker_id, step=update.step)
    for tensor, grad in update.gradients.items():
        flat = grad.reshape(-1)
        indices = np.flatnonzero(np.abs(flat) > threshold)
        sparse.tensors[tensor] = SparseTensorUpdate(
            tensor=tensor,
            indices=indices,
            values=flat[indices].copy(),
        )
    return sparse


def densify(sparse: SparseUpdate, shapes: dict[str, tuple[int, ...]]) -> dict[str, np.ndarray]:
    """Reconstruct dense gradient tensors from a sparse update."""
    dense: dict[str, np.ndarray] = {}
    for tensor, shape in shapes.items():
        out = np.zeros(int(np.prod(shape)), dtype=np.float64)
        if tensor in sparse.tensors:
            update = sparse.tensors[tensor]
            out[update.indices] = update.values
        dense[tensor] = out.reshape(shape)
    return dense


def to_key_value_pairs(
    sparse: SparseUpdate,
    scale: int = DEFAULT_QUANTIZATION_SCALE,
) -> list[tuple[str, int]]:
    """Encode a sparse update as DAIET key-value pairs.

    Keys are ``"<tensor>:<flat index>"`` (at most 16 characters for the model
    sizes used here); values are fixed-point quantized deltas, so that summing
    them in the network is exactly the vector addition the parameter server
    would perform.
    """
    if scale <= 0:
        raise TrainingError("quantization scale must be positive")
    pairs: list[tuple[str, int]] = []
    for tensor, update in sparse.tensors.items():
        for index, value in zip(update.indices, update.values):
            key = f"{tensor}:{int(index)}"
            pairs.append((key, int(round(float(value) * scale))))
    return pairs


def from_key_value_pairs(
    pairs: list[tuple[str, int]],
    shapes: dict[str, tuple[int, ...]],
    scale: int = DEFAULT_QUANTIZATION_SCALE,
) -> dict[str, np.ndarray]:
    """Decode (possibly pre-aggregated) key-value pairs into dense tensors."""
    if scale <= 0:
        raise TrainingError("quantization scale must be positive")
    dense = {
        tensor: np.zeros(int(np.prod(shape)), dtype=np.float64) for tensor, shape in shapes.items()
    }
    for key, value in pairs:
        tensor, _, index_text = key.partition(":")
        if tensor not in dense or not index_text:
            raise TrainingError(f"malformed tensor-update key {key!r}")
        index = int(index_text)
        if not 0 <= index < dense[tensor].size:
            raise TrainingError(f"index {index} out of range for tensor {tensor!r}")
        dense[tensor][index] += value / scale
    return {tensor: arr.reshape(shapes[tensor]) for tensor, arr in dense.items()}
