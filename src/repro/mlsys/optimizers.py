"""Optimizers applied by the parameter server.

The Figure 1 experiments use mini-batch Stochastic Gradient Descent and Adam
(Kingma & Ba, 2014). In the parameter-server architecture workers send raw
gradients; the server aggregates them (a vector addition — the operation DAIET
can offload) and applies the optimizer to the shared parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import TrainingError


class Optimizer:
    """Base class: stateful update rule applied to named tensors."""

    name = "optimizer"

    def apply(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        """Update ``parameters`` in place using ``gradients``."""
        raise NotImplementedError


@dataclass
class SGD(Optimizer):
    """Plain mini-batch stochastic gradient descent."""

    learning_rate: float = 0.1
    name: str = "sgd"

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")

    def apply(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        for name, grad in gradients.items():
            if name not in parameters:
                raise TrainingError(f"gradient for unknown tensor {name!r}")
            parameters[name] -= self.learning_rate * grad


@dataclass
class Adam(Optimizer):
    """Adam optimizer (bias-corrected first and second moments)."""

    learning_rate: float = 0.001
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    name: str = "adam"
    _m: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _v: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _t: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if not 0.0 <= self.beta1 < 1.0 or not 0.0 <= self.beta2 < 1.0:
            raise TrainingError("beta1 and beta2 must lie in [0, 1)")

    def apply(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        self._t += 1
        for name, grad in gradients.items():
            if name not in parameters:
                raise TrainingError(f"gradient for unknown tensor {name!r}")
            if name not in self._m:
                self._m[name] = np.zeros_like(parameters[name])
                self._v[name] = np.zeros_like(parameters[name])
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            parameters[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def make_optimizer(name: str, **kwargs: float) -> Optimizer:
    """Factory used by the training driver and the benchmark harness."""
    lowered = name.lower()
    if lowered == "sgd":
        return SGD(**kwargs)  # type: ignore[arg-type]
    if lowered == "adam":
        return Adam(**kwargs)  # type: ignore[arg-type]
    raise TrainingError(f"unknown optimizer {name!r} (expected 'sgd' or 'adam')")
