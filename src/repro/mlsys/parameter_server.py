"""Parameter server.

"Workers are responsible for compute-intensive tasks while the parameter
server stores and maintains a set of shared parameters [...] In each iteration,
the worker sends its parameter updates to the server which aggregates the local
updates from each worker." (Section 3.) The aggregation is a per-element sum —
the commutative/associative operation DAIET can execute inside the network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TrainingError
from repro.mlsys.model import GradientUpdate
from repro.mlsys.optimizers import Optimizer


@dataclass
class ServerTrafficStats:
    """What the parameter server receives per step, with and without aggregation.

    ``elements_received`` counts every non-zero element sent by every worker
    (what crosses the network without in-network aggregation);
    ``unique_elements`` counts the distinct tensor elements updated this step
    (what would arrive if the network had already summed overlapping updates).
    The per-step ratio of the two is exactly the traffic-reduction opportunity
    the overlap study quantifies.
    """

    step: int
    elements_received: int = 0
    unique_elements: int = 0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of update traffic in-network aggregation would remove."""
        if self.elements_received == 0:
            return 0.0
        return 1.0 - self.unique_elements / self.elements_received


class ParameterServer:
    """Synchronous parameter server aggregating worker gradients per step."""

    def __init__(self, parameters: dict[str, np.ndarray], optimizer: Optimizer) -> None:
        if not parameters:
            raise TrainingError("parameter server needs at least one tensor")
        self._parameters = {name: tensor.copy() for name, tensor in parameters.items()}
        self.optimizer = optimizer
        self.steps_applied = 0
        self.traffic: list[ServerTrafficStats] = []

    # ------------------------------------------------------------------ #
    # Worker-facing API
    # ------------------------------------------------------------------ #
    def pull(self) -> dict[str, np.ndarray]:
        """Current parameter snapshot (what workers fetch at step start)."""
        return {name: tensor.copy() for name, tensor in self._parameters.items()}

    def push(self, updates: list[GradientUpdate]) -> ServerTrafficStats:
        """Aggregate one synchronous round of worker updates and apply them."""
        if not updates:
            raise TrainingError("push() needs at least one worker update")
        stats = ServerTrafficStats(step=self.steps_applied)
        aggregated: dict[str, np.ndarray] = {
            name: np.zeros_like(tensor) for name, tensor in self._parameters.items()
        }
        touched: dict[str, np.ndarray] = {
            name: np.zeros(tensor.size, dtype=bool) for name, tensor in self._parameters.items()
        }
        for update in updates:
            for name, grad in update.gradients.items():
                if name not in aggregated:
                    raise TrainingError(f"update for unknown tensor {name!r}")
                if grad.shape != aggregated[name].shape:
                    raise TrainingError(
                        f"gradient shape mismatch for {name!r}: {grad.shape} vs "
                        f"{aggregated[name].shape}"
                    )
                aggregated[name] += grad
                nonzero = np.flatnonzero(grad)
                stats.elements_received += nonzero.size
                touched[name][nonzero] = True
        stats.unique_elements = int(sum(mask.sum() for mask in touched.values()))

        # Average the summed gradients over the number of workers so that the
        # learning rate is independent of the worker count.
        for name in aggregated:
            aggregated[name] /= len(updates)
        self.optimizer.apply(self._parameters, aggregated)
        self.steps_applied += 1
        self.traffic.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def parameters(self) -> dict[str, np.ndarray]:
        """Reference to the live parameter tensors (read-only by convention)."""
        return self._parameters

    def traffic_reduction_series(self) -> list[float]:
        """Per-step reduction ratio achievable by in-network aggregation."""
        return [stats.reduction_ratio for stats in self.traffic]
