"""Fault-churn tests: loss, crashes, flaps, stragglers and recovery.

Promoted from the original failure-injection suite. The paper explicitly
defers failure handling ("In the current prototype, we do not address the
issue of packet losses, which we leave as future work"). The reproduction
goes further on two axes:

* **loss** (the original suite): without the reliability layer arriving
  pairs are never *wrong*, only missing; with ``reliability=True`` the
  aggregate is bit-identical to a lossless run.
* **churn** (this PR): deterministic crash/flap/straggler schedules from
  :mod:`repro.netsim.faults`, heartbeat failover with tree re-planning and
  replay from :mod:`repro.core.failover`, and the twin-run oracle that a
  reliability-on churn run produces the fault-free aggregate bit for bit.

This module is also the registered oracle of the ``fault-gate`` compiled
fast path: ``TestFaultGateParity`` drives a gated (empty-plan) run and an
ungated run side by side and requires byte-identical outcomes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DaietConfig
from repro.core.controller import DaietController
from repro.core.daiet import DaietReceiver, DaietSystem
from repro.core.errors import SimulationError, TopologyError
from repro.core.failover import FailoverConfig, FailoverManager
from repro.core.functions import SUM, aggregate_pairs
from repro.core.packet import end_packet, packetize_pairs
from repro.netsim.faults import (
    SLOWDOWN_START,
    FaultPlan,
    install_faults,
)
from repro.netsim.links import Endpoint, Link
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology, leaf_spine
from repro.transport.packets import UdpDatagram


def lossy_rack(num_hosts: int, loss_rate: float) -> Topology:
    """A single-rack topology whose host uplinks drop packets."""
    topo = Topology(name="lossy_rack")
    topo.add_switch("tor")
    for i in range(num_hosts):
        topo.add_host(f"h{i}")
        topo.connect(f"h{i}", "tor", loss_rate=loss_rate)
    topo.validate()
    return topo


class TestLossyLinks:
    def test_loss_rate_validation(self):
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("b", 0), loss_rate=1.0)
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("b", 0), loss_rate=-0.1)

    def test_lossless_by_default(self):
        topo = lossy_rack(2, loss_rate=0.0)
        sim = NetworkSimulator(topo)
        for _ in range(50):
            sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
        sim.run()
        assert sim.stats.received_packets("h1") == 50
        assert sim.stats.total_losses() == 0

    def test_half_loss_drops_roughly_half(self):
        topo = lossy_rack(2, loss_rate=0.5)
        sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=7))
        for _ in range(400):
            sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
        sim.run()
        received = sim.stats.received_packets("h1")
        lost = sim.stats.total_losses()
        # Every packet is either delivered or lost on exactly one of its hops.
        assert received + lost == 400
        # Two lossy hops (host->tor, tor->host): expected delivery ≈ 0.25.
        assert 40 <= received <= 180
        assert lost > 100

    def test_loss_is_deterministic_given_seed(self):
        def run(seed: int) -> int:
            topo = lossy_rack(2, loss_rate=0.3)
            sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
            for _ in range(100):
                sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
            sim.run()
            return sim.stats.received_packets("h1")

        assert run(3) == run(3)

    def test_lost_packets_still_consume_serialization_time(self):
        # A dropped packet occupied the sender's NIC and the link for its
        # serialization time; the link's busy horizon must advance exactly as
        # in a lossless run, or drops would erase congestion.
        def busy_until(loss_rate: float, seed: int) -> float:
            topo = lossy_rack(2, loss_rate=loss_rate)
            sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
            for _ in range(50):
                sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=1000))
            sim.run()
            link = topo.link_between("h0", "tor")
            return sim._link_busy_until[(link.name, "h0")]

        assert busy_until(0.5, seed=7) == busy_until(0.0, seed=7)


class TestDaietUnderLoss:
    def _run_daiet(self, loss_rate: float, seed: int = 1) -> tuple[dict, dict]:
        """Send three mappers' pairs over a (possibly lossy) rack; return
        (received aggregate, ground-truth aggregate)."""
        topo = lossy_rack(4, loss_rate=loss_rate)
        sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
        config = DaietConfig(register_slots=1024, reliable_end=True)
        controller = DaietController(topo, config)
        job = controller.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
        tree = job.tree_for_reducer("h3")
        receiver = DaietReceiver(
            host="h3", tree_id=tree.tree_id, function=SUM,
            expected_ends=tree.children_count("h3"),
        )
        sim.host("h3").set_receiver(receiver.receive)

        all_pairs = []
        for mapper in ("h0", "h1", "h2"):
            pairs = [(f"{mapper}key{i}", i + 1) for i in range(20)] + [("shared", 1)]
            all_pairs.extend(pairs)
            for packet in packetize_pairs(
                pairs, tree_id=tree.tree_id, src=mapper, dst="h3", config=config
            ):
                sim.send(mapper, packet)
            # Application-level END retransmission (the reliable_end extension
            # makes duplicates idempotent at the switch).
            sim.send(mapper, end_packet(tree.tree_id, mapper, "h3", config))
        sim.run()
        return receiver.result(), aggregate_pairs(all_pairs, SUM)

    def test_lossless_run_is_exact(self):
        received, truth = self._run_daiet(loss_rate=0.0)
        assert received == truth

    def test_duplicate_ends_are_idempotent_without_loss(self):
        # The helper always sends each END twice (original + retransmission);
        # with reliable_end the switch must flush exactly once and the result
        # stays exact.
        received, truth = self._run_daiet(loss_rate=0.0, seed=9)
        assert received == truth

    def test_loss_degrades_but_never_corrupts(self):
        received, truth = self._run_daiet(loss_rate=0.05, seed=5)
        # Some pairs may be missing (the paper's acknowledged limitation), but
        # every value that did arrive must be a partial sum of true
        # contributions — never larger than the ground truth.
        assert received  # something still got through
        for key, value in received.items():
            assert key in truth
            assert value <= truth[key]


class TestDaietReliableUnderLoss:
    """With the reliability layer on, loss costs time — never correctness."""

    def _run(self, loss_rate: float, seed: int) -> None:
        config = DaietConfig(register_slots=128, reliability=True)
        system = DaietSystem(
            lossy_rack(4, loss_rate), config, SimulatorConfig(loss_seed=seed)
        )
        system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
        all_pairs = []
        for mapper in ("h0", "h1", "h2"):
            pairs = [(f"{mapper}key{i}", i + 1) for i in range(40)] + [("shared", 1)]
            all_pairs.extend(pairs)
            system.send_pairs(mapper, "h3", pairs)
        system.run()
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == aggregate_pairs(all_pairs, SUM)

    @pytest.mark.parametrize("loss_rate", [0.0, 0.01, 0.05, 0.2])
    def test_exact_aggregate_under_loss(self, loss_rate):
        self._run(loss_rate, seed=23)

    def test_exact_across_seeds(self):
        for seed in (1, 2, 3, 4):
            self._run(0.05, seed=seed)


# ---------------------------------------------------------------------- #
# Churn: fault plans, the compiled gate, crashes, flaps and stragglers
# ---------------------------------------------------------------------- #
def _churn_system(reliability: bool) -> tuple[DaietSystem, object]:
    """A 2x2 leaf-spine DAIET system with the churn test job installed."""
    topo = leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
    config = DaietConfig(
        reliability=reliability,
        retain_for_replay=reliability,
        retransmit_timeout=1e-4,
    )
    system = DaietSystem(topo, config, SimulatorConfig())
    job = system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
    return system, job


def _churn_partitions() -> dict[str, list[tuple[str, int]]]:
    return {
        "h0": [(f"k{i}", i) for i in range(40)],
        "h1": [(f"k{i}", 2 * i) for i in range(20, 60)],
        "h2": [(f"k{i}", 3) for i in range(0, 80, 2)],
    }


def _send_partitions(system: DaietSystem) -> None:
    for mapper, pairs in sorted(_churn_partitions().items()):
        system.send_pairs(mapper, "h3", pairs)


def _churn_truth() -> dict[str, int]:
    return aggregate_pairs(
        [pair for pairs in _churn_partitions().values() for pair in pairs], SUM
    )


def _tree_spine(system: DaietSystem) -> str:
    tree = system.tree_for("h3")
    spines = sorted(
        node.name for node in tree.switches() if node.name.startswith("spine")
    )
    assert len(spines) == 1
    return spines[0]


def _fault_free_time(reliability: bool) -> float:
    system, _job = _churn_system(reliability)
    _send_partitions(system)
    system.run()
    assert system.receiver("h3").done
    return system.simulator.now


class TestFaultPlan:
    def test_builders_chain_and_sort(self):
        plan = (
            FaultPlan()
            .switch_restart(2e-6, "spine0")
            .switch_crash(1e-6, "spine0")
            .link_flap(3e-6, "leaf0", "spine0", duration=1e-6)
        )
        times = [event.time for event in plan.sorted_events()]
        assert times == sorted(times)
        assert plan.crash_targets() == ["spine0"]

    def test_validation_rejects_bad_schedules(self):
        with pytest.raises(SimulationError):
            FaultPlan().switch_crash(-1.0, "spine0")
        with pytest.raises(SimulationError):
            FaultPlan().link_flap(0.0, "a", "b", duration=0.0)
        with pytest.raises(SimulationError):
            FaultPlan().slowdown(0.0, "a", "b", factor=0.5)

    def test_injector_validates_targets_against_topology(self):
        system, _job = _churn_system(reliability=False)
        with pytest.raises(TopologyError):
            install_faults(
                system.simulator, FaultPlan().switch_crash(1e-6, "nope")
            )
        with pytest.raises(SimulationError):
            # h0 is a host, not a switch.
            install_faults(system.simulator, FaultPlan().switch_crash(1e-6, "h0"))

    def test_random_flaps_are_seed_deterministic(self):
        links = [("leaf0", "spine0"), ("leaf0", "spine1"), ("leaf1", "spine0")]
        kwargs = dict(count=5, start=1e-6, window=5e-6, duration=1e-6)
        plan_a = FaultPlan.random_flaps(links, seed=11, **kwargs)
        plan_b = FaultPlan.random_flaps(links, seed=11, **kwargs)
        plan_c = FaultPlan.random_flaps(links, seed=12, **kwargs)
        assert plan_a.sorted_events() == plan_b.sorted_events()
        assert plan_a.sorted_events() != plan_c.sorted_events()


class TestFaultGateParity:
    """Twin-path oracle of the ``fault-gate`` compiled fast path."""

    def _run(self, install_empty_gate: bool) -> tuple[dict, float, int, int]:
        system, _job = _churn_system(reliability=True)
        if install_empty_gate:
            install_faults(system.simulator, FaultPlan())
        _send_partitions(system)
        events = system.run()
        stats = system.simulator.stats
        return (
            system.receiver("h3").result(),
            system.simulator.now,
            events,
            stats.total_link_packets(),
        )

    def test_empty_plan_is_pass_through(self):
        # The gate with nothing down must be byte-identical to no gate at
        # all: same aggregate, same completion time, same event and packet
        # counts.
        assert self._run(True) == self._run(False)

    def test_gated_drops_are_counted_never_silent(self):
        system, _job = _churn_system(reliability=False)
        spine = _tree_spine(system)
        install_faults(
            system.simulator, FaultPlan().switch_crash(2e-6, spine)
        )
        _send_partitions(system)
        system.run()
        stats = system.simulator.stats
        assert stats.total_fault_drops() > 0
        assert stats.fault_drops == stats.snapshot()["fault_drops"]


class TestCrashChurn:
    """Spine crash mid-round: determinism, recovery and bounded degradation."""

    def _spine_kill(
        self, reliability: bool, with_failover: bool
    ) -> tuple[DaietSystem, FailoverManager | None]:
        crash_time = 0.35 * _fault_free_time(reliability)
        system, _job = _churn_system(reliability)
        spine = _tree_spine(system)
        injector = install_faults(
            system.simulator, FaultPlan().switch_crash(crash_time, spine)
        )
        manager = None
        if with_failover:
            manager = FailoverManager(
                system, injector, FailoverConfig(heartbeat_interval=2.5e-4)
            )
            manager.start()
        _send_partitions(system)
        system.run()
        return system, manager

    def test_twin_run_oracle_recovery_matches_fault_free(self):
        # The headline guarantee: a reliability-on churn run, recovered by
        # the failover manager, produces the fault-free aggregate bit for
        # bit (fresh tree epoch + full replay of the retained history).
        system, manager = self._spine_kill(reliability=True, with_failover=True)
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == _churn_truth()
        assert any("re-planned" in entry for _t, entry in manager.log)
        assert any("replayed" in entry for _t, entry in manager.log)

    def test_crash_mid_round_is_deterministic(self):
        def run() -> tuple:
            system, manager = self._spine_kill(True, True)
            return (
                system.receiver("h3").result(),
                system.simulator.now,
                tuple(manager.log),
                tuple(system.simulator.fault_injector.log),
            )

        assert run() == run()

    def test_static_reliability_on_terminates_with_reported_deficit(self):
        # No failover manager: the reliability layer cannot resurrect wiped
        # switch state, but the run must still terminate (pull give-up), and
        # the received values are never larger than the truth.
        system, _ = self._spine_kill(reliability=True, with_failover=False)
        receiver = system.receiver("h3")
        assert not receiver.done
        truth = _churn_truth()
        for key, value in receiver.result().items():
            assert value <= truth[key]

    def test_reliability_off_degrades_bounded(self):
        system, manager = self._spine_kill(reliability=False, with_failover=True)
        receiver = system.receiver("h3")
        truth = _churn_truth()
        received = receiver.result()
        assert sum(received.values()) <= sum(truth.values())
        for key, value in received.items():
            assert value <= truth[key]
        assert any("degraded" in entry for _t, entry in manager.log)

    def test_failover_releases_crashed_switch_resources(self):
        system, _ = self._spine_kill(reliability=True, with_failover=True)
        live = system.tree_for("h3").tree_id
        for switch in ("spine0", "spine1", "leaf0", "leaf1"):
            ledger = system.topology.get(switch).switch.ledger
            # Only the replacement tree may hold SRAM anywhere.
            for owner in ledger.allocations():
                assert owner == f"tree{live}"


class TestFlapDuringEnd:
    def test_flap_across_flush_window_recovers_exactly(self):
        # Down the tree's leaf0 uplink across the whole END/flush window:
        # the aggregated flush burst dies on the downed link, leaving no
        # SACK gap below it. The recursive pull must climb the tree and
        # re-drive the buffered flush once the link is back.
        t_free = _fault_free_time(reliability=True)
        system, _job = _churn_system(reliability=True)
        spine = _tree_spine(system)
        install_faults(
            system.simulator,
            FaultPlan().link_flap(0.3 * t_free, "leaf0", spine, duration=t_free),
        )
        _send_partitions(system)
        system.run()
        receiver = system.receiver("h3")
        assert system.simulator.stats.total_fault_drops() > 0
        assert receiver.done
        assert receiver.result() == _churn_truth()

    def test_flap_without_reliability_never_corrupts(self):
        t_free = _fault_free_time(reliability=False)
        system, _job = _churn_system(reliability=False)
        spine = _tree_spine(system)
        install_faults(
            system.simulator,
            FaultPlan().link_flap(0.3 * t_free, "leaf0", spine, duration=t_free),
        )
        _send_partitions(system)
        system.run()
        truth = _churn_truth()
        for key, value in system.receiver("h3").result().items():
            assert value <= truth[key]


class TestStraggler:
    def test_slowdown_stretches_but_completes_exactly(self):
        t_free = _fault_free_time(reliability=True)
        system, _job = _churn_system(reliability=True)
        spine = _tree_spine(system)
        plan = FaultPlan()
        for leaf in ("leaf0", "leaf1"):
            plan.slowdown(0.2 * t_free, leaf, spine, factor=200.0)
        install_faults(system.simulator, plan)
        _send_partitions(system)
        system.run()
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == _churn_truth()
        # The straggler cost time — an order of magnitude — never data.
        assert system.simulator.now > 10 * t_free

    def test_slowdown_end_restores_link_baseline(self):
        system, _job = _churn_system(reliability=False)
        link = system.topology.link_between("leaf0", "spine0")
        baseline = (link.bandwidth_bps, link.propagation_s)
        install_faults(
            system.simulator,
            FaultPlan().slowdown(1e-6, "leaf0", "spine0", factor=50.0, duration=1e-6),
        )
        system.simulator.run()
        assert (link.bandwidth_bps, link.propagation_s) == baseline

    def test_rebalance_off_straggler_beats_static(self):
        t_free = _fault_free_time(reliability=True)

        def run(rebalance: bool) -> float:
            system, job = _churn_system(reliability=True)
            spine = _tree_spine(system)
            plan = FaultPlan()
            for leaf in ("leaf0", "leaf1"):
                plan.slowdown(0.2 * t_free, leaf, spine, factor=200.0)
            injector = install_faults(system.simulator, plan)
            if rebalance:
                manager = FailoverManager(system, injector)
                moved: list[str] = []

                def on_fault(event) -> None:
                    if event.kind == SLOWDOWN_START and not moved:
                        moved.append(spine)
                        manager.move_tree(job, "h3", exclude={spine})

                injector.observers.append(on_fault)
            _send_partitions(system)
            system.run()
            receiver = system.receiver("h3")
            assert receiver.done
            assert receiver.result() == _churn_truth()
            return system.simulator.now

        assert run(rebalance=True) < run(rebalance=False)


class TestSanitizedChurn:
    def test_faulted_bucket_balances_conservation(self, monkeypatch):
        # Under REPRO_SANITIZE=1 the conservation ledger must account every
        # gated packet in its ``faulted`` bucket — the run completing at all
        # proves conservation held at every event.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        crash_time = 0.35 * _fault_free_time(reliability=True)
        system, _job = _churn_system(reliability=True)
        spine = _tree_spine(system)
        injector = install_faults(
            system.simulator, FaultPlan().switch_crash(crash_time, spine)
        )
        FailoverManager(system, injector).start()
        _send_partitions(system)
        system.run()
        sanitizer = system.simulator.sanitizer
        assert sanitizer is not None
        assert sum(sanitizer.ledger.faulted.values()) > 0
        assert sum(sanitizer.ledger.faulted.values()) == (
            system.simulator.stats.total_fault_drops()
        )
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == _churn_truth()


class TestHostCrash:
    def test_crashed_reducer_drops_are_counted(self):
        # Crash the reducer host mid-round: packets already in flight
        # towards it are destroyed by the device wrap and must be counted,
        # never silently vanish.
        t_free = _fault_free_time(reliability=False)
        system, _job = _churn_system(reliability=False)
        install_faults(
            system.simulator, FaultPlan().host_crash(0.5 * t_free, "h3")
        )
        _send_partitions(system)
        system.run()
        stats = system.simulator.stats
        assert stats.total_fault_drops() > 0
        truth = _churn_truth()
        for key, value in system.receiver("h3").result().items():
            assert value <= truth[key]
