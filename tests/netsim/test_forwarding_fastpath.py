"""The compiled forwarding path must be observationally identical to the
generic pipeline.

``SwitchDevice.deliver`` forwards baseline traffic (UDP datagrams, TCP
segments, DAIET packets with no steering entry) through a version-validated
``dst -> egress`` cache instead of the generic pipeline. Every counter the
generic path touches — switch packets/bytes in/out, drops, parser charges,
``packets_processed``, both tables' hit/miss counts — must come out the
same, and control-plane mutations must invalidate the cache.
"""

from __future__ import annotations

from repro.core.packet import DaietPacket, DaietPacketType
from repro.dataplane.actions import SetMetadataAction
from repro.dataplane.tables import FlowRule
from repro.netsim.devices import FORWARDING_TABLE, SwitchDevice
from repro.transport.packets import TcpSegment, UdpDatagram


def _forwarding_switch(name: str = "sw") -> SwitchDevice:
    device = SwitchDevice(name, num_ports=8)
    for dst, port in (("h0", 0), ("h1", 1), ("h2", 2)):
        device.switch.install_rule(
            FlowRule.create(
                table=FORWARDING_TABLE,
                match={"dst": dst},
                action_name="forward",
                action_params={"egress_port": port},
            )
        )
    return device


def _observable_state(device: SwitchDevice) -> dict:
    return {
        "counters": device.switch.counters.snapshot(),
        "parser": (
            device.switch.parser.packets_parsed,
            device.switch.parser.bytes_parsed,
        ),
        "processed": device.switch.pipeline.packets_processed,
        "daiet_hits": (device.daiet_table.hit_count, device.daiet_table.miss_count),
        "fwd_hits": (
            device.forwarding_table.hit_count,
            device.forwarding_table.miss_count,
        ),
    }


def _packets() -> list:
    return [
        UdpDatagram(src="h0", dst="h1", sport=5, dport=9, payload_bytes=64),
        UdpDatagram(src="h1", dst="h2", payload_bytes=1),
        TcpSegment(src="h2", dst="h0", payload_bytes=512, fin=True),
        TcpSegment(src="h0", dst="h2", seq=100, payload_bytes=9),
        # DAIET data with NO steering entry: the UDP-baseline shape.
        DaietPacket(
            tree_id=42,
            src="h0",
            dst="h1",
            packet_type=DaietPacketType.DATA,
            pairs=(("ant", 1), ("bee", 2)),
        ),
        # Unknown destination: a forwarding miss (counted drop).
        UdpDatagram(src="h0", dst="nowhere", payload_bytes=7),
    ]


class TestForwardingFastPathEquivalence:
    def test_fast_path_matches_generic_pipeline(self):
        fast = _forwarding_switch()
        slow = _forwarding_switch()
        for packet in _packets():
            nbytes = packet.wire_bytes()
            out_fast = fast.deliver(packet, 3, nbytes)
            out_slow = slow.switch.receive(packet, 3, nbytes)
            assert out_fast == out_slow
        assert _observable_state(fast) == _observable_state(slow)

    def test_cache_invalidated_by_rule_install(self):
        device = _forwarding_switch()
        packet = UdpDatagram(src="h0", dst="h9", payload_bytes=4)
        # First delivery: miss -> drop (and the miss is cached).
        assert device.deliver(packet, 3, packet.wire_bytes()) == []
        assert device.switch.counters.packets_dropped == 1
        device.switch.install_rule(
            FlowRule.create(
                table=FORWARDING_TABLE,
                match={"dst": "h9"},
                action_name="forward",
                action_params={"egress_port": 5},
            )
        )
        assert device.deliver(packet, 3, packet.wire_bytes()) == [(5, packet)]

    def test_cache_invalidated_by_rule_removal(self):
        device = _forwarding_switch()
        packet = UdpDatagram(src="h0", dst="h1", payload_bytes=4)
        assert device.deliver(packet, 3, packet.wire_bytes()) == [(1, packet)]
        device.switch.remove_rule(FORWARDING_TABLE, {"dst": "h1"})
        assert device.deliver(packet, 3, packet.wire_bytes()) == []

    def test_non_standard_action_falls_back(self):
        """A non-ForwardAction entry must not be served from the fast path."""
        fast = _forwarding_switch()
        slow = _forwarding_switch()
        for device in (fast, slow):
            table = device.forwarding_table
            table.register_action("mark", SetMetadataAction(key="marked", value=True))
            table.install(
                FlowRule.create(
                    table=FORWARDING_TABLE,
                    match={"dst": "weird"},
                    action_name="mark",
                )
            )
        packet = UdpDatagram(src="h0", dst="weird", payload_bytes=4)
        out_fast = fast.deliver(packet, 3, packet.wire_bytes())
        out_slow = slow.switch.receive(packet, 3, packet.wire_bytes())
        assert out_fast == out_slow
        assert _observable_state(fast) == _observable_state(slow)

    def test_non_default_miss_action_falls_back(self):
        """A custom table default action must run on misses, exactly as the
        generic pipeline would (the fast path only models a free NoAction)."""
        fast = _forwarding_switch()
        slow = _forwarding_switch()
        for device in (fast, slow):
            # A miss on l3_forward now forwards to a punt port instead of
            # dropping (set_default_action bumps the table version, so the
            # fast path's cached miss must be invalidated AND bypassed).
            device.forwarding_table.set_default_action(SetMetadataAction(key="egress_port", value=7))
        unknown = UdpDatagram(src="h0", dst="mystery", payload_bytes=3)
        known = UdpDatagram(src="h0", dst="h1", payload_bytes=3)
        for packet in (unknown, known, unknown):
            out_fast = fast.deliver(packet, 3, packet.wire_bytes())
            out_slow = slow.switch.receive(packet, 3, packet.wire_bytes())
            assert out_fast == out_slow
        assert _observable_state(fast) == _observable_state(slow)

    def test_daiet_steered_traffic_unaffected(self):
        """Packets with a steering entry still go to the aggregation path."""
        from repro.core.config import DaietConfig
        from repro.core.daiet import DaietSystem

        system = DaietSystem.single_rack(num_hosts=3, config=DaietConfig(register_slots=64))
        system.install_job(mappers=["h0", "h1"], reducers=["h2"])
        system.send_pairs("h0", "h2", [("ant", 1)])
        system.send_pairs("h1", "h2", [("ant", 2)])
        system.run()
        assert system.receiver("h2").result() == {"ant": 3}
