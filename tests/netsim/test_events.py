"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SimulationError
from repro.netsim.events import EventScheduler


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order: list[str] = []
        scheduler.schedule(2.0, order.append, "late")
        scheduler.schedule(1.0, order.append, "early")
        scheduler.run()
        assert order == ["early", "late"]
        assert scheduler.now == pytest.approx(2.0)

    def test_equal_timestamps_preserve_scheduling_order(self):
        scheduler = EventScheduler()
        order: list[int] = []
        for i in range(5):
            scheduler.schedule(1.0, order.append, i)
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(5.0, seen.append, "x")
        scheduler.run()
        assert seen == ["x"] and scheduler.now == pytest.approx(5.0)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        seen = []
        event = scheduler.schedule(1.0, seen.append, "cancelled")
        scheduler.schedule(2.0, seen.append, "kept")
        event.cancel()
        executed = scheduler.run()
        assert seen == ["kept"]
        assert executed == 1

    def test_run_until_stops_before_future_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, seen.append, "a")
        scheduler.schedule(10.0, seen.append, "b")
        scheduler.run(until=5.0)
        assert seen == ["a"]
        assert scheduler.now == pytest.approx(5.0)
        scheduler.run()
        assert seen == ["a", "b"]

    def test_max_events_safety_valve(self):
        scheduler = EventScheduler()

        def reschedule() -> None:
            scheduler.schedule(0.001, reschedule)

        scheduler.schedule(0.0, reschedule)
        executed = scheduler.run(max_events=50)
        assert executed == 50

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        seen = []

        def first() -> None:
            seen.append("first")
            scheduler.schedule(1.0, lambda: seen.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert seen == ["first", "second"]

    def test_len_and_peek(self):
        scheduler = EventScheduler()
        assert len(scheduler) == 0
        assert scheduler.peek_time() is None
        scheduler.schedule(3.0, lambda: None)
        assert len(scheduler) == 1
        assert scheduler.peek_time() == pytest.approx(3.0)

    def test_reset(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        scheduler.reset()
        assert scheduler.now == 0.0
        assert len(scheduler) == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40))
    def test_execution_times_are_monotone(self, delays):
        scheduler = EventScheduler()
        times: list[float] = []
        for delay in delays:
            scheduler.schedule(delay, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == sorted(times)


class TestCancelledEventCompaction:
    """The cancelled-Timer litter fix: the heap must not grow without bound."""

    def test_len_is_exact_with_cancelled_events(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule(1.0 + i, lambda: None) for i in range(10)]
        for event in events[:4]:
            event.cancel()
        assert len(scheduler) == 6

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(1.0, lambda: None)
        kept = scheduler.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(scheduler) == 1
        seen = []
        scheduler.schedule(3.0, seen.append, "x")
        scheduler.run()
        assert seen == ["x"]
        assert not kept.cancelled

    def test_heap_compacts_when_mostly_cancelled(self):
        scheduler = EventScheduler()
        live = [scheduler.schedule(1e6 + i, lambda: None) for i in range(10)]
        litter = [scheduler.schedule(10.0 + i, lambda: None) for i in range(500)]
        for event in litter:
            event.cancel()
        # Lazy compaction must have dropped (most of) the cancelled litter
        # without waiting for the events to come due.
        assert len(scheduler._queue) < 100
        assert len(scheduler) == len(live)

    def test_restartable_timer_rearm_does_not_leak(self):
        from repro.netsim.events import Timer

        scheduler = EventScheduler()
        fired = []
        timer = Timer(scheduler, lambda: fired.append(scheduler.now))
        for _ in range(5_000):
            timer.start(1.0)  # each restart cancels the previous deadline
        # Only the latest arming may remain pending (plus bounded litter).
        assert len(scheduler) == 1
        assert len(scheduler._queue) < 200
        scheduler.run()
        assert len(fired) == 1

    def test_cancelled_events_skipped_after_compaction(self):
        scheduler = EventScheduler()
        seen = []
        cancelled = [scheduler.schedule(1.0, seen.append, i) for i in range(200)]
        scheduler.schedule(2.0, seen.append, "kept")
        for event in cancelled:
            event.cancel()
        executed = scheduler.run()
        assert executed == 1
        assert seen == ["kept"]
        assert scheduler.events_executed == 1

    def test_peek_time_skips_cancelled_head(self):
        scheduler = EventScheduler()
        head = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(5.0, lambda: None)
        head.cancel()
        assert scheduler.peek_time() == 5.0

    def test_cancel_after_execution_is_a_noop(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        event.cancel()  # late cancel of an executed event: harmless
        assert len(scheduler) == 0
        seen = []
        scheduler.schedule(2.0, seen.append, "later")
        assert len(scheduler) == 1
        scheduler.run()
        assert seen == ["later"]

    def test_reset_clears_cancellation_state(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(1.0, lambda: None)
        event.cancel()
        scheduler.reset()
        assert len(scheduler) == 0
        scheduler.schedule(1.0, lambda: None)
        assert len(scheduler) == 1
