"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SimulationError
from repro.netsim.events import EventScheduler


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order: list[str] = []
        scheduler.schedule(2.0, order.append, "late")
        scheduler.schedule(1.0, order.append, "early")
        scheduler.run()
        assert order == ["early", "late"]
        assert scheduler.now == pytest.approx(2.0)

    def test_equal_timestamps_preserve_scheduling_order(self):
        scheduler = EventScheduler()
        order: list[int] = []
        for i in range(5):
            scheduler.schedule(1.0, order.append, i)
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(5.0, seen.append, "x")
        scheduler.run()
        assert seen == ["x"] and scheduler.now == pytest.approx(5.0)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        seen = []
        event = scheduler.schedule(1.0, seen.append, "cancelled")
        scheduler.schedule(2.0, seen.append, "kept")
        event.cancel()
        executed = scheduler.run()
        assert seen == ["kept"]
        assert executed == 1

    def test_run_until_stops_before_future_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, seen.append, "a")
        scheduler.schedule(10.0, seen.append, "b")
        scheduler.run(until=5.0)
        assert seen == ["a"]
        assert scheduler.now == pytest.approx(5.0)
        scheduler.run()
        assert seen == ["a", "b"]

    def test_max_events_safety_valve(self):
        scheduler = EventScheduler()

        def reschedule() -> None:
            scheduler.schedule(0.001, reschedule)

        scheduler.schedule(0.0, reschedule)
        executed = scheduler.run(max_events=50)
        assert executed == 50

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        seen = []

        def first() -> None:
            seen.append("first")
            scheduler.schedule(1.0, lambda: seen.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert seen == ["first", "second"]

    def test_len_and_peek(self):
        scheduler = EventScheduler()
        assert len(scheduler) == 0
        assert scheduler.peek_time() is None
        scheduler.schedule(3.0, lambda: None)
        assert len(scheduler) == 1
        assert scheduler.peek_time() == pytest.approx(3.0)

    def test_reset(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        scheduler.reset()
        assert scheduler.now == 0.0
        assert len(scheduler) == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40))
    def test_execution_times_are_monotone(self, delays):
        scheduler = EventScheduler()
        times: list[float] = []
        for delay in delays:
            scheduler.schedule(delay, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == sorted(times)
