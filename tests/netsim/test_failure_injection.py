"""Failure-injection tests: lossy links and how DAIET behaves under loss.

The paper explicitly defers packet-loss handling ("In the current prototype,
we do not address the issue of packet losses, which we leave as future work").
The reproduction goes further: without the reliability layer these tests
document graceful degradation (packets disappear but arriving pairs are never
*wrong*, and idempotent END handling — now the default — tolerates duplicated
END packets); with ``DaietConfig(reliability=True)`` the end-host reliability
subsystem makes the aggregate bit-identical to a lossless run (see
``TestDaietReliableUnderLoss`` and the ``loss-sweep`` experiment).
"""

from __future__ import annotations

import pytest

from repro.core.config import DaietConfig
from repro.core.controller import DaietController
from repro.core.daiet import DaietReceiver
from repro.core.errors import TopologyError
from repro.core.functions import SUM, aggregate_pairs
from repro.core.packet import end_packet, packetize_pairs
from repro.netsim.links import Endpoint, Link
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import Topology
from repro.transport.packets import UdpDatagram


def lossy_rack(num_hosts: int, loss_rate: float) -> Topology:
    """A single-rack topology whose host uplinks drop packets."""
    topo = Topology(name="lossy_rack")
    topo.add_switch("tor")
    for i in range(num_hosts):
        topo.add_host(f"h{i}")
        topo.connect(f"h{i}", "tor", loss_rate=loss_rate)
    topo.validate()
    return topo


class TestLossyLinks:
    def test_loss_rate_validation(self):
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("b", 0), loss_rate=1.0)
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("b", 0), loss_rate=-0.1)

    def test_lossless_by_default(self):
        topo = lossy_rack(2, loss_rate=0.0)
        sim = NetworkSimulator(topo)
        for _ in range(50):
            sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
        sim.run()
        assert sim.stats.received_packets("h1") == 50
        assert sim.stats.total_losses() == 0

    def test_half_loss_drops_roughly_half(self):
        topo = lossy_rack(2, loss_rate=0.5)
        sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=7))
        for _ in range(400):
            sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
        sim.run()
        received = sim.stats.received_packets("h1")
        lost = sim.stats.total_losses()
        # Every packet is either delivered or lost on exactly one of its hops.
        assert received + lost == 400
        # Two lossy hops (host->tor, tor->host): expected delivery ≈ 0.25.
        assert 40 <= received <= 180
        assert lost > 100

    def test_loss_is_deterministic_given_seed(self):
        def run(seed: int) -> int:
            topo = lossy_rack(2, loss_rate=0.3)
            sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
            for _ in range(100):
                sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
            sim.run()
            return sim.stats.received_packets("h1")

        assert run(3) == run(3)

    def test_lost_packets_still_consume_serialization_time(self):
        # A dropped packet occupied the sender's NIC and the link for its
        # serialization time; the link's busy horizon must advance exactly as
        # in a lossless run, or drops would erase congestion.
        def busy_until(loss_rate: float, seed: int) -> float:
            topo = lossy_rack(2, loss_rate=loss_rate)
            sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
            for _ in range(50):
                sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=1000))
            sim.run()
            link = topo.link_between("h0", "tor")
            return sim._link_busy_until[(link.name, "h0")]

        assert busy_until(0.5, seed=7) == busy_until(0.0, seed=7)


class TestDaietUnderLoss:
    def _run_daiet(self, loss_rate: float, seed: int = 1) -> tuple[dict, dict]:
        """Send three mappers' pairs over a (possibly lossy) rack; return
        (received aggregate, ground-truth aggregate)."""
        topo = lossy_rack(4, loss_rate=loss_rate)
        sim = NetworkSimulator(topo, SimulatorConfig(loss_seed=seed))
        config = DaietConfig(register_slots=1024, reliable_end=True)
        controller = DaietController(topo, config)
        job = controller.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
        tree = job.tree_for_reducer("h3")
        receiver = DaietReceiver(
            host="h3", tree_id=tree.tree_id, function=SUM,
            expected_ends=tree.children_count("h3"),
        )
        sim.host("h3").set_receiver(receiver.receive)

        all_pairs = []
        for mapper in ("h0", "h1", "h2"):
            pairs = [(f"{mapper}key{i}", i + 1) for i in range(20)] + [("shared", 1)]
            all_pairs.extend(pairs)
            for packet in packetize_pairs(
                pairs, tree_id=tree.tree_id, src=mapper, dst="h3", config=config
            ):
                sim.send(mapper, packet)
            # Application-level END retransmission (the reliable_end extension
            # makes duplicates idempotent at the switch).
            sim.send(mapper, end_packet(tree.tree_id, mapper, "h3", config))
        sim.run()
        return receiver.result(), aggregate_pairs(all_pairs, SUM)

    def test_lossless_run_is_exact(self):
        received, truth = self._run_daiet(loss_rate=0.0)
        assert received == truth

    def test_duplicate_ends_are_idempotent_without_loss(self):
        # The helper always sends each END twice (original + retransmission);
        # with reliable_end the switch must flush exactly once and the result
        # stays exact.
        received, truth = self._run_daiet(loss_rate=0.0, seed=9)
        assert received == truth

    def test_loss_degrades_but_never_corrupts(self):
        received, truth = self._run_daiet(loss_rate=0.05, seed=5)
        # Some pairs may be missing (the paper's acknowledged limitation), but
        # every value that did arrive must be a partial sum of true
        # contributions — never larger than the ground truth.
        assert received  # something still got through
        for key, value in received.items():
            assert key in truth
            assert value <= truth[key]


class TestDaietReliableUnderLoss:
    """With the reliability layer on, loss costs time — never correctness."""

    def _run(self, loss_rate: float, seed: int) -> None:
        from repro.core.daiet import DaietSystem

        config = DaietConfig(register_slots=128, reliability=True)
        system = DaietSystem(
            lossy_rack(4, loss_rate), config, SimulatorConfig(loss_seed=seed)
        )
        system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
        all_pairs = []
        for mapper in ("h0", "h1", "h2"):
            pairs = [(f"{mapper}key{i}", i + 1) for i in range(40)] + [("shared", 1)]
            all_pairs.extend(pairs)
            system.send_pairs(mapper, "h3", pairs)
        system.run()
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == aggregate_pairs(all_pairs, SUM)

    @pytest.mark.parametrize("loss_rate", [0.0, 0.01, 0.05, 0.2])
    def test_exact_aggregate_under_loss(self, loss_rate):
        self._run(loss_rate, seed=23)

    def test_exact_across_seeds(self):
        for seed in (1, 2, 3, 4):
            self._run(0.05, seed=seed)
