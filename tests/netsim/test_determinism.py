"""Determinism guards for the fast-path simulator core.

Every optimisation in the fast-path PR (tuple-based event heap, cached wire
sizes, the compiled switch path, dict-indexed tables/spillover) must keep the
simulation bit-for-bit reproducible: the same seed must produce identical
``TrafficStats`` snapshots, identical loss draws and identical final
aggregates on every run, with and without the reliability layer.
"""

from __future__ import annotations

import random

from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.simulator import SimulatorConfig
from repro.netsim.topology import Topology, leaf_spine, single_rack


def _lossy_rack(num_hosts: int, loss_rate: float) -> Topology:
    topo = Topology(name="determinism_rack")
    topo.add_switch("tor")
    for i in range(num_hosts):
        topo.add_host(f"h{i}")
        topo.connect(f"h{i}", "tor", loss_rate=loss_rate)
    topo.validate()
    return topo


def _partitions(num_workers: int, pairs_per_worker: int, seed: int):
    rng = random.Random(seed)
    words = [f"word{i:03d}" for i in range(120)]
    return [
        [(rng.choice(words), 1) for _ in range(pairs_per_worker)]
        for _ in range(num_workers)
    ]


def _run_once(reliability: bool, loss_rate: float, seed: int):
    """One full aggregation round; returns every observable artefact."""
    num_workers = 6
    partitions = _partitions(num_workers, 200, seed)
    config = DaietConfig(
        register_slots=64,
        reliability=reliability,
        retransmit_timeout=1e-4,
    )
    system = DaietSystem(
        _lossy_rack(num_workers + 1, loss_rate),
        config,
        SimulatorConfig(loss_seed=seed),
    )
    reducer = f"h{num_workers}"
    mappers = [f"h{i}" for i in range(num_workers)]
    system.install_job(mappers=mappers, reducers=[reducer])
    for mapper, pairs in zip(mappers, partitions):
        system.send_pairs(mapper, reducer, pairs)
    events = system.run()
    engine_counters = {
        key: counters.snapshot()
        for key, counters in system.controller.tree_counters().items()
    }
    return {
        "stats": system.simulator.stats.snapshot(),
        "losses": dict(system.simulator.stats.losses),
        "events": events,
        "now": system.simulator.now,
        "aggregate": system.receiver(reducer).result(),
        "engine_counters": engine_counters,
        "reliability": system.reliability_stats(),
    }


class TestSeededDeterminism:
    def test_two_runs_identical_without_reliability(self):
        a = _run_once(reliability=False, loss_rate=0.0, seed=7)
        b = _run_once(reliability=False, loss_rate=0.0, seed=7)
        assert a == b

    def test_two_runs_identical_with_reliability_and_loss(self):
        a = _run_once(reliability=True, loss_rate=0.03, seed=11)
        b = _run_once(reliability=True, loss_rate=0.03, seed=11)
        assert a == b
        # Loss actually happened, so the equality above covered the loss
        # draws, the retransmission schedule and the dedup machinery.
        assert sum(a["losses"].values()) > 0

    def test_loss_draws_follow_the_seed(self):
        a = _run_once(reliability=True, loss_rate=0.03, seed=11)
        c = _run_once(reliability=True, loss_rate=0.03, seed=12)
        assert a["losses"] != c["losses"]

    def test_aggregate_matches_ground_truth_under_loss(self):
        run = _run_once(reliability=True, loss_rate=0.03, seed=11)
        truth = aggregate_pairs(
            [pair for part in _partitions(6, 200, 11) for pair in part], SUM
        )
        assert run["aggregate"] == truth

    def test_reliability_does_not_change_the_lossless_aggregate(self):
        plain = _run_once(reliability=False, loss_rate=0.0, seed=7)
        reliable = _run_once(reliability=True, loss_rate=0.0, seed=7)
        assert plain["aggregate"] == reliable["aggregate"]


class TestSnapshotDeterminismAtScale:
    def test_leaf_spine_runs_are_reproducible(self):
        """A multi-switch fabric (multi-level trees) is equally deterministic."""

        def run():
            topo = leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=3)
            for link in topo.links:
                link.loss_rate = 0.01
            system = DaietSystem(
                topo,
                DaietConfig(register_slots=64, reliability=True, retransmit_timeout=1e-4),
                SimulatorConfig(loss_seed=5),
            )
            mappers = [f"h{i}" for i in range(1, 9)]
            system.install_job(mappers=mappers, reducers=["h0"])
            partitions = _partitions(8, 120, 3)
            for mapper, pairs in zip(mappers, partitions):
                system.send_pairs(mapper, "h0", pairs)
            system.run()
            return (
                system.simulator.stats.snapshot(),
                system.receiver("h0").result(),
                system.simulator.now,
            )

        assert run() == run()

    def test_single_rack_snapshot_insertion_order_is_stable(self):
        """Snapshots compare equal including dict insertion order."""
        a = _run_once(reliability=False, loss_rate=0.0, seed=3)
        b = _run_once(reliability=False, loss_rate=0.0, seed=3)
        assert list(a["stats"]["host_received"]) == list(b["stats"]["host_received"])
        assert list(a["stats"]["link_traffic"]) == list(b["stats"]["link_traffic"])


class TestSchedulerBackendDeterminism:
    """Heap and calendar backends must produce bit-identical simulations."""

    def test_calendar_backend_matches_heap(self, monkeypatch):
        import repro.netsim.events as events_module

        heap_run = _run_once(reliability=True, loss_rate=0.03, seed=11)
        # Force the calendar queue from the very first pending event.
        monkeypatch.setattr(events_module, "CALENDAR_THRESHOLD", 1)
        calendar_run = _run_once(reliability=True, loss_rate=0.03, seed=11)
        assert calendar_run == heap_run

    def test_mid_run_migration_matches_heap(self, monkeypatch):
        import repro.netsim.events as events_module

        heap_run = _run_once(reliability=False, loss_rate=0.0, seed=7)
        # A threshold crossed mid-run: the queue migrates while draining.
        monkeypatch.setattr(events_module, "CALENDAR_THRESHOLD", 100)
        migrated_run = _run_once(reliability=False, loss_rate=0.0, seed=7)
        assert migrated_run == heap_run


def test_plain_rack_smoke():
    """The helper topology itself is sound (guards the fixtures above)."""
    topo = single_rack(num_hosts=3)
    assert len(topo.hosts()) == 3
