"""The BFS/DAG router must be bit-identical to the networkx path oracle.

The fast router (one BFS per destination + path-count indexing) replaced a
per-(source, destination) ``sorted(nx.all_shortest_paths(...))`` enumeration.
Every next hop and every full path — including the hash-indexed ECMP choice
among equal-cost paths — must match what the enumeration would have picked,
or installed forwarding state (and every figure derived from it) silently
changes. These tests re-implement the old enumeration as an oracle and
compare exhaustively on ECMP-heavy fabrics.
"""

from __future__ import annotations

import hashlib

import networkx as nx

from repro.netsim.routing import compute_routes, paths_towards, shortest_path
from repro.netsim.topology import Topology, fat_tree, leaf_spine


def _oracle_path(topology: Topology, src: str, dst: str, seed: int = 0) -> list[str]:
    graph = topology.graph()
    paths = sorted(nx.all_shortest_paths(graph, src, dst))
    if len(paths) == 1:
        return paths[0]
    digest = hashlib.sha256(f"{seed}:{src}->{dst}".encode()).digest()
    return paths[int.from_bytes(digest[:4], "big") % len(paths)]


def _oracle_routes(topology: Topology, seed: int = 0) -> dict[str, dict[str, str]]:
    hosts = [h.name for h in topology.hosts()]
    return {
        switch.name: {
            dst: _oracle_path(topology, switch.name, dst, seed)[1] for dst in hosts
        }
        for switch in topology.switches()
    }


class TestRoutingOracleEquivalence:
    def test_fat_tree_next_hops_match(self):
        topo = fat_tree(4)
        assert compute_routes(topo).next_hops == _oracle_routes(topo)

    def test_leaf_spine_next_hops_match(self):
        topo = leaf_spine(num_leaves=4, num_spines=3, hosts_per_leaf=3)
        assert compute_routes(topo).next_hops == _oracle_routes(topo)

    def test_nonzero_ecmp_seed_matches(self):
        topo = leaf_spine(num_leaves=3, num_spines=4, hosts_per_leaf=2)
        assert compute_routes(topo, ecmp_seed=7).next_hops == _oracle_routes(
            topo, seed=7
        )

    def test_full_paths_match_on_ecmp_fabric(self):
        topo = fat_tree(4)
        hosts = [h.name for h in topo.hosts()]
        for src in hosts[:4]:
            for dst in hosts:
                if src != dst:
                    assert shortest_path(topo, src, dst) == _oracle_path(
                        topo, src, dst
                    ), (src, dst)

    def test_paths_towards_matches_per_source_calls(self):
        topo = leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=3)
        hosts = [h.name for h in topo.hosts()]
        dst = hosts[0]
        sources = hosts[1:]
        bulk = paths_towards(topo, dst, sources)
        for src in sources:
            assert bulk[src] == shortest_path(topo, src, dst)

    def test_ecmp_actually_exercised(self):
        """The fabrics above really have multiple equal-cost paths."""
        topo = fat_tree(4)
        graph = topo.graph()
        hosts = [h.name for h in topo.hosts()]
        assert any(
            len(list(nx.all_shortest_paths(graph, hosts[0], dst))) > 1
            for dst in hosts[1:]
        )
