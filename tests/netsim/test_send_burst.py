"""Burst injection must be indistinguishable from per-packet sends.

``NetworkSimulator.send_burst`` collapses a window of packets into one
scheduler event. Everything observable — traffic statistics, delivery order,
arrival times, loss draws on lossy links, and the event total returned by
``run()`` — must be identical to calling ``send`` once per packet.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError, TopologyError
from repro.netsim.simulator import NetworkSimulator, SimulatorConfig
from repro.netsim.topology import single_rack
from repro.transport.packets import UdpDatagram


def _simulator(loss_rate: float = 0.0) -> NetworkSimulator:
    topo = single_rack(num_hosts=3)
    if loss_rate:
        for link in topo.links:
            link.loss_rate = loss_rate
    return NetworkSimulator(topo, SimulatorConfig(loss_seed=11))


def _window(n: int) -> list[UdpDatagram]:
    return [
        UdpDatagram(src="h0", dst="h1", dport=7, payload_bytes=100 + i)
        for i in range(n)
    ]


def _arrivals(sim: NetworkSimulator) -> list[tuple[float, int]]:
    seen: list[tuple[float, int]] = []
    sim.host("h1").set_receiver(
        lambda packet: seen.append((sim.now, packet.payload_bytes))
    )
    return seen


class TestSendBurstEquivalence:
    @pytest.mark.parametrize("loss_rate", [0.0, 0.2])
    def test_burst_matches_per_packet_sends(self, loss_rate):
        solo = _simulator(loss_rate)
        solo_seen = _arrivals(solo)
        for packet in _window(25):
            solo.send("h0", packet)
        solo_events = solo.run()

        burst = _simulator(loss_rate)
        burst_seen = _arrivals(burst)
        assert burst.send_burst("h0", _window(25)) == 25
        burst_events = burst.run()

        assert burst_seen == solo_seen
        assert burst_events == solo_events  # burst members count as events
        assert burst.stats.snapshot() == solo.stats.snapshot()
        assert burst.now == solo.now

    def test_burst_respects_delay(self):
        sim = _simulator()
        seen = _arrivals(sim)
        sim.send_burst("h0", _window(2), delay=0.5)
        sim.run()
        assert len(seen) == 2
        assert all(t > 0.5 for t, _ in seen)

    def test_empty_burst_is_a_noop(self):
        sim = _simulator()
        assert sim.send_burst("h0", []) == 0
        assert sim.run() == 0

    def test_burst_validation_matches_send(self):
        sim = _simulator()
        with pytest.raises(TopologyError):
            sim.send_burst("ghost", _window(1))
        with pytest.raises(SimulationError):
            sim.send_burst("tor", _window(1))
        with pytest.raises(SimulationError):
            sim.send_burst("h0", _window(1), delay=-1.0)

    def test_synthetic_events_reset_between_runs(self):
        sim = _simulator()
        sim.send_burst("h0", _window(4))
        # 3 logical events per packet: injection, switch hop, host delivery.
        assert sim.run() == 12
        sim.send("h0", _window(1)[0])
        assert sim.run() == 3  # same accounting, no stale burst extras
