"""Twin-run equivalence for the compiled switch delivery fast paths.

Two fast paths bypass per-event dispatch on the DAIET hot path:

* ``switch-batch-delivery`` — consecutive per-packet queue entries bound
  for one switch are drained in a single handler call, and
* ``switch-burst-delivery`` — a whole send window rides ONE queue entry
  carrying a send-time precomputed :class:`_BurstPlan`; the handler merges
  concurrent bursts by ``(time, seq)`` and feeds the pair arrays straight
  into the vectorized register kernel.

Disabling both (clearing the scheduler's batch-handler registry and the
``_fast_burst`` gate) must change *nothing* observable: aggregation
results, TrafficStats, per-tree counters, event totals and simulated time.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem

np = pytest.importorskip("numpy")


def wordcount_system(
    fast: bool,
    num_mappers: int = 6,
    pairs_per_mapper: int = 300,
    vocabulary: int = 80,
    reliability: bool = False,
    seed: int = 2017,
):
    config = DaietConfig(
        register_slots=128, pairs_per_packet=10, reliability=reliability
    )
    system = DaietSystem.single_rack(num_hosts=num_mappers + 1, config=config)
    if not fast:
        # Stand the fast paths down: no burst plans are built and queue
        # entries are popped and dispatched one at a time.
        system.simulator._fast_burst = False
        system.simulator.scheduler._batch_handlers.clear()
    mappers = [f"h{i}" for i in range(num_mappers)]
    reducer = f"h{num_mappers}"
    system.install_job(mappers=mappers, reducers=[reducer])
    rng = random.Random(seed)
    truth: dict[str, int] = {}
    for mapper in mappers:
        pairs = [
            (f"word{rng.randrange(vocabulary)}", rng.randrange(-50, 50))
            for _ in range(pairs_per_mapper)
        ]
        for key, value in pairs:
            truth[key] = truth.get(key, 0) + value
        system.send_pairs(mapper, reducer, pairs)
    return system, reducer, truth


def observables(system: DaietSystem, reducer: str, events: int) -> dict:
    engine = system.engine("tor")
    return {
        "events": events,
        "now": system.simulator.now,
        "result": system.receiver(reducer).result(),
        "done": system.receiver(reducer).done,
        "stats": system.simulator.stats.snapshot(),
        "counters": {t: engine.tree(t).counters for t in engine.tree_ids()},
        "receiver": system.receiver(reducer).counters,
    }


class TestBatchDeliveryEquivalence:
    @pytest.mark.parametrize("reliability", [False, True])
    def test_fast_and_slow_runs_identical(self, reliability):
        fast_sys, reducer, truth = wordcount_system(True, reliability=reliability)
        fast_events = fast_sys.run()
        slow_sys, _, _ = wordcount_system(False, reliability=reliability)
        slow_events = slow_sys.run()
        fast_obs = observables(fast_sys, reducer, fast_events)
        slow_obs = observables(slow_sys, reducer, slow_events)
        assert fast_obs == slow_obs
        assert fast_obs["result"] == truth

    def test_collision_heavy_tree_identical(self):
        # Tiny registers force in-flight spillover flushes, whose emission
        # packets must interleave with the burst at identical times.
        config = DaietConfig(register_slots=8, pairs_per_packet=4)
        results = []
        for fast in (True, False):
            system = DaietSystem.single_rack(num_hosts=4, config=config)
            if not fast:
                system.simulator._fast_burst = False
                system.simulator.scheduler._batch_handlers.clear()
            system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"])
            rng = random.Random(5)
            for mapper in ("h0", "h1", "h2"):
                system.send_pairs(
                    mapper,
                    "h3",
                    [(f"k{rng.randrange(40)}", 1) for _ in range(120)],
                )
            events = system.run()
            results.append(observables(system, "h3", events))
        assert results[0] == results[1]

    def test_vector_ineligible_packets_identical(self):
        # Bool values are outside the kernel's domain: the plan marks those
        # packets ineligible and they ride the per-item path mid-burst.
        config = DaietConfig(register_slots=32, pairs_per_packet=2)
        results = []
        for fast in (True, False):
            system = DaietSystem.single_rack(num_hosts=3, config=config)
            if not fast:
                system.simulator._fast_burst = False
                system.simulator.scheduler._batch_handlers.clear()
            system.install_job(mappers=["h0", "h1"], reducers=["h2"])
            for mapper in ("h0", "h1"):
                system.send_pairs(
                    mapper,
                    "h2",
                    [("a", 1), ("b", True), ("a", 2), ("c", True), ("b", 3)],
                )
            events = system.run()
            results.append(observables(system, "h2", events))
        assert results[0] == results[1]
        assert results[0]["result"] == {"a": 6, "b": 8, "c": 2}

    def test_until_bound_cuts_burst_identically(self):
        # A run(until=...) bound lands inside the burst window; the burst
        # handler must stop at the same packet the per-item schedule would.
        fast_sys, reducer, _ = wordcount_system(True, num_mappers=3)
        slow_sys, _, _ = wordcount_system(False, num_mappers=3)
        until = 2e-6  # mid-burst for 30 packets on the default link speed
        fast_events = fast_sys.run(until=until)
        slow_events = slow_sys.run(until=until)
        assert observables(fast_sys, reducer, fast_events) == observables(
            slow_sys, reducer, slow_events
        )
        # ... and finishing the run afterwards still converges identically.
        fast_events = fast_sys.run()
        slow_events = slow_sys.run()
        assert observables(fast_sys, reducer, fast_events) == observables(
            slow_sys, reducer, slow_events
        )
