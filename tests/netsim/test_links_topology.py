"""Unit tests for links and topology builders."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.netsim.devices import Host, SwitchDevice
from repro.netsim.links import Endpoint, Link
from repro.netsim.topology import Topology, fat_tree, leaf_spine, single_rack


class TestLink:
    def make_link(self, bandwidth: float = 1e9) -> Link:
        return Link(a=Endpoint("a", 0), b=Endpoint("b", 3), bandwidth_bps=bandwidth)

    def test_other_end_and_ports(self):
        link = self.make_link()
        assert link.other_end("a").device == "b"
        assert link.other_end("b").device == "a"
        assert link.port_of("a") == 0
        assert link.port_of("b") == 3
        with pytest.raises(TopologyError):
            link.other_end("c")

    def test_transmission_delay_includes_serialization(self):
        link = Link(
            a=Endpoint("a", 0), b=Endpoint("b", 0), bandwidth_bps=1000.0, propagation_s=0.5
        )
        assert link.transmission_delay(1000) == pytest.approx(1.5)

    def test_direction_counters(self):
        link = self.make_link()
        link.record_transmission("a", 100)
        link.record_transmission("a", 200)
        link.record_transmission("b", 50)
        assert link.counters("a").packets == 2
        assert link.counters("a").bytes == 300
        assert link.counters("b").bytes == 50
        assert link.total_bytes() == 350
        assert link.total_packets() == 3

    def test_unknown_sender_rejected(self):
        link = self.make_link()
        with pytest.raises(TopologyError):
            link.record_transmission("zzz", 1)

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("b", 0), bandwidth_bps=0)
        with pytest.raises(TopologyError):
            Link(a=Endpoint("a", 0), b=Endpoint("a", 1))


class TestTopology:
    def test_add_and_connect_devices(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        link = topo.connect("h0", "s0")
        assert topo.link_between("h0", "s0") is link
        assert topo.neighbors("s0") == ["h0"]
        assert topo.port_towards("h0", "s0") == 0

    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_host("x")
        with pytest.raises(TopologyError):
            topo.add_switch("x")

    def test_duplicate_links_rejected(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        topo.connect("h0", "s0")
        with pytest.raises(TopologyError):
            topo.connect("h0", "s0")

    def test_host_single_nic(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        topo.add_switch("s1")
        topo.connect("h0", "s0")
        with pytest.raises(TopologyError):
            topo.connect("h0", "s1")

    def test_unknown_device_rejected(self):
        topo = Topology()
        topo.add_host("h0")
        with pytest.raises(TopologyError):
            topo.connect("h0", "ghost")
        with pytest.raises(TopologyError):
            topo.get("ghost")

    def test_validate_detects_disconnected_host(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_graph_view_labels_kinds(self):
        topo = single_rack(num_hosts=2)
        graph = topo.graph()
        assert graph.nodes["tor"]["kind"] == "switch"
        assert graph.nodes["h0"]["kind"] == "host"
        assert graph.number_of_edges() == 2


class TestBuilders:
    def test_single_rack_shape(self):
        topo = single_rack(num_hosts=5)
        assert len(topo.hosts()) == 5
        assert len(topo.switches()) == 1
        assert len(topo.links) == 5

    def test_single_rack_requires_hosts(self):
        with pytest.raises(TopologyError):
            single_rack(num_hosts=0)

    def test_leaf_spine_shape(self):
        topo = leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=4)
        switches = {s.name for s in topo.switches()}
        assert {"spine0", "spine1", "leaf0", "leaf1", "leaf2"} <= switches
        assert len(topo.hosts()) == 12
        # Each leaf connects to each spine plus its hosts.
        assert len(topo.links) == 3 * 2 + 12

    def test_leaf_spine_validation(self):
        with pytest.raises(TopologyError):
            leaf_spine(num_leaves=0, num_spines=1, hosts_per_leaf=1)

    def test_fat_tree_k4_shape(self):
        topo = fat_tree(4)
        hosts = topo.hosts()
        switches = topo.switches()
        assert len(hosts) == 16  # k^3 / 4
        assert len(switches) == 4 + 4 * 4 // 2 + 4 * 4 // 2  # 4 core + 8 agg + 8 edge
        topo.validate()

    def test_fat_tree_requires_even_k(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_devices_have_expected_types(self):
        topo = single_rack(num_hosts=2)
        assert isinstance(topo.get("h0"), Host)
        assert isinstance(topo.get("tor"), SwitchDevice)
