"""Unit tests for host/switch devices and the traffic statistics."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.netsim.devices import (
    DAIET_TABLE,
    FORWARDING_TABLE,
    Host,
    SwitchDevice,
    packet_wire_bytes,
)
from repro.netsim.stats import PerDeviceTraffic, TrafficStats
from repro.transport.packets import UdpDatagram


class TestHost:
    def test_receiver_callback_and_counters(self):
        host = Host("h0")
        seen = []
        host.set_receiver(seen.append)
        packet = UdpDatagram(src="x", dst="h0", payload_bytes=50)
        assert host.handle_packet(packet, ingress_port=0) == []
        assert seen == [packet]
        assert host.counters.packets_received == 1
        assert host.counters.bytes_received == packet.wire_bytes()

    def test_record_packets_flag(self):
        host = Host("h0")
        host.record_packets = True
        packet = UdpDatagram(src="x", dst="h0", payload_bytes=1)
        host.handle_packet(packet, 0)
        assert host.received_packets == [packet]

    def test_note_sent_accounting(self):
        host = Host("h0")
        packet = UdpDatagram(src="h0", dst="y", payload_bytes=10)
        host.note_sent(packet)
        assert host.counters.packets_sent == 1
        assert host.counters.bytes_sent == packet.wire_bytes()

    def test_receiving_without_callback_still_counts(self):
        host = Host("h0")
        host.handle_packet(UdpDatagram(src="x", dst="h0", payload_bytes=1), 0)
        assert host.counters.packets_received == 1


class TestSwitchDevice:
    def test_standard_pipeline_tables_exist(self):
        device = SwitchDevice("s0")
        tables = device.switch.pipeline.tables()
        assert DAIET_TABLE in tables
        assert FORWARDING_TABLE in tables
        assert device.daiet_table is tables[DAIET_TABLE]
        assert device.forwarding_table is tables[FORWARDING_TABLE]

    def test_metadata_extraction_feeds_forwarding(self):
        device = SwitchDevice("s0")
        from repro.dataplane.tables import FlowRule

        device.switch.install_rule(
            FlowRule.create(FORWARDING_TABLE, {"dst": "h9"}, "forward", {"egress_port": 4})
        )
        out = device.handle_packet(UdpDatagram(src="a", dst="h9", payload_bytes=10), 0)
        assert [port for port, _ in out] == [4]

    def test_unrouted_packet_dropped(self):
        device = SwitchDevice("s0")
        out = device.handle_packet(UdpDatagram(src="a", dst="nowhere", payload_bytes=10), 0)
        assert out == []
        assert device.switch.counters.packets_dropped == 1


class TestPacketWireBytes:
    def test_uses_wire_bytes_method(self):
        assert packet_wire_bytes(UdpDatagram(src="a", dst="b", payload_bytes=6)) == 48

    def test_falls_back_to_length_attribute(self):
        class Fake:
            length = 77

        assert packet_wire_bytes(Fake()) == 77

    def test_rejects_objects_without_size(self):
        with pytest.raises(TopologyError):
            packet_wire_bytes(object())


class TestTrafficStats:
    def test_recording_and_totals(self):
        stats = TrafficStats()
        stats.record_host_sent("h0", 100)
        stats.record_host_received("h1", 100)
        stats.record_host_received("h1", 50)
        stats.record_switch("s0", 150)
        stats.record_link("l0", 150)
        stats.record_drop("s0")
        stats.record_loss("l0")
        assert stats.sent_packets("h0") == 1
        assert stats.sent_bytes("h0") == 100
        assert stats.received_packets("h1") == 2
        assert stats.received_bytes("h1") == 150
        assert stats.total_received_bytes() == 150
        assert stats.total_received_packets(["h1", "ghost"]) == 2
        assert stats.total_link_bytes() == 150
        assert stats.total_link_packets() == 1
        assert stats.total_losses() == 1
        assert stats.drops == {"s0": 1}

    def test_unknown_hosts_default_to_zero(self):
        stats = TrafficStats()
        assert stats.received_bytes("nobody") == 0
        assert stats.sent_packets("nobody") == 0

    def test_per_host_received_copy(self):
        stats = TrafficStats()
        stats.record_host_received("h1", 10)
        snapshot = stats.per_host_received()
        snapshot["h1"] = PerDeviceTraffic()
        assert stats.received_bytes("h1") == 10

    def test_reset_clears_everything(self):
        stats = TrafficStats()
        stats.record_host_received("h1", 10)
        stats.record_loss("l0")
        stats.reset()
        assert stats.total_received_packets() == 0
        assert stats.total_losses() == 0
