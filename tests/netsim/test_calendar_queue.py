"""Equivalence tests: calendar-queue and heap schedulers order identically.

The calendar queue is only allowed to change *how fast* events come off the
queue, never *which order* they come off in. Every test here runs the same
workload on a heap-only scheduler (threshold too high to ever migrate), a
calendar-from-the-start scheduler (threshold 1) and a mid-run migrator, and
asserts the observable execution traces are identical — including
cancellations, same-time ties and events scheduled from inside callbacks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.events import CalendarQueue, EventScheduler, Timer

#: Threshold high enough that the heap backend never migrates.
HEAP_ONLY = 10**9


def _trace_of(scheduler: EventScheduler, workload) -> list[tuple[float, object]]:
    """Apply ``workload(scheduler, trace)`` and drain; return the trace."""
    trace: list[tuple[float, object]] = []
    workload(scheduler, trace)
    scheduler.run()
    return trace


def _assert_equivalent(workload) -> None:
    """The workload's trace must not depend on the scheduler backend."""
    heap_trace = _trace_of(EventScheduler(calendar_threshold=HEAP_ONLY), workload)
    cal_trace = _trace_of(EventScheduler(calendar_threshold=1), workload)
    mid_trace = _trace_of(EventScheduler(calendar_threshold=7), workload)
    assert heap_trace == cal_trace
    assert heap_trace == mid_trace


class TestBackendEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.booleans(),  # cancel this event?
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_schedules_and_cancellations(self, spec):
        def workload(scheduler, trace):
            events = []
            for i, (delay, _) in enumerate(spec):
                events.append(
                    scheduler.schedule(
                        delay, lambda i=i: trace.append((scheduler.now, i))
                    )
                )
            for event, (_, cancel) in zip(events, spec):
                if cancel:
                    event.cancel()

        _assert_equivalent(workload)

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_same_time_ties_stay_fifo(self, times):
        def workload(scheduler, trace):
            for i, t in enumerate(times):
                scheduler.schedule(float(t), lambda i=i: trace.append((scheduler.now, i)))

        _assert_equivalent(workload)

    def test_events_scheduled_from_callbacks(self):
        def workload(scheduler, trace):
            def cascade(depth):
                trace.append((scheduler.now, depth))
                if depth < 9:
                    scheduler.schedule(0.0, cascade, depth + 1)
                    scheduler.schedule(0.5, cascade, depth + 1)

            scheduler.schedule(0.0, cascade, 0)

        heap_trace = _trace_of(EventScheduler(calendar_threshold=HEAP_ONLY), workload)
        cal_trace = _trace_of(EventScheduler(calendar_threshold=1), workload)
        assert heap_trace == cal_trace

    def test_push_at_matches_heap(self):
        def workload(scheduler, trace):
            for i, t in enumerate([3.0, 1.0, 1.0, 2.0, 0.0, 3.0]):
                scheduler.push_at(t, lambda i=i: trace.append((scheduler.now, i)), ())

        _assert_equivalent(workload)

    def test_sparse_far_future_events(self):
        """Events separated by thousands of empty bucket-days."""

        def workload(scheduler, trace):
            for i, t in enumerate([0.0, 1e-6, 1.0, 5e3, 9e5, 9e5 + 1e-9]):
                scheduler.schedule_at(t, lambda i=i: trace.append((scheduler.now, i)))

        _assert_equivalent(workload)

    def test_until_and_max_events_bounds(self):
        for threshold in (HEAP_ONLY, 1):
            scheduler = EventScheduler(calendar_threshold=threshold)
            seen = []
            for i in range(10):
                scheduler.schedule(float(i), seen.append, i)
            assert scheduler.run(until=4.5) == 5
            assert seen == [0, 1, 2, 3, 4]
            assert scheduler.now == pytest.approx(4.5)
            assert scheduler.run(max_events=2) == 2
            assert seen == [0, 1, 2, 3, 4, 5, 6]
            scheduler.run()
            assert seen == list(range(10))


class TestCalendarScheduler:
    """Behaviour the calendar backend must share with the heap (unit level)."""

    def _calendar_scheduler(self) -> EventScheduler:
        scheduler = EventScheduler(calendar_threshold=1)
        scheduler.schedule(0.0, lambda: None)
        scheduler.run()
        assert scheduler.calendar_active
        return scheduler

    def test_migration_preserves_pending_events(self):
        scheduler = EventScheduler(calendar_threshold=8)
        seen = []
        for i in range(20):
            scheduler.schedule(float(20 - i), seen.append, 20 - i)
        assert scheduler.calendar_active
        assert len(scheduler) == 20
        scheduler.run()
        assert seen == sorted(seen)

    def test_migration_mid_run_from_callback(self):
        scheduler = EventScheduler(calendar_threshold=16)
        seen = []

        def fan_out():
            for i in range(40):
                scheduler.schedule(1.0 + i * 0.25, seen.append, i)

        scheduler.schedule(0.5, fan_out)
        scheduler.run()
        assert not seen or seen == sorted(seen)
        assert seen == list(range(40))
        assert scheduler.calendar_active

    def test_peek_does_not_advance_past_later_pushes(self):
        """A peek must not let a later (earlier-time) push be overtaken."""
        scheduler = self._calendar_scheduler()
        seen = []
        scheduler.schedule(10.0, seen.append, "late")
        assert scheduler.peek_time() == pytest.approx(scheduler.now + 10.0)
        scheduler.schedule(5.0, seen.append, "early")
        scheduler.run()
        assert seen == ["early", "late"]

    def test_cancelled_events_skipped_and_len_exact(self):
        scheduler = self._calendar_scheduler()
        events = [scheduler.schedule(1.0 + i, lambda: None) for i in range(10)]
        for event in events[:4]:
            event.cancel()
        assert len(scheduler) == 6
        executed = scheduler.run()
        assert executed == 6

    def test_timer_litter_is_compacted(self):
        scheduler = self._calendar_scheduler()
        fired = []
        timer = Timer(scheduler, lambda: fired.append(scheduler.now))
        for _ in range(5_000):
            timer.start(1.0)
        assert len(scheduler) == 1
        assert scheduler._cal is not None and scheduler._cal.count < 200
        scheduler.run()
        assert len(fired) == 1

    def test_reset_returns_to_heap_backend(self):
        scheduler = self._calendar_scheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.reset()
        assert not scheduler.calendar_active
        assert len(scheduler) == 0
        seen = []
        scheduler.schedule(1.0, seen.append, "x")
        scheduler.run()
        assert seen == ["x"]

    def test_step_on_calendar_backend(self):
        scheduler = self._calendar_scheduler()
        seen = []
        scheduler.schedule(1.0, seen.append, "a")
        scheduler.schedule(2.0, seen.append, "b")
        assert scheduler.step() is True
        assert seen == ["a"]
        assert scheduler.step() is True
        assert scheduler.step() is False
        assert seen == ["a", "b"]

    def test_resize_growth_and_shrink(self):
        queue = CalendarQueue([], floor_time=0.0)
        entries = [(i * 0.001, i, None, ()) for i in range(10_000)]
        for entry in entries:
            queue.push(entry)
        assert len(queue) == 10_000
        popped = []
        none_set: set[int] = set()
        while True:
            entry = queue.pop(None, none_set)
            if entry is None:
                break
            popped.append(entry)
        assert popped == sorted(entries, key=lambda e: (e[0], e[1]))
        assert len(queue) == 0

    def test_same_time_burst_single_bucket(self):
        queue = CalendarQueue([], floor_time=0.0)
        for i in range(1_000):
            queue.push((0.0, i, None, ()))
        seqs = []
        none_set: set[int] = set()
        while len(queue):
            seqs.append(queue.pop(None, none_set)[1])
        assert seqs == list(range(1_000))
