"""Unit and integration tests for routing and the network simulator."""

from __future__ import annotations

import pytest

from repro.core.errors import RoutingError, SimulationError
from repro.netsim.routing import (
    compute_routes,
    host_uplink_switch,
    install_forwarding_rules,
    path_switches,
    shortest_path,
)
from repro.netsim.simulator import NetworkSimulator
from repro.netsim.topology import leaf_spine, single_rack
from repro.transport.packets import UdpDatagram


class TestRouting:
    def test_single_rack_routes_via_tor(self):
        topo = single_rack(num_hosts=3)
        routes = compute_routes(topo)
        assert routes.next_hop("tor", "h0") == "h0"
        assert routes.next_hop("tor", "h2") == "h2"

    def test_leaf_spine_paths_are_valley_free(self):
        topo = leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        # h0 and h1 share leaf0; h2 lives under leaf1.
        assert path_switches(topo, "h0", "h1") == ["leaf0"]
        cross = path_switches(topo, "h0", "h2")
        assert cross[0] == "leaf0" and cross[-1] == "leaf1" and len(cross) == 3

    def test_shortest_path_endpoints(self):
        topo = single_rack(num_hosts=2)
        assert shortest_path(topo, "h0", "h1") == ["h0", "tor", "h1"]
        assert shortest_path(topo, "h0", "h0") == ["h0"]

    def test_unreachable_destination_raises(self):
        topo = single_rack(num_hosts=2)
        with pytest.raises(RoutingError):
            shortest_path(topo, "h0", "missing")

    def test_host_uplink_switch(self):
        topo = leaf_spine(num_leaves=2, num_spines=1, hosts_per_leaf=2)
        assert host_uplink_switch(topo, "h0") == "leaf0"
        with pytest.raises(RoutingError):
            host_uplink_switch(topo, "leaf0")

    def test_install_forwarding_rules_counts(self):
        topo = leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        installed = install_forwarding_rules(topo)
        # Every switch gets one entry per host.
        assert installed == len(topo.switches()) * len(topo.hosts())


class TestNetworkSimulator:
    def test_host_to_host_delivery(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        received = []
        sim.host("h1").set_receiver(received.append)
        packet = UdpDatagram(src="h0", dst="h1", payload_bytes=128)
        sim.send("h0", packet)
        sim.run()
        assert received == [packet]
        assert sim.stats.received_packets("h1") == 1
        assert sim.stats.received_bytes("h1") == packet.wire_bytes()
        assert sim.now > 0.0

    def test_delivery_across_fabric(self):
        sim = NetworkSimulator(leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2))
        received = []
        sim.host("h3").set_receiver(received.append)
        sim.send("h0", UdpDatagram(src="h0", dst="h3", payload_bytes=64))
        sim.run()
        assert len(received) == 1
        # The packet crossed leaf0 -> a spine -> leaf1: three switch hops.
        assert sim.stats.total_link_packets() == 4

    def test_fifo_ordering_per_link(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        received = []
        sim.host("h1").set_receiver(lambda p: received.append(p.payload_bytes))
        # A large packet sent first must still arrive before a small one sent
        # immediately after (links serialize transmissions).
        sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=1400))
        sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=10))
        sim.run()
        assert received == [1400, 10]

    def test_send_from_switch_rejected(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        with pytest.raises(SimulationError):
            sim.send("tor", UdpDatagram(src="tor", dst="h1", payload_bytes=1))

    def test_unknown_destination_is_dropped(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        sim.send("h0", UdpDatagram(src="h0", dst="nowhere", payload_bytes=1))
        sim.run()
        assert sim.stats.total_received_packets(["h1"]) == 0

    def test_host_and_switch_accessors(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        assert sim.host("h0").name == "h0"
        assert sim.switch("tor").name == "tor"
        with pytest.raises(SimulationError):
            sim.host("tor")
        with pytest.raises(SimulationError):
            sim.switch("h0")

    def test_stats_reset(self):
        sim = NetworkSimulator(single_rack(num_hosts=2))
        sim.send("h0", UdpDatagram(src="h0", dst="h1", payload_bytes=1))
        sim.run()
        sim.stats.reset()
        assert sim.stats.total_received_packets() == 0
        assert sim.stats.total_link_bytes() == 0
