"""Churn x approximation interplay: crash-during-replay under every policy.

The nastiest recovery schedule: the tree's spine dies mid-round, failover
re-plans onto a replacement spine and starts replaying — and the replacement
dies too, mid-replay. The guarantees under test:

* an ``exact`` tree recovers **bit-identical** through a second re-plan onto
  the last surviving spine;
* a ``best_effort`` tree never replays (no replay storms), always
  terminates, and reports a bounded deficit through the error ledger.
"""

from __future__ import annotations

import pytest

from repro.analysis.error_bounds import install_error_tracker, true_error_l1
from repro.core.config import DaietConfig
from repro.core.daiet import DaietSystem
from repro.core.failover import FailoverConfig, FailoverManager
from repro.core.functions import SUM, aggregate_pairs
from repro.netsim.faults import FaultPlan, install_faults
from repro.netsim.simulator import SimulatorConfig
from repro.netsim.topology import leaf_spine

pytestmark = [pytest.mark.churn, pytest.mark.approx]

HEARTBEAT = 2.5e-4


def _system(policy: str) -> DaietSystem:
    # Three spines: the original tree's spine and its replacement both die,
    # so exact recovery must succeed through the third.
    topo = leaf_spine(num_leaves=2, num_spines=3, hosts_per_leaf=2)
    config = DaietConfig(
        reliability=True,
        retain_for_replay=True,
        retransmit_timeout=1e-4,
        reliability_policy=policy,
    )
    system = DaietSystem(topo, config, SimulatorConfig())
    system.install_job(mappers=["h0", "h1", "h2"], reducers=["h3"], policy=policy)
    return system


def _partitions() -> dict[str, list[tuple[str, int]]]:
    return {
        "h0": [(f"k{i}", i + 1) for i in range(40)],
        "h1": [(f"k{i}", 2 * i) for i in range(20, 60)],
        "h2": [(f"k{i}", 3) for i in range(0, 80, 2)],
    }


def _send(system: DaietSystem) -> None:
    for mapper, pairs in sorted(_partitions().items()):
        system.send_pairs(mapper, "h3", pairs)


def _truth() -> dict[str, int]:
    return aggregate_pairs(
        [pair for pairs in _partitions().values() for pair in pairs], SUM
    )


def _tree_spine(system: DaietSystem) -> str:
    spines = sorted(
        node.name
        for node in system.tree_for("h3").switches()
        if node.name.startswith("spine")
    )
    assert len(spines) == 1
    return spines[0]


def _crash_schedule() -> tuple[str, float, str, float]:
    """Discover (first spine, crash time, replacement spine, replay-kill time).

    A fault-free pilot fixes the first crash at 35% of the run; a second
    pilot with only that crash reveals which spine failover re-plans onto
    and when the replay starts, so the second crash can be aimed at the
    replacement mid-replay. Everything downstream is deterministic.
    """
    pilot = _system("exact")
    _send(pilot)
    pilot.run()
    assert pilot.receiver("h3").done
    first_spine = _tree_spine(pilot)
    first_crash = 0.35 * pilot.simulator.now

    pilot = _system("exact")
    injector = install_faults(
        pilot.simulator, FaultPlan().switch_crash(first_crash, first_spine)
    )
    manager = FailoverManager(
        pilot, injector, FailoverConfig(heartbeat_interval=HEARTBEAT)
    )
    manager.start()
    _send(pilot)
    pilot.run()
    assert pilot.receiver("h3").done
    replay_time = next(
        t for t, entry in manager.log if "replayed" in entry
    )
    replacement_spine = _tree_spine(pilot)
    assert replacement_spine != first_spine
    # Kill the replacement while the replayed packets are still in flight.
    return first_spine, first_crash, replacement_spine, replay_time + 5e-7


def _run_double_crash(policy: str):
    first_spine, first_crash, replacement_spine, second_crash = _crash_schedule()
    system = _system(policy)
    injector = install_faults(
        system.simulator,
        FaultPlan()
        .switch_crash(first_crash, first_spine)
        .switch_crash(second_crash, replacement_spine),
    )
    manager = FailoverManager(
        system, injector, FailoverConfig(heartbeat_interval=HEARTBEAT)
    )
    manager.start()
    tracker = install_error_tracker(system)
    _send(system)
    system.run()  # terminating at all is part of the contract
    return system, manager, tracker


class TestCrashDuringReplay:
    def test_exact_tree_recovers_bit_identical(self):
        system, manager, _tracker = _run_double_crash("exact")
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == _truth()
        replans = [entry for _t, entry in manager.log if "re-planned" in entry]
        assert len(replans) == 2  # both crashes forced a fresh epoch
        assert len(system.simulator.fault_injector.down_switch_names()) == 2
        # The surviving tree avoids both corpses.
        final_spine = _tree_spine(system)
        assert final_spine not in system.simulator.fault_injector.down_switch_names()

    def test_best_effort_terminates_with_bounded_deficit(self):
        system, manager, tracker = _run_double_crash("best_effort")
        receiver = system.receiver("h3")
        truth = _truth()
        received = receiver.result()
        # Bounded degradation: nothing invented, per-key mass only missing.
        for key, value in received.items():
            assert value <= truth[key]
        # No replay storm: recovery logs the policy decision instead.
        assert any(
            "no replay (policy best_effort)" in entry for _t, entry in manager.log
        )
        assert not any("replayed" in entry for _t, entry in manager.log)
        # The deficit is reported and sound.
        bound = tracker.bound(system.tree_for("h3").tree_id)
        error = true_error_l1(truth, received)
        assert error > 0  # the crashes really cost contributions
        assert bound.contains(error)

    def test_sampled_tree_composes_with_churn(self):
        # Sampled keeps the full seq/dedup/replay machinery (only the ACK
        # cadence is strided), so failover recovery stays bit-identical
        # even through the crash-during-replay schedule.
        system, manager, _tracker = _run_double_crash("sampled")
        receiver = system.receiver("h3")
        assert receiver.done
        assert receiver.result() == _truth()
        assert any("replayed" in entry for _t, entry in manager.log)

    def test_double_crash_is_deterministic(self):
        def run():
            system, manager, tracker = _run_double_crash("best_effort")
            bound = tracker.bound(system.tree_for("h3").tree_id)
            return (
                system.receiver("h3").result(),
                system.simulator.now,
                tuple(manager.log),
                bound,
            )

        assert run() == run()
