"""Unit tests for the WordCount corpus generator and the cluster builders."""

from __future__ import annotations

import pytest

from repro.core.aggregation import hash_key
from repro.core.errors import JobError
from repro.mapreduce.cluster import build_cluster, default_placement
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.wordcount import (
    CorpusSpec,
    corpus_for_target_reduction,
    generate_corpus,
    generate_vocabulary,
)


class TestCorpusGenerator:
    def test_corpus_size_and_vocabulary(self):
        corpus = generate_corpus(total_words=5_000, vocabulary_size=500, num_partitions=4, seed=1)
        assert corpus.total_words == 5_000
        assert len(corpus.vocabulary) == 500
        counts = corpus.word_counts()
        assert sum(counts.values()) == 5_000
        assert set(counts) == set(corpus.vocabulary)

    def test_every_word_respects_key_width(self):
        corpus = generate_corpus(total_words=2_000, vocabulary_size=300, seed=2)
        assert all(1 <= len(word) <= 16 for word in corpus.vocabulary)

    def test_no_register_hash_collisions_within_partitions(self):
        spec = CorpusSpec(
            total_words=3_000,
            vocabulary_size=600,
            num_partitions=4,
            register_slots=4096,
            seed=3,
        )
        vocabulary = generate_vocabulary(spec)
        partitioner = HashPartitioner(4)
        seen: dict[int, set[int]] = {p: set() for p in range(4)}
        for word in vocabulary:
            slot = hash_key(word, 4096)
            partition = partitioner(word)
            assert slot not in seen[partition]
            seen[partition].add(slot)

    def test_splits_cover_all_lines(self):
        corpus = generate_corpus(total_words=1_000, vocabulary_size=100, seed=4)
        splits = corpus.splits(8)
        assert len(splits) == 8
        assert sum(len(s) for s in splits) == len(corpus.lines)

    def test_zipf_distribution_is_skewed(self):
        uniform = generate_corpus(
            total_words=20_000, vocabulary_size=1_000, seed=5, distribution="uniform"
        )
        zipf = generate_corpus(
            total_words=20_000, vocabulary_size=1_000, seed=5, distribution="zipf",
            avoid_register_collisions=False,
        )
        max_uniform = max(uniform.word_counts().values())
        max_zipf = max(zipf.word_counts().values())
        assert max_zipf > 3 * max_uniform

    def test_target_reduction_inversion(self):
        corpus = corpus_for_target_reduction(0.9, total_words=10_000, num_partitions=4)
        achievable = 1.0 - len(corpus.vocabulary) / corpus.total_words
        assert achievable == pytest.approx(0.9, abs=0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_words": 0},
            {"vocabulary_size": 0},
            {"total_words": 10, "vocabulary_size": 20},
            {"max_word_length": 32},
            {"distribution": "exponential"},
            {"vocabulary_size": 200_000, "total_words": 300_000, "register_slots": 1024,
             "num_partitions": 2},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(JobError):
            CorpusSpec(**kwargs)

    def test_spec_and_overrides_are_exclusive(self):
        with pytest.raises(JobError):
            generate_corpus(CorpusSpec(), total_words=10)


class TestCluster:
    def test_single_rack_cluster_shape(self):
        cluster = build_cluster(num_workers=6)
        assert len(cluster.workers) == 6
        assert cluster.master_host == "master"
        assert cluster.topology.get("tor") is not None
        assert cluster.worker(2) == "w2"

    def test_leaf_spine_cluster(self):
        cluster = build_cluster(num_workers=6, fabric="leaf_spine", workers_per_leaf=3)
        names = {s.name for s in cluster.topology.switches()}
        assert any(name.startswith("leaf") for name in names)
        assert any(name.startswith("spine") for name in names)

    def test_unknown_fabric_rejected(self):
        with pytest.raises(JobError):
            build_cluster(num_workers=2, fabric="torus")

    def test_default_placement_is_paper_shaped(self):
        cluster = build_cluster(num_workers=12)
        placement = default_placement(cluster, num_mappers=24, num_reducers=12)
        assert placement.num_mappers == 24
        assert placement.num_reducers == 12
        # Two map tasks per worker host.
        for worker in cluster.workers:
            assert placement.mapper_hosts.count(worker) == 2

    def test_placement_rejects_too_many_reducers(self):
        cluster = build_cluster(num_workers=4)
        with pytest.raises(JobError):
            default_placement(cluster, num_mappers=8, num_reducers=5)

    def test_unknown_worker_index(self):
        cluster = build_cluster(num_workers=2)
        with pytest.raises(JobError):
            cluster.worker(5)
